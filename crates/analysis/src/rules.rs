//! The enforced invariants, one rule per named check.
//!
//! Every rule is individually deniable with
//! `// lint:allow(<rule>) -- <justification>` on (or immediately
//! above) the offending line. An allow without a justification is
//! itself a finding (`bad-allow`): suppressions must say *why*.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::scan::{SourceFile, Tok, TokKind};

/// A rule's registry entry.
pub struct RuleInfo {
    pub name: &'static str,
    /// The invariant it guards, one line.
    pub description: &'static str,
}

/// Every rule the checker knows, in presentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "panic-freedom",
        description: "no unwrap/expect/panic!/direct indexing in the serving stack \
                      (server, scheduler, router, batch workers) where catch_unwind \
                      is the last line of defense",
    },
    RuleInfo {
        name: "lock-order",
        description: "the static lock-acquisition graph across all functions must be \
                      acyclic (deadlock freedom chaos testing cannot prove)",
    },
    RuleInfo {
        name: "hot-path-alloc",
        description: "no heap allocation in workspace-threaded hot-path functions \
                      (the zero-alloc invariant alloc_smoke enforces dynamically)",
    },
    RuleInfo {
        name: "fast-hash",
        description: "raw std HashMap/HashSet are banned outside fast_hash.rs and \
                      tests; node-keyed maps use FastHashMap/FastHashSet",
    },
    RuleInfo {
        name: "poison-recovery",
        description: "lock().unwrap() is banned in non-test code; poisoned locks \
                      recover via unwrap_or_else(PoisonError::into_inner)",
    },
    RuleInfo {
        name: "failpoint-drift",
        description: "every failpoint seam checked in production code is exercised \
                      by tests/chaos.rs, and chaos.rs names no dead seams",
    },
    RuleInfo {
        name: "undocumented-unsafe",
        description: "every `unsafe` in non-test code carries a `// SAFETY:` comment \
                      within the preceding five lines",
    },
    RuleInfo {
        name: "bad-allow",
        description: "every lint:allow names known rules and a `-- justification`",
    },
];

/// True when `name` is a registered rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Cross-file state accumulated while files stream through the rules.
#[derive(Default)]
pub struct CrossFileState {
    /// lock-order: directed edges `(from, to) -> first site`.
    lock_edges: BTreeMap<(String, String), (String, usize)>,
    /// lock-order: allow(lock-order) present at an edge's site.
    lock_edge_allowed: BTreeSet<(String, String)>,
    /// failpoint-drift: statically named seams -> first check site.
    checked_points: BTreeMap<String, (String, usize)>,
    /// failpoint-drift: dynamic seam families (format! prefixes).
    checked_prefixes: BTreeMap<String, (String, usize)>,
    /// failpoint-drift: names exercised in tests/chaos.rs -> site.
    chaos_points: BTreeMap<String, (String, usize)>,
    /// Whether tests/chaos.rs was seen at all.
    saw_chaos: bool,
}

/// Runs every per-file rule over `file`, pushing raw findings (before
/// allow filtering) into `diags` and updating cross-file state.
pub fn check_file(file: &SourceFile, state: &mut CrossFileState, diags: &mut Vec<Diagnostic>) {
    bad_allow(file, diags);
    panic_freedom(file, diags);
    hot_path_alloc(file, diags);
    fast_hash(file, diags);
    poison_recovery(file, diags);
    undocumented_unsafe(file, diags);
    collect_lock_order(file, state);
    collect_failpoints(file, state);
}

/// Finalizes the cross-file rules once every file has streamed through.
pub fn finish(state: &CrossFileState, diags: &mut Vec<Diagnostic>) {
    lock_order_cycles(state, diags);
    failpoint_drift(state, diags);
}

// ---------------------------------------------------------------- helpers

fn ident_prev_is_dot(tokens: &[Tok], i: usize) -> bool {
    i > 0 && tokens[i - 1].is_punct('.')
}

/// `tokens[i]` begins `( )` (empty argument list), tolerating line
/// breaks between them.
fn empty_parens_at(tokens: &[Tok], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(')'))
}

fn diag(file: &SourceFile, rule: &'static str, line0: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.rel.clone(),
        line: line0 + 1,
        message,
    }
}

// ---------------------------------------------------------------- bad-allow

fn bad_allow(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for allow in file.allow_entries() {
        if allow.rules.is_empty() {
            diags.push(diag(
                file,
                "bad-allow",
                allow.comment_line,
                "lint:allow names no rule".into(),
            ));
            continue;
        }
        for rule in &allow.rules {
            if !is_known_rule(rule) {
                diags.push(diag(
                    file,
                    "bad-allow",
                    allow.comment_line,
                    format!("lint:allow names unknown rule `{rule}`"),
                ));
            }
        }
        if allow.justification.is_empty() {
            diags.push(diag(
                file,
                "bad-allow",
                allow.comment_line,
                "lint:allow without `-- justification`: suppressions must say why".into(),
            ));
        }
    }
}

// ------------------------------------------------------------ panic-freedom

/// Modules where a panic escapes straight into `catch_unwind` recovery
/// (or takes the whole serving thread down): the server stack, the
/// router, and the batch worker pool.
fn in_panic_free_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/server/")
        || rel == "crates/core/src/backend/router.rs"
        || rel == "crates/core/src/backend/batch.rs"
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_freedom(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !in_panic_free_scope(&file.rel) {
        return;
    }
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                if (t.text == "unwrap" || t.text == "expect" || t.text == "expect_err")
                    && ident_prev_is_dot(tokens, i)
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    diags.push(diag(
                        file,
                        "panic-freedom",
                        t.line,
                        format!(
                            ".{}() can panic a serving thread; return a typed error or recover",
                            t.text
                        ),
                    ));
                } else if PANIC_MACROS.contains(&t.text.as_str())
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    diags.push(diag(
                        file,
                        "panic-freedom",
                        t.line,
                        format!(
                            "{}! in the serving stack; answer a typed error instead",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Punct => {
                // Direct indexing: `expr[...]` — `[` directly preceded
                // by an identifier, `)`, or `]`. Attributes (`#[...]`),
                // slice patterns, array types and macros like `vec![`
                // all have a different predecessor.
                if t.is_punct('[') && i > 0 {
                    let prev = &tokens[i - 1];
                    let is_index_base = (prev.kind == TokKind::Ident
                        && !prev.text.chars().next().is_some_and(|c| c.is_ascii_digit()))
                        || prev.is_punct(')')
                        || prev.is_punct(']');
                    // Only when truly adjacent in the source: an
                    // identifier ending the previous statement and a
                    // `[...]` array literal opening the next are not an
                    // index expression.
                    let adjacent =
                        prev.line == t.line && prev.col + prev.text.chars().count() == t.col;
                    if is_index_base && adjacent {
                        diags.push(diag(
                            file,
                            "panic-freedom",
                            t.line,
                            format!(
                                "direct indexing `{}[..]` can panic; use .get() or prove bounds \
                                 and lint:allow",
                                prev.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------- hot-path-alloc

/// The staged-query / diffusion / extraction modules whose steady-state
/// allocation behaviour `tests/alloc_smoke.rs` bounds dynamically.
fn in_hot_alloc_scope(rel: &str) -> bool {
    matches!(
        rel,
        "crates/core/src/meloppr.rs"
            | "crates/core/src/diffusion.rs"
            | "crates/core/src/quantized.rs"
            | "crates/core/src/selection.rs"
            | "crates/core/src/score_vec.rs"
            | "crates/core/src/global_table.rs"
            | "crates/graph/src/bfs.rs"
            | "crates/graph/src/subgraph.rs"
            | "crates/graph/src/scratch.rs"
    )
}

/// A function is "hot" when it threads a reusable scratch arena — the
/// signature names a `*Scratch`/`*Workspace` type — or follows the
/// in-place naming convention.
fn is_hot_fn(name: &str, sig: &str) -> bool {
    sig.contains("Scratch")
        || sig.contains("Workspace")
        || name.ends_with("_into")
        || name.ends_with("_in_place")
        || name.contains("_reusing")
}

const ALLOC_MACROS: &[&str] = &["format", "vec"];
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Box", "new"),
    ("BTreeMap", "new"),
    ("BinaryHeap", "new"),
];
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect", "clone"];

fn hot_path_alloc(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !in_hot_alloc_scope(&file.rel) {
        return;
    }
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let Some(enclosing) = file.enclosing_fn(t.line) else {
            continue;
        };
        if enclosing.in_test || !is_hot_fn(&enclosing.name, &enclosing.sig) {
            continue;
        }
        let label = if ALLOC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            Some(format!("{}!", t.text))
        } else if ALLOC_METHODS.contains(&t.text.as_str())
            && ident_prev_is_dot(tokens, i)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            Some(format!(".{}()", t.text))
        } else if tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
            && ALLOC_PATHS
                .iter()
                .any(|&(ty, m)| t.text == ty && tokens[i + 3].text == m)
        {
            Some(format!("{}::{}", t.text, tokens[i + 3].text))
        } else {
            None
        };
        if let Some(label) = label {
            diags.push(diag(
                file,
                "hot-path-alloc",
                t.line,
                format!(
                    "`{label}` allocates inside workspace-threaded hot fn `{}`; reuse scratch \
                     buffers or lint:allow with the amortization argument",
                    enclosing.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- fast-hash

fn fast_hash(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if file.rel.ends_with("fast_hash.rs") || file.rel.starts_with("crates/shims/") {
        return;
    }
    for t in &file.tokens {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !file.is_test_line(t.line)
        {
            diags.push(diag(
                file,
                "fast-hash",
                t.line,
                format!(
                    "raw std {} (SipHash) outside fast_hash.rs; use Fast{} or justify",
                    t.text, t.text
                ),
            ));
        }
    }
}

// ----------------------------------------------------------- poison-recovery

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Token index sequences `.lock() .unwrap()` (and read/write/expect
/// variants), tolerant of line breaks between the links.
fn poison_recovery(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !LOCK_METHODS.contains(&t.text.as_str())
            || !ident_prev_is_dot(tokens, i)
            || !empty_parens_at(tokens, i + 1)
            || file.is_test_line(t.line)
        {
            continue;
        }
        let Some(dot) = tokens.get(i + 3) else {
            continue;
        };
        let Some(next) = tokens.get(i + 4) else {
            continue;
        };
        if dot.is_punct('.')
            && (next.is_ident("unwrap") || next.is_ident("expect"))
            && tokens.get(i + 5).is_some_and(|n| n.is_punct('('))
        {
            diags.push(diag(
                file,
                "poison-recovery",
                t.line,
                format!(
                    ".{}().{}() cascades lock poisoning across threads; use \
                     unwrap_or_else(PoisonError::into_inner) (state is valid at every await \
                     point) or a typed error",
                    t.text, next.text
                ),
            ));
        }
    }
}

// ------------------------------------------------------ undocumented-unsafe

fn undocumented_unsafe(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for t in &file.tokens {
        if !t.is_ident("unsafe") || file.is_test_line(t.line) {
            continue;
        }
        // Accept `SAFETY:` on the line itself or anywhere in the
        // contiguous comment block immediately above it.
        let mut documented = file
            .lines
            .get(t.line)
            .is_some_and(|l| l.comment.contains("SAFETY:"));
        let mut l = t.line;
        while !documented && l > 0 {
            l -= 1;
            let Some(line) = file.lines.get(l) else { break };
            if line.comment.is_empty() {
                break;
            }
            documented = line.comment.contains("SAFETY:");
        }
        if !documented {
            diags.push(diag(
                file,
                "undocumented-unsafe",
                t.line,
                "`unsafe` without a `// SAFETY:` comment block directly above".into(),
            ));
        }
    }
}

// ---------------------------------------------------------------- lock-order

/// Records, for every non-test function, each ordered pair of distinct
/// lock classes acquired in source order. A lock class is
/// `<file-stem>.<receiver>` — `self.calibration.lock()` in `router.rs`
/// becomes `router.calibration` — scoping identity per file so two
/// unrelated `state` fields in different modules never merge.
fn collect_lock_order(file: &SourceFile, state: &mut CrossFileState) {
    if file.rel.starts_with("tests/") {
        return;
    }
    let stem = file
        .rel
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("file");
    let tokens = &file.tokens;
    // (fn-span index) -> acquisition sequence.
    let mut seqs: BTreeMap<(usize, usize), Vec<(String, usize)>> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !LOCK_METHODS.contains(&t.text.as_str())
            || !ident_prev_is_dot(tokens, i)
            || !empty_parens_at(tokens, i + 1)
            || file.is_test_line(t.line)
        {
            continue;
        }
        let Some(f) = file.enclosing_fn(t.line) else {
            continue;
        };
        if f.in_test {
            continue;
        }
        // Receiver: the identifier before the method's dot; when the
        // receiver is a call (`registry().lock()`), the callee name.
        let recv = if i >= 2 {
            match &tokens[i - 2] {
                r if r.kind == TokKind::Ident => Some(r.text.clone()),
                r if r.is_punct(')') => {
                    // Walk back over the call's parens to its name.
                    let mut depth = 0i32;
                    let mut j = i - 2;
                    loop {
                        let tk = &tokens[j];
                        if tk.is_punct(')') {
                            depth += 1;
                        } else if tk.is_punct('(') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if j == 0 {
                            break;
                        }
                        j -= 1;
                    }
                    (j > 0 && tokens[j - 1].kind == TokKind::Ident)
                        .then(|| tokens[j - 1].text.clone())
                }
                _ => None,
            }
        } else {
            None
        };
        let Some(recv) = recv else { continue };
        let class = format!("{stem}.{recv}");
        seqs.entry(f.body).or_default().push((class, t.line));
    }
    for seq in seqs.values() {
        for (a_idx, (a, _)) in seq.iter().enumerate() {
            for (b, b_line) in seq.iter().skip(a_idx + 1) {
                if a == b {
                    continue;
                }
                let key = (a.clone(), b.clone());
                state
                    .lock_edges
                    .entry(key.clone())
                    .or_insert_with(|| (file.rel.clone(), b_line + 1));
                if file.allowed(*b_line, "lock-order") {
                    state.lock_edge_allowed.insert(key);
                }
            }
        }
    }
}

/// Rejects cycles in the union lock graph. An `allow(lock-order)` on
/// any edge site of a cycle suppresses that cycle (the edge is declared
/// safe, e.g. the guard is provably dropped between acquisitions).
fn lock_order_cycles(state: &CrossFileState, diags: &mut Vec<Diagnostic>) {
    // Adjacency over sorted nodes for deterministic traversal.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in state.lock_edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    // DFS cycle detection with path reconstruction.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut marks: BTreeMap<&str, Mark> = nodes.iter().map(|&n| (n, Mark::White)).collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        if marks.get(start) != Some(&Mark::White) {
            continue;
        }
        // Iterative DFS keeping the grey path.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        *marks.entry(start).or_insert(Mark::Grey) = Mark::Grey;
        while let Some((node, child_idx)) = stack.last_mut() {
            let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *child_idx >= children.len() {
                marks.insert(node, Mark::Black);
                path.pop();
                stack.pop();
                continue;
            }
            let child = children[*child_idx];
            *child_idx += 1;
            match marks.get(child).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    // Cycle: the path from `child` to `node`, closed.
                    let pos = path
                        .iter()
                        .position(|&n| n == child)
                        .unwrap_or(path.len() - 1);
                    let mut cycle: Vec<String> =
                        path[pos..].iter().map(|s| (*s).to_owned()).collect();
                    // Canonical rotation: start at the smallest node.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    if reported.contains(&cycle) {
                        continue;
                    }
                    let closed: Vec<String> =
                        cycle.iter().cloned().chain([cycle[0].clone()]).collect();
                    let mut edges = Vec::new();
                    let mut suppressed = false;
                    let mut anchor: Option<(String, usize)> = None;
                    for pair in closed.windows(2) {
                        let key = (pair[0].clone(), pair[1].clone());
                        if state.lock_edge_allowed.contains(&key) {
                            suppressed = true;
                        }
                        if let Some((path, line)) = state.lock_edges.get(&key) {
                            if anchor.is_none() {
                                anchor = Some((path.clone(), *line));
                            }
                            edges.push(format!("{} -> {} ({path}:{line})", pair[0], pair[1]));
                        }
                    }
                    reported.insert(cycle);
                    if suppressed {
                        continue;
                    }
                    let (path, line) = anchor.unwrap_or_else(|| ("<unknown>".into(), 0));
                    diags.push(Diagnostic {
                        rule: "lock-order",
                        path,
                        line,
                        message: format!(
                            "lock acquisition cycle (potential deadlock): {}",
                            edges.join(", ")
                        ),
                    });
                }
                Mark::White => {
                    marks.insert(child, Mark::Grey);
                    path.push(child);
                    stack.push((child, 0));
                }
                Mark::Black => {}
            }
        }
    }
}

// ------------------------------------------------------------ failpoint-drift

/// Collects `failpoint::check("…")` seams from production code and
/// `failpoint::{configure,fired,hits,clear}("…")` references from
/// `tests/chaos.rs`.
fn collect_failpoints(file: &SourceFile, state: &mut CrossFileState) {
    let is_chaos = file.rel == "tests/chaos.rs";
    if is_chaos {
        state.saw_chaos = true;
    }
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Require the `failpoint :: <fn>` path so ordinary idents named
        // `check` never register.
        let is_failpoint_call = i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("failpoint");
        if !is_failpoint_call {
            continue;
        }
        if is_chaos {
            if !matches!(t.text.as_str(), "configure" | "fired" | "hits" | "clear") {
                continue;
            }
            let Some(open) = tokens.get(i + 1) else {
                continue;
            };
            if let Some((lit, line)) = file.next_string_literal(open.line, open.col) {
                state
                    .chaos_points
                    .entry(lit)
                    .or_insert((file.rel.clone(), line + 1));
            }
        } else {
            if t.text != "check" || file.is_test_line(t.line) {
                continue;
            }
            let Some(open) = tokens.get(i + 1) else {
                continue;
            };
            // Dynamic seam: check(&format!("prefix{…}", …)).
            let dynamic = tokens.get(i + 2).is_some_and(|n| n.is_punct('&'))
                && tokens.get(i + 3).is_some_and(|n| n.is_ident("format"));
            if let Some((lit, line)) = file.next_string_literal(open.line, open.col) {
                if dynamic {
                    let prefix = lit.split('{').next().unwrap_or("").to_owned();
                    state
                        .checked_prefixes
                        .entry(prefix)
                        .or_insert((file.rel.clone(), line + 1));
                } else {
                    state
                        .checked_points
                        .entry(lit)
                        .or_insert((file.rel.clone(), line + 1));
                }
            }
        }
    }
}

fn failpoint_drift(state: &CrossFileState, diags: &mut Vec<Diagnostic>) {
    // Nothing registered and no chaos suite: nothing to cross-check
    // (keeps fixture runs over partial trees quiet).
    if !state.saw_chaos && state.checked_points.is_empty() {
        return;
    }
    for (name, (path, line)) in &state.checked_points {
        if !state.chaos_points.contains_key(name) {
            diags.push(Diagnostic {
                rule: "failpoint-drift",
                path: path.clone(),
                line: *line,
                message: format!(
                    "failpoint `{name}` is checked in production but never exercised in \
                     tests/chaos.rs; seam coverage is rotting"
                ),
            });
        }
    }
    for (name, (path, line)) in &state.chaos_points {
        let live = state.checked_points.contains_key(name)
            || state
                .checked_prefixes
                .keys()
                .any(|p| !p.is_empty() && name.starts_with(p.as_str()));
        if !live {
            diags.push(Diagnostic {
                rule: "failpoint-drift",
                path: path.clone(),
                line: *line,
                message: format!(
                    "tests/chaos.rs references failpoint `{name}` that no production \
                     code checks; the seam is dead"
                ),
            });
        }
    }
}
