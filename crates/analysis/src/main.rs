//! CLI entry point: `meloppr-lint [--root DIR] [--deny] [--rule NAME]...
//! [--list-rules]`.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or I/O error. Output is deterministic: findings in
//! (path, line, rule, message) order, then a one-line summary.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut only: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--deny" => deny = true,
            "--rule" => match args.next() {
                Some(name) if meloppr_lint::rules::is_known_rule(&name) => {
                    only.insert(name);
                }
                Some(name) => return usage(&format!("unknown rule `{name}`")),
                None => return usage("--rule needs a rule name"),
            },
            "--list-rules" => {
                for rule in meloppr_lint::rules::RULES {
                    println!("{:<20} {}", rule.name, rule.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let filter = (!only.is_empty()).then_some(&only);
    let report = match meloppr_lint::run(&root, filter) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("meloppr-lint: {err}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "meloppr-lint: {} violation(s), {} suppressed, {} file(s) scanned",
        report.diagnostics.len(),
        report.suppressed,
        report.files_scanned
    );
    if deny && !report.clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("meloppr-lint: {err}");
    }
    eprintln!(
        "usage: meloppr-lint [--root DIR] [--deny] [--rule NAME]... [--list-rules]\n\
         \n\
         Scans crates/, src/, examples/ and tests/ under DIR (default `.`)\n\
         and reports violations of the repo's invariants. With --deny, any\n\
         violation exits non-zero (the CI gate). Suppress a finding with\n\
         `// lint:allow(rule) -- justification` on or above the line."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
