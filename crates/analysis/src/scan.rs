//! Lightweight Rust source scanning: comment/string masking, token
//! extraction, brace-tracked function spans, `#[cfg(test)]` region
//! detection, and `lint:allow` suppression parsing.
//!
//! This is deliberately **not** a parser. The workspace is offline (no
//! `syn`), and the invariants the lint enforces are lexical: a
//! `.unwrap()` token, a `HashMap` identifier, the order two `.lock()`
//! calls appear in one function body. A character-level state machine
//! that masks comments and string contents — preserving byte positions
//! 1:1 — plus a brace counter is enough, and is simple enough to audit
//! by eye, which matters for a tool whose job is to gate CI.

/// One scanned line.
#[derive(Debug)]
pub struct Line {
    /// The line with comments and string/char-literal *contents*
    /// blanked to spaces (delimiters kept), byte positions preserved.
    pub code: String,
    /// Concatenated comment text on this line (for `lint:allow` and
    /// `SAFETY:` detection).
    pub comment: String,
    /// Whether this line sits inside a `#[cfg(test)]` region (or the
    /// whole file is test code: `tests/` trees, `test_util.rs`).
    pub in_test: bool,
}

/// One `fn` item: name, flattened signature, and body line range.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Signature text from `fn` to the opening brace, whitespace
    /// collapsed.
    pub sig: String,
    /// 0-based line range of the body, inclusive, covering the braces.
    pub body: (usize, usize),
    pub in_test: bool,
}

/// One token of masked code.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TokKind {
    /// Identifier or number literal start.
    Ident,
    /// Any single non-ident, non-whitespace character.
    Punct,
}

/// A token with its position (0-based line, byte column).
#[derive(Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Tok {
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A `lint:allow(rule, ...)` suppression attached to a line.
#[derive(Debug)]
pub struct Allow {
    pub rules: Vec<String>,
    /// Justification after ` -- `; empty when missing (which is itself
    /// a diagnostic).
    pub justification: String,
    /// 0-based line the comment was written on.
    pub comment_line: usize,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    pub raw: Vec<String>,
    pub lines: Vec<Line>,
    pub fns: Vec<FnSpan>,
    pub tokens: Vec<Tok>,
    /// `allows[line]` lists the suppressions governing that line.
    allows: Vec<Vec<usize>>,
    allow_entries: Vec<Allow>,
}

impl SourceFile {
    /// Scans `text` as the file at repo-relative path `rel`.
    pub fn scan(rel: &str, text: &str) -> SourceFile {
        let whole_file_is_test =
            rel.starts_with("tests/") || rel.contains("/tests/") || rel.ends_with("test_util.rs");
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let mut lines = mask(text);
        mark_test_regions(&mut lines, whole_file_is_test);
        let tokens = tokenize(&lines);
        let fns = find_fns(&tokens, &lines);
        let (allows, allow_entries) = collect_allows(&lines);
        SourceFile {
            rel: rel.to_owned(),
            raw,
            lines,
            fns,
            tokens,
            allows,
            allow_entries,
        }
    }

    /// Whether `rule` is suppressed on 0-based `line`.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.get(line).is_some_and(|ids| {
            ids.iter()
                .any(|&id| self.allow_entries[id].rules.iter().any(|r| r == rule))
        })
    }

    /// Every `lint:allow` in the file, for malformed-allow checking.
    pub fn allow_entries(&self) -> &[Allow] {
        &self.allow_entries
    }

    /// The innermost function span containing 0-based `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= line && line <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// Whether 0-based `line` is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.lines.get(line).is_none_or(|l| l.in_test)
    }

    /// Reads the next string literal in the *raw* source at or after
    /// `(line, col)` — used where the masked text has blanked the
    /// content (e.g. failpoint name literals). Returns the literal and
    /// its line.
    pub fn next_string_literal(&self, line: usize, col: usize) -> Option<(String, usize)> {
        let mut start = col;
        for l in line..self.raw.len().min(line + 4) {
            let raw = &self.raw[l];
            if let Some(open) = raw[start.min(raw.len())..].find('"') {
                let begin = start + open + 1;
                let end = raw[begin..].find('"')?;
                return Some((raw[begin..begin + end].to_owned(), l));
            }
            start = 0;
        }
        None
    }
}

/// Masks comments and string/char-literal contents to spaces,
/// preserving byte positions exactly (every masked byte becomes one
/// space; delimiters `"` stay). Handles nested block comments, raw
/// strings (`r"…"`, `r#"…"#`, byte variants), escapes, and the
/// char-literal/lifetime ambiguity.
fn mask(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str { raw_hashes: Option<u32> },
        CharLit,
    }
    let bytes: Vec<char> = text.chars().collect();
    let mut st = St::Code;
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    let mut escaped = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            out.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Str { raw_hashes: None };
                    escaped = false;
                    code.push('"');
                    i += 1;
                    continue;
                }
                // Raw/byte string prefixes: r"", r#""#, b"", br#""#.
                // Only when the prefix is not the tail of an identifier.
                let prev_is_ident =
                    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_');
                if (c == 'r' || c == 'b') && !prev_is_ident {
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        // Emit the prefix as spaces, keep the quote.
                        for _ in i..j {
                            code.push(' ');
                        }
                        code.push('"');
                        st = St::Str {
                            raw_hashes: Some(hashes),
                        };
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: '\x..' or 'x' is a
                    // literal; 'ident (no closing quote right after one
                    // char) is a lifetime.
                    if next == Some('\\') || (bytes.get(i + 2) == Some(&'\'') && next != Some('\''))
                    {
                        st = St::CharLit;
                        escaped = false;
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            St::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    comment.push_str("  ");
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    comment.push_str("  ");
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            St::Str { raw_hashes } => match raw_hashes {
                None => {
                    if escaped {
                        escaped = false;
                        code.push(' ');
                        i += 1;
                    } else if c == '\\' {
                        escaped = true;
                        code.push(' ');
                        i += 1;
                    } else if c == '"' {
                        st = St::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Some(hashes) => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0u32;
                        while seen < hashes && bytes.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            code.push('"');
                            for _ in 0..hashes {
                                code.push(' ');
                            }
                            st = St::Code;
                            i = j;
                            continue;
                        }
                    }
                    code.push(' ');
                    i += 1;
                }
            },
            St::CharLit => {
                if escaped {
                    escaped = false;
                    code.push(' ');
                    i += 1;
                } else if c == '\\' {
                    escaped = true;
                    code.push(' ');
                    i += 1;
                } else if c == '\'' {
                    st = St::Code;
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    out
}

/// Marks lines inside `#[cfg(test)]`-attributed items (brace-tracked)
/// as test code.
fn mark_test_regions(lines: &mut [Line], whole_file: bool) {
    if whole_file {
        for line in lines.iter_mut() {
            line.in_test = true;
        }
        return;
    }
    let mut depth = 0usize;
    let mut pending_test = false;
    let mut test_open_depths: Vec<usize> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.contains("cfg(test") || line.code.contains("cfg(all(test") {
            pending_test = true;
        }
        line.in_test = !test_open_depths.is_empty() || pending_test;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        test_open_depths.push(depth);
                        pending_test = false;
                    }
                }
                '}' => {
                    if test_open_depths.last() == Some(&depth) {
                        test_open_depths.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)]` on a braceless item (`use …;`): the
                // terminating semicolon ends the attribute's reach.
                ';' => pending_test = false,
                _ => {}
            }
        }
    }
}

/// Splits masked code into identifier and single-character punct
/// tokens, recording positions.
fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    col: start,
                });
            } else {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: lineno,
                    col: i,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Finds `fn` items by token scanning with brace tracking. Nested
/// functions are recorded individually; [`SourceFile::enclosing_fn`]
/// resolves the innermost one.
fn find_fns(tokens: &[Tok], lines: &[Line]) -> Vec<FnSpan> {
    struct Open {
        name: String,
        sig: String,
        sig_done: bool,
        body_start: usize,
        open_depth: usize,
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut stack: Vec<Open> = Vec::new();
    let mut pending: Option<Open> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    pending = Some(Open {
                        name: name_tok.text.clone(),
                        sig: String::new(),
                        sig_done: false,
                        body_start: 0,
                        open_depth: 0,
                    });
                }
            }
        }
        if let Some(p) = pending.as_mut() {
            if !p.sig_done && !t.is_punct('{') {
                if !p.sig.is_empty() {
                    p.sig.push(' ');
                }
                p.sig.push_str(&t.text);
            }
        }
        if t.is_punct('{') {
            depth += 1;
            if let Some(mut p) = pending.take() {
                p.sig_done = true;
                p.body_start = t.line;
                p.open_depth = depth;
                stack.push(p);
            }
        } else if t.is_punct('}') {
            if let Some(top) = stack.last() {
                if top.open_depth == depth {
                    let top = stack.pop().expect("stack non-empty: just peeked");
                    let in_test = lines.get(top.body_start).is_some_and(|l| l.in_test);
                    out.push(FnSpan {
                        name: top.name,
                        sig: top.sig,
                        body: (top.body_start, t.line),
                        in_test,
                    });
                }
            }
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') && pending.as_ref().is_some_and(|p| !p.sig_done) {
            // Trait method declaration without a body.
            pending = None;
        }
        i += 1;
    }
    out.sort_by_key(|f| f.body);
    out
}

/// Parses `lint:allow(rule, ...) -- justification` comments and maps
/// each to the line(s) it governs: its own line when that line has
/// code, otherwise the next line that does.
fn collect_allows(lines: &[Line]) -> (Vec<Vec<usize>>, Vec<Allow>) {
    let mut entries: Vec<Allow> = Vec::new();
    let mut map: Vec<Vec<usize>> = vec![Vec::new(); lines.len()];
    for (lineno, line) in lines.iter().enumerate() {
        // Suppressions live in plain `//` comments only. Doc comments
        // (`///`, `//!` — their text starts with `/` or `!`) may quote
        // the syntax when documenting it without arming it.
        if line.comment.starts_with('/') || line.comment.starts_with('!') {
            continue;
        }
        let Some(pos) = line.comment.find("lint:allow(") else {
            continue;
        };
        let rest = &line.comment[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            entries.push(Allow {
                rules: Vec::new(),
                justification: String::new(),
                comment_line: lineno,
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let after = &rest[close + 1..];
        let justification = after
            .find("--")
            .map(|p| after[p + 2..].trim().to_owned())
            .unwrap_or_default();
        let id = entries.len();
        entries.push(Allow {
            rules,
            justification,
            comment_line: lineno,
        });
        // Attach to this line when it carries code, else to the next
        // line that does.
        let has_code = !line.code.trim().is_empty();
        let target = if has_code {
            Some(lineno)
        } else {
            (lineno + 1..lines.len()).find(|&l| !lines[l].code.trim().is_empty())
        };
        if let Some(t) = target {
            map[t].push(id);
        }
    }
    (map, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let f = SourceFile::scan(
            "crates/x/src/a.rs",
            "let a = \"unwrap() inside\"; // .unwrap() in comment\nlet b = 1;\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap()"));
        assert_eq!(f.lines[1].code, "let b = 1;");
    }

    #[test]
    fn masking_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"HashMap \"quoted\"\"#; let c = 'x'; }\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(!f.lines[0].code.contains("HashMap"));
        // Lifetime survives masking; the fn is still found.
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "f");
    }

    #[test]
    fn nested_block_comments_mask_fully() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("outer"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(!f.is_test_line(0));
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn tests_tree_files_are_all_test() {
        let f = SourceFile::scan("tests/chaos.rs", "fn helper() {}\n");
        assert!(f.is_test_line(0));
    }

    #[test]
    fn fn_spans_track_bodies_and_signatures() {
        let src = "pub fn outer(ws: &mut QueryWorkspace) -> u32 {\n    fn inner() {}\n    1\n}\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert_eq!(f.fns.len(), 2);
        let outer = f.enclosing_fn(2).expect("line 2 is inside outer");
        assert_eq!(outer.name, "outer");
        assert!(outer.sig.contains("QueryWorkspace"));
        let inner = f.enclosing_fn(1).expect("line 1 is inside inner");
        assert_eq!(inner.name, "inner");
    }

    #[test]
    fn allows_attach_to_their_line_or_the_next() {
        let src = "let a = x.unwrap(); // lint:allow(panic-freedom) -- bounded by caller\n\
                   // lint:allow(fast-hash) -- cold path\nlet b: HashMap<u32,u32>;\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(f.allowed(0, "panic-freedom"));
        assert!(!f.allowed(0, "fast-hash"));
        assert!(f.allowed(2, "fast-hash"));
        assert_eq!(f.allow_entries().len(), 2);
        assert_eq!(f.allow_entries()[0].justification, "bounded by caller");
    }

    #[test]
    fn string_literals_recoverable_from_raw() {
        let src = "failpoint::check(\"cache.extract\")?;\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        let (lit, line) = f.next_string_literal(0, 0).expect("literal present");
        assert_eq!(lit, "cache.extract");
        assert_eq!(line, 0);
    }
}
