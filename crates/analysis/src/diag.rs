//! Diagnostics: one finding per (file, line, rule), rendered and
//! ordered deterministically so CI output is diffable run-to-run.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced it (a name from the rule registry).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the canonical (path, line, rule, message)
/// order. Every emitter goes through this before output so the report
/// is byte-stable regardless of traversal order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}
