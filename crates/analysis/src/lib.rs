//! meloppr-lint: repo-native static invariant checker.
//!
//! The workspace's correctness story leans on conventions a compiler
//! cannot see: the serving stack recovers poisoned locks instead of
//! unwrapping them, hot paths thread scratch workspaces instead of
//! allocating, node-keyed maps use the FxHash aliases, every failpoint
//! seam stays exercised by the chaos suite. This crate scans the source
//! tree lexically (no `syn`; the container is offline and zero
//! dependencies means the gate can never be broken by the code it
//! gates) and enforces each convention as a named, individually
//! deniable rule.
//!
//! Suppression syntax, attached to the offending line or the line
//! above:
//!
//! ```text
//! // lint:allow(rule-name) -- why this site is provably fine
//! ```

#![forbid(unsafe_code)]
pub mod diag;
pub mod rules;
pub mod scan;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::Diagnostic;
use scan::SourceFile;

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving findings, in canonical (path, line, rule, message)
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a justified `lint:allow`.
    pub suppressed: usize,
    pub files_scanned: usize,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints an in-memory file set: `(repo-relative path, contents)` pairs.
/// This is the whole pipeline minus the filesystem walk, so fixture
/// tests feed sources directly without temp directories.
pub fn lint_files(files: &[(String, String)], only: Option<&BTreeSet<String>>) -> LintReport {
    let scanned: Vec<SourceFile> = files
        .iter()
        .map(|(rel, text)| SourceFile::scan(rel, text))
        .collect();
    let mut state = rules::CrossFileState::default();
    let mut raw = Vec::new();
    for file in &scanned {
        rules::check_file(file, &mut state, &mut raw);
    }
    rules::finish(&state, &mut raw);

    let mut report = LintReport {
        files_scanned: scanned.len(),
        ..LintReport::default()
    };
    for d in raw {
        if only.is_some_and(|set| !set.contains(d.rule)) {
            continue;
        }
        let allowed = scanned
            .iter()
            .find(|f| f.rel == d.path)
            .is_some_and(|f| d.line > 0 && f.allowed(d.line - 1, d.rule));
        if allowed {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }
    diag::sort(&mut report.diagnostics);
    report
}

/// The repo sub-trees the checker walks. `tests/` is included so the
/// failpoint-drift rule can cross-reference the chaos suite (other
/// rules exempt test code line-by-line).
const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Walks `root` and lints every tracked `.rs` file.
pub fn run(root: &Path, only: Option<&BTreeSet<String>>) -> io::Result<LintReport> {
    let mut paths = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, fs::read_to_string(&path)?));
    }
    // Deterministic input order regardless of readdir order.
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(lint_files(&files, only))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
