//! Self-check: the real tree stays clean under the checker — the same
//! invocation CI gates with (`meloppr-lint --deny`). A violation
//! introduced anywhere in the workspace fails this test locally before
//! CI sees it.

use std::path::Path;

#[test]
fn repo_tree_is_clean_under_all_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the repo root")
        .to_path_buf();
    let report = meloppr_lint::run(&root, None).expect("repo tree is readable");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — scan roots moved?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    assert!(
        report.clean(),
        "meloppr-lint found violations in the tree:\n{}",
        rendered.join("\n")
    );
}
