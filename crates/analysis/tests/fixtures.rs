//! Fixture tests: every rule proves one true positive and one
//! `lint:allow`-suppressed negative against in-memory sources, so rule
//! regressions fail here before they silently stop gating CI.

use std::collections::BTreeSet;

use meloppr_lint::{lint_files, LintReport};

fn lint_one(rel: &str, src: &str) -> LintReport {
    lint_files(&[(rel.to_owned(), src.to_owned())], None)
}

fn rules_hit(report: &LintReport) -> BTreeSet<&'static str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

// ------------------------------------------------------------ panic-freedom

#[test]
fn panic_freedom_flags_unwrap_expect_macros_and_indexing() {
    let src = "fn f(v: Vec<u32>, i: usize) -> u32 {\n\
               \x20   let a = v.get(i).unwrap();\n\
               \x20   let b = v.get(i).expect(\"msg\");\n\
               \x20   if i > 9 { panic!(\"boom\"); }\n\
               \x20   v[i]\n\
               }\n";
    let report = lint_one("crates/core/src/server/fixture.rs", src);
    let lines: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "panic-freedom")
        .map(|d| d.line)
        .collect();
    assert_eq!(lines, vec![2, 3, 4, 5], "{:?}", report.diagnostics);
}

#[test]
fn panic_freedom_respects_allow_scope_and_tests() {
    let src = "fn f(v: Vec<u32>, i: usize) -> u32 {\n\
               \x20   // lint:allow(panic-freedom) -- i bounds-checked by caller\n\
               \x20   v[i]\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   fn t(v: Vec<u32>) -> u32 { v[0] }\n\
               }\n";
    let report = lint_one("crates/core/src/server/fixture.rs", src);
    assert!(report.clean(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
    // The same source outside the serving scope is not checked at all.
    let elsewhere = lint_one(
        "crates/graph/src/fixture.rs",
        "fn f(v: Vec<u32>) -> u32 { v[0] }\n",
    );
    assert!(!rules_hit(&elsewhere).contains("panic-freedom"));
}

// --------------------------------------------------------------- lock-order

/// Two functions acquiring the same two mutexes in opposite orders: the
/// classic ABBA deadlock the rule exists to reject.
const ABBA: &str = "struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
                    impl S {\n\
                    \x20   fn ab(&self) {\n\
                    \x20       let _a = self.a.lock();\n\
                    \x20       let _b = self.b.lock();\n\
                    \x20   }\n\
                    \x20   fn ba(&self) {\n\
                    \x20       let _b = self.b.lock();\n\
                    \x20       let _a = self.a.lock();\n\
                    \x20   }\n\
                    }\n";

#[test]
fn lock_order_rejects_abba_cycles() {
    let report = lint_one("crates/core/src/fixture.rs", ABBA);
    let cycles: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-order")
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.diagnostics);
    assert!(
        cycles[0].message.contains("fixture.a") && cycles[0].message.contains("fixture.b"),
        "cycle message names both lock classes: {}",
        cycles[0].message
    );
}

#[test]
fn lock_order_allow_on_one_edge_suppresses_the_cycle() {
    let src = ABBA.replace(
        "\x20       let _a = self.a.lock();\n\x20   }\n}",
        "\x20       // lint:allow(lock-order) -- _b dropped before this in real code\n\
         \x20       let _a = self.a.lock();\n\x20   }\n}",
    );
    assert_ne!(src, ABBA, "fixture edit must apply");
    let report = lint_one("crates/core/src/fixture.rs", &src);
    assert!(
        !rules_hit(&report).contains("lock-order"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn lock_order_consistent_ordering_is_clean() {
    let src = ABBA.replace(
        "let _b = self.b.lock();\n\x20       let _a = self.a.lock();",
        "let _a = self.a.lock();\n\x20       let _b = self.b.lock();",
    );
    let report = lint_one("crates/core/src/fixture.rs", &src);
    assert!(!rules_hit(&report).contains("lock-order"));
}

// ----------------------------------------------------------- hot-path-alloc

#[test]
fn hot_path_alloc_flags_workspace_threaded_fns_only() {
    let src = "fn diffuse_into(ws: &mut Workspace) {\n\
               \x20   let v: Vec<u32> = Vec::new();\n\
               \x20   let s = format!(\"x\");\n\
               }\n\
               fn setup() -> Vec<u32> {\n\
               \x20   Vec::new()\n\
               }\n";
    let report = lint_one("crates/core/src/diffusion.rs", src);
    let lines: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "hot-path-alloc")
        .map(|d| d.line)
        .collect();
    // Both allocs in the hot fn flagged; the cold `setup` untouched.
    assert_eq!(lines, vec![2, 3], "{:?}", report.diagnostics);
}

#[test]
fn hot_path_alloc_allow_and_cold_files_are_clean() {
    let src = "fn diffuse_into(ws: &mut Workspace) {\n\
               \x20   // lint:allow(hot-path-alloc) -- grows once, amortized by the pool\n\
               \x20   let v: Vec<u32> = Vec::new();\n\
               }\n";
    let report = lint_one("crates/core/src/diffusion.rs", src);
    assert!(report.clean(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
    // The same fn in a file outside the hot set is not checked.
    let cold = lint_one("crates/core/src/config.rs", src);
    assert_eq!(cold.suppressed, 0);
}

// ---------------------------------------------------------------- fast-hash

#[test]
fn fast_hash_flags_std_maps_outside_fast_hash_rs() {
    let src = "use std::collections::HashMap;\n\
               fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let report = lint_one("crates/graph/src/fixture.rs", src);
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "fast-hash")
            .count(),
        3,
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn fast_hash_exempts_fast_hash_rs_tests_and_allows() {
    let hub = "pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FxBuild>;\n";
    assert!(lint_one("crates/graph/src/fast_hash.rs", hub).clean());
    let test_only = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(lint_one("crates/graph/src/fixture.rs", test_only).clean());
    let allowed = "// lint:allow(fast-hash) -- cold path keyed by attacker-controlled strings\n\
                   use std::collections::HashMap;\n";
    let report = lint_one("crates/graph/src/fixture.rs", allowed);
    assert!(report.clean(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------- poison-recovery

#[test]
fn poison_recovery_flags_lock_unwrap_chains() {
    let src = "fn f(m: &std::sync::Mutex<u32>, rw: &std::sync::RwLock<u32>) {\n\
               \x20   let a = m.lock().unwrap();\n\
               \x20   let b = rw.read().expect(\"poisoned\");\n\
               \x20   let c = rw.write()\n\
               \x20       .unwrap();\n\
               }\n";
    let report = lint_one("crates/core/src/fixture.rs", src);
    let lines: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "poison-recovery")
        .map(|d| d.line)
        .collect();
    assert_eq!(lines, vec![2, 3, 4], "{:?}", report.diagnostics);
}

#[test]
fn poison_recovery_accepts_the_recovery_idiom_and_io_read() {
    let src = "fn f(m: &std::sync::Mutex<u32>, s: &mut impl std::io::Read) {\n\
               \x20   let a = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
               \x20   let mut buf = [0u8; 8];\n\
               \x20   s.read(&mut buf).unwrap();\n\
               }\n";
    let report = lint_one("crates/graph/src/fixture.rs", src);
    assert!(
        !rules_hit(&report).contains("poison-recovery"),
        "{:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------- failpoint-drift

#[test]
fn failpoint_drift_catches_both_directions() {
    let prod = "fn f() -> Result<(), ()> {\n\
                \x20   crate::failpoint::check(\"ball.diffuse\")?;\n\
                \x20   crate::failpoint::check(\"cache.extract\")?;\n\
                \x20   Ok(())\n\
                }\n";
    let chaos = "fn t() {\n\
                 \x20   failpoint::configure(\"cache.extract\", spec());\n\
                 \x20   failpoint::configure(\"persist.io\", spec());\n\
                 }\n";
    let report = lint_files(
        &[
            ("crates/core/src/fixture.rs".into(), prod.into()),
            ("tests/chaos.rs".into(), chaos.into()),
        ],
        None,
    );
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "failpoint-drift")
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 2, "{:?}", report.diagnostics);
    // Unexercised production seam…
    assert!(msgs.iter().any(|m| m.contains("`ball.diffuse`")));
    // …and a dead name in the chaos suite.
    assert!(msgs.iter().any(|m| m.contains("`persist.io`")));
}

#[test]
fn failpoint_drift_accepts_dynamic_prefix_families() {
    let prod = "fn f(kind: u32) -> Result<(), ()> {\n\
                \x20   crate::failpoint::check(&format!(\"backend.query.{kind}\"))?;\n\
                \x20   Ok(())\n\
                }\n";
    let chaos = "fn t() { failpoint::configure(\"backend.query.meloppr\", spec()); }\n";
    let report = lint_files(
        &[
            ("crates/core/src/fixture.rs".into(), prod.into()),
            ("tests/chaos.rs".into(), chaos.into()),
        ],
        None,
    );
    assert!(
        !rules_hit(&report).contains("failpoint-drift"),
        "{:?}",
        report.diagnostics
    );
}

// ------------------------------------------------------ undocumented-unsafe

#[test]
fn undocumented_unsafe_requires_a_safety_block() {
    let bare = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let report = lint_one("crates/core/src/fixture.rs", bare);
    assert!(rules_hit(&report).contains("undocumented-unsafe"));

    let documented = "fn f(p: *const u8) -> u8 {\n\
                      \x20   // SAFETY: caller guarantees p is valid for reads (API contract\n\
                      \x20   // documented on the public wrapper).\n\
                      \x20   unsafe { *p }\n\
                      }\n";
    let report = lint_one("crates/core/src/fixture.rs", documented);
    assert!(
        !rules_hit(&report).contains("undocumented-unsafe"),
        "{:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------- bad-allow

#[test]
fn bad_allow_flags_missing_justification_and_unknown_rules() {
    let src = "fn f(v: Vec<u32>) -> u32 {\n\
               \x20   // lint:allow(panic-freedom)\n\
               \x20   let a = v.first().unwrap();\n\
               \x20   // lint:allow(no-such-rule) -- misspelled\n\
               \x20   *a\n\
               }\n";
    let report = lint_one("crates/core/src/server/fixture.rs", src);
    let bad: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "bad-allow")
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(bad.len(), 2, "{:?}", report.diagnostics);
    assert!(bad.iter().any(|m| m.contains("justification")));
    assert!(bad.iter().any(|m| m.contains("no-such-rule")));
    // The justification-less allow still suppresses (the bad-allow
    // finding is the enforcement, not a dead suppression).
    assert!(!rules_hit(&report).contains("panic-freedom"));
}

// ------------------------------------------------------------- determinism

#[test]
fn diagnostics_are_sorted_and_stable_across_input_order() {
    let a = (
        "crates/core/src/server/b.rs".to_owned(),
        "fn f(v: Vec<u32>) -> u32 { v.first().unwrap().clone() }\n".to_owned(),
    );
    let b = (
        "crates/core/src/server/a.rs".to_owned(),
        "fn g(v: Vec<u32>, i: usize) -> u32 { v[i] }\n".to_owned(),
    );
    let fwd = lint_files(&[a.clone(), b.clone()], None);
    let rev = lint_files(&[b, a], None);
    let render = |r: &LintReport| {
        r.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&fwd), render(&rev));
    let mut sorted = render(&fwd);
    sorted.sort();
    assert_eq!(render(&fwd), sorted, "output is in canonical order");
}

// ------------------------------------------------------------- rule filter

#[test]
fn rule_filter_restricts_output() {
    let src = "use std::collections::HashMap;\n\
               fn f(v: Vec<u32>, i: usize) -> u32 { v[i] }\n";
    let only: BTreeSet<String> = ["fast-hash".to_owned()].into();
    let report = lint_files(
        &[("crates/core/src/server/fixture.rs".into(), src.into())],
        Some(&only),
    );
    assert_eq!(rules_hit(&report), ["fast-hash"].into());
}
