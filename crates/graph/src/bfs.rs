//! Depth-limited breadth-first search and ball profiling.
//!
//! MeLoPPR extracts the depth-`l` BFS ball `G_l(v)` around a node before
//! every diffusion stage (§IV-A). The ball — not the full graph — is what
//! gets loaded into on-chip memory, so ball sizes drive both the memory
//! model (Table II) and the host-side BFS latency (light-blue bars of
//! Fig. 7). [`bfs_ball`] returns the visited node set together with the
//! exact amount of adjacency-scanning work performed, which the cost models
//! consume.

use std::collections::VecDeque;

use crate::fast_hash::FastHashMap;

use crate::error::{GraphError, Result};
use crate::view::GraphView;
use crate::NodeId;

/// The result of a depth-limited BFS from a seed node.
///
/// `nodes[0]` is always the seed; nodes appear in BFS (non-decreasing
/// distance) order, with `dist[i]` the hop distance of `nodes[i]`.
///
/// The `Default` value is an empty ball (no nodes); it exists so callers
/// can own reusable storage and fill it with [`bfs_ball_into`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BfsBall {
    /// The node the search started from.
    pub seed: NodeId,
    /// The depth limit the search was run with.
    pub depth: u32,
    /// Visited nodes in BFS order (seed first).
    pub nodes: Vec<NodeId>,
    /// Hop distance from the seed, parallel to `nodes`.
    pub dist: Vec<u32>,
    /// Total adjacency entries scanned while expanding nodes at distance
    /// `< depth`. This is the unit of work charged by the host BFS cost
    /// model.
    pub edges_scanned: usize,
}

impl BfsBall {
    /// Number of nodes in the ball.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes at exactly the depth limit (the unexpanded frontier).
    pub fn frontier(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .zip(&self.dist)
            .filter(move |(_, &d)| d == self.depth)
            .map(|(&v, _)| v)
    }
}

/// Runs a BFS from `seed`, visiting every node within `depth` hops.
///
/// Nodes at distance exactly `depth` are recorded but not expanded, so
/// [`BfsBall::edges_scanned`] counts only the adjacency entries of interior
/// nodes.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `seed` is not a node of `g`.
///
/// # Examples
///
/// ```
/// use meloppr_graph::{bfs_ball, generators};
///
/// # fn main() -> Result<(), meloppr_graph::GraphError> {
/// let g = generators::path(10)?;
/// let ball = bfs_ball(&g, 0, 3)?;
/// assert_eq!(ball.nodes, vec![0, 1, 2, 3]);
/// assert_eq!(ball.dist, vec![0, 1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub fn bfs_ball<G: GraphView + ?Sized>(g: &G, seed: NodeId, depth: u32) -> Result<BfsBall> {
    let mut ball = BfsBall::default();
    bfs_ball_into(g, seed, depth, &mut BfsScratch::new(), &mut ball)?;
    Ok(ball)
}

/// Reusable working memory for [`bfs_ball_into`]: the visited map and the
/// expansion queue.
///
/// Dropping and re-creating these per search is the dominant allocation
/// cost of ball extraction; a scratch kept across searches amortizes it to
/// zero once capacities have warmed up.
#[derive(Debug, Default)]
pub struct BfsScratch {
    seen: FastHashMap<NodeId, u32>,
    queue: VecDeque<(NodeId, u32)>,
}

impl BfsScratch {
    /// An empty scratch; capacities grow on first use and are retained.
    pub fn new() -> Self {
        BfsScratch::default()
    }
}

/// As [`bfs_ball`], but fills caller-owned storage instead of allocating.
///
/// `out` is cleared and overwritten; `scratch` is cleared and reused. In
/// steady state (capacities warmed up to the largest ball seen) the search
/// performs no heap allocation.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `seed` is not a node of `g`.
pub fn bfs_ball_into<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    depth: u32,
    scratch: &mut BfsScratch,
    out: &mut BfsBall,
) -> Result<()> {
    if seed as usize >= g.num_nodes() {
        return Err(GraphError::NodeOutOfBounds {
            node: seed,
            num_nodes: g.num_nodes(),
        });
    }
    out.seed = seed;
    out.depth = depth;
    out.nodes.clear();
    out.dist.clear();
    out.nodes.push(seed);
    out.dist.push(0);
    let seen = &mut scratch.seen;
    let queue = &mut scratch.queue;
    seen.clear();
    queue.clear();
    seen.insert(seed, 0);
    queue.push_back((seed, 0));
    let mut edges_scanned = 0usize;

    while let Some((u, d)) = queue.pop_front() {
        if d == depth {
            continue;
        }
        let nbrs = g.neighbors(u);
        edges_scanned += nbrs.len();
        for &v in nbrs {
            if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(v) {
                slot.insert(d + 1);
                out.nodes.push(v);
                out.dist.push(d + 1);
                queue.push_back((v, d + 1));
            }
        }
    }
    out.edges_scanned = edges_scanned;
    Ok(())
}

/// Full-graph BFS distances from `seed` (`u32::MAX` for unreachable nodes).
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `seed` is not a node of `g`.
pub fn bfs_distances<G: GraphView + ?Sized>(g: &G, seed: NodeId) -> Result<Vec<u32>> {
    if seed as usize >= g.num_nodes() {
        return Err(GraphError::NodeOutOfBounds {
            node: seed,
            num_nodes: g.num_nodes(),
        });
    }
    let mut dist = vec![u32::MAX; g.num_nodes()];
    dist[seed as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(seed);
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

/// Size of the ball around `seed` at every depth `0..=max_depth`.
///
/// Entry `i` reports `(nodes, undirected_edges)` of the induced ball of
/// depth `i`. Used by the memory-budget planner to choose stage splits and
/// by documentation examples to illustrate exponential ball growth.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `seed` is not a node of `g`.
pub fn ball_growth<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    max_depth: u32,
) -> Result<Vec<BallSize>> {
    let ball = bfs_ball(g, seed, max_depth)?;
    let mut dist_of: FastHashMap<NodeId, u32> =
        FastHashMap::with_capacity_and_hasher(ball.nodes.len(), Default::default());
    for (i, &v) in ball.nodes.iter().enumerate() {
        dist_of.insert(v, ball.dist[i]);
    }
    // nodes_at[d] = number of nodes at distance exactly d.
    let mut nodes_at = vec![0usize; max_depth as usize + 1];
    for &d in &ball.dist {
        nodes_at[d as usize] += 1;
    }
    // edges_at[d] = undirected edges with max endpoint distance exactly d.
    let mut edges_at = vec![0usize; max_depth as usize + 1];
    for (i, &u) in ball.nodes.iter().enumerate() {
        let du = ball.dist[i];
        for &v in g.neighbors(u) {
            if let Some(&dv) = dist_of.get(&v) {
                // Count each undirected edge once, attributed to the deeper
                // endpoint; break ties by node id to avoid double counting.
                let deeper = du.max(dv);
                if du > dv || (du == dv && u < v) {
                    edges_at[deeper as usize] += 1;
                }
            }
        }
    }
    let mut out = Vec::with_capacity(max_depth as usize + 1);
    let (mut nodes_acc, mut edges_acc) = (0usize, 0usize);
    for d in 0..=max_depth as usize {
        nodes_acc += nodes_at[d];
        edges_acc += edges_at[d];
        out.push(BallSize {
            depth: d as u32,
            nodes: nodes_acc,
            edges: edges_acc,
        });
    }
    Ok(out)
}

/// Node and edge count of a BFS ball at a given depth, produced by
/// [`ball_growth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallSize {
    /// Ball radius in hops.
    pub depth: u32,
    /// Number of nodes within `depth` hops of the seed.
    pub nodes: usize,
    /// Number of undirected edges in the induced ball.
    pub edges: usize,
}

impl BallSize {
    /// The paper's size measure `|V| + |E|` for this ball.
    pub fn size(&self) -> usize {
        self.nodes + self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;

    #[test]
    fn ball_on_path() {
        let g = generators::path(6).unwrap();
        let ball = bfs_ball(&g, 2, 2).unwrap();
        assert_eq!(ball.nodes, vec![2, 1, 3, 0, 4]);
        assert_eq!(ball.dist, vec![0, 1, 1, 2, 2]);
        // Expanded nodes: 2 (deg 2), 1 (deg 2), 3 (deg 2) -> 6 entries.
        assert_eq!(ball.edges_scanned, 6);
    }

    #[test]
    fn depth_zero_is_just_seed() {
        let g = generators::star(5).unwrap();
        let ball = bfs_ball(&g, 0, 0).unwrap();
        assert_eq!(ball.nodes, vec![0]);
        assert_eq!(ball.edges_scanned, 0);
    }

    #[test]
    fn star_center_depth_one_covers_all() {
        let g = generators::star(9).unwrap();
        let ball = bfs_ball(&g, 0, 1).unwrap();
        assert_eq!(ball.num_nodes(), 9);
        assert!(ball.dist[1..].iter().all(|&d| d == 1));
        assert_eq!(ball.frontier().count(), 8);
    }

    #[test]
    fn disconnected_component_not_reached() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let ball = bfs_ball(&g, 0, 10).unwrap();
        assert_eq!(ball.num_nodes(), 2);
    }

    #[test]
    fn seed_out_of_bounds() {
        let g = generators::path(3).unwrap();
        assert!(matches!(
            bfs_ball(&g, 99, 1),
            Err(GraphError::NodeOutOfBounds { node: 99, .. })
        ));
    }

    #[test]
    fn distances_full_graph() {
        let g = generators::cycle(6).unwrap();
        let dist = bfs_distances(&g, 0).unwrap();
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn distances_unreachable_is_max() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let dist = bfs_distances(&g, 0).unwrap();
        assert_eq!(dist[2], u32::MAX);
    }

    #[test]
    fn ball_growth_on_path_counts_nodes_and_edges() {
        let g = generators::path(9).unwrap();
        let growth = ball_growth(&g, 4, 3).unwrap();
        assert_eq!(growth.len(), 4);
        assert_eq!(
            growth[0],
            BallSize {
                depth: 0,
                nodes: 1,
                edges: 0
            }
        );
        assert_eq!(
            growth[1],
            BallSize {
                depth: 1,
                nodes: 3,
                edges: 2
            }
        );
        assert_eq!(
            growth[2],
            BallSize {
                depth: 2,
                nodes: 5,
                edges: 4
            }
        );
        assert_eq!(
            growth[3],
            BallSize {
                depth: 3,
                nodes: 7,
                edges: 6
            }
        );
        assert_eq!(growth[3].size(), 13);
    }

    #[test]
    fn ball_growth_counts_same_depth_edges_once() {
        // Triangle: at depth 1 from node 0 the ball includes the 1-2 edge.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let growth = ball_growth(&g, 0, 1).unwrap();
        assert_eq!(growth[1].nodes, 3);
        assert_eq!(growth[1].edges, 3);
    }

    #[test]
    fn ball_growth_matches_bfs_ball_node_count() {
        let g = generators::grid(7, 5).unwrap();
        for depth in 0..4 {
            let ball = bfs_ball(&g, 12, depth).unwrap();
            let growth = ball_growth(&g, 12, depth).unwrap();
            assert_eq!(growth[depth as usize].nodes, ball.num_nodes());
        }
    }

    #[test]
    fn bfs_ball_into_reuse_matches_fresh() {
        let g = generators::grid(6, 6).unwrap();
        let mut scratch = BfsScratch::new();
        let mut ball = BfsBall::default();
        // Prime the scratch with an unrelated (larger) search, then redo
        // every fresh search through the reused storage.
        bfs_ball_into(&g, 0, 5, &mut scratch, &mut ball).unwrap();
        for seed in [0u32, 7, 35] {
            for depth in 0..4 {
                let fresh = bfs_ball(&g, seed, depth).unwrap();
                bfs_ball_into(&g, seed, depth, &mut scratch, &mut ball).unwrap();
                assert_eq!(ball, fresh, "seed {seed} depth {depth}");
            }
        }
    }

    #[test]
    fn bfs_ball_into_rejects_bad_seed() {
        let g = generators::path(3).unwrap();
        let mut scratch = BfsScratch::new();
        let mut ball = BfsBall::default();
        assert!(bfs_ball_into(&g, 99, 1, &mut scratch, &mut ball).is_err());
    }

    #[test]
    fn bfs_order_is_non_decreasing_distance() {
        let g = generators::grid(6, 6).unwrap();
        let ball = bfs_ball(&g, 0, 5).unwrap();
        for w in ball.dist.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
