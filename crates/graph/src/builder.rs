//! Incremental construction of [`CsrGraph`]s with deduplication and
//! self-loop policies.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::NodeId;

/// What to do when an edge `(v, v)` is added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Silently drop self-loops (convenient when ingesting real-world edge
    /// lists, which frequently contain them). This is the default.
    #[default]
    Skip,
    /// Fail the build with [`GraphError::SelfLoop`].
    Reject,
}

/// Builder for [`CsrGraph`] that accepts edges in any order, deduplicates
/// them, and applies a configurable [`SelfLoopPolicy`].
///
/// Two sizing modes are supported:
///
/// * [`GraphBuilder::new(n)`](GraphBuilder::new) fixes the node count; edges
///   referencing ids `>= n` fail the build.
/// * [`GraphBuilder::auto`] grows the node count to `max id + 1`.
///
/// # Examples
///
/// ```
/// use meloppr_graph::GraphBuilder;
///
/// # fn main() -> Result<(), meloppr_graph::GraphError> {
/// let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build()?;
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: Option<usize>,
    edges: Vec<(NodeId, NodeId)>,
    self_loops: SelfLoopPolicy,
    max_seen: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with exactly `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes: Some(num_nodes),
            ..GraphBuilder::default()
        }
    }

    /// Creates a builder whose node count is inferred as `max id + 1`.
    pub fn auto() -> Self {
        GraphBuilder::default()
    }

    /// Switches the self-loop policy to [`SelfLoopPolicy::Reject`].
    pub fn reject_self_loops(&mut self) -> &mut Self {
        self.self_loops = SelfLoopPolicy::Reject;
        self
    }

    /// Adds an undirected edge. Duplicates (in either orientation) are
    /// collapsed at build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.max_seen = Some(self.max_seen.map_or(u.max(v), |m| m.max(u).max(v)));
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
        self
    }

    /// Chainable, by-value variant of [`GraphBuilder::add_edge`].
    #[must_use]
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.add_edge(u, v);
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of edges currently recorded (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into a validated [`CsrGraph`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyGraph`] if the node count is zero (explicit or
    ///   inferred from zero edges);
    /// * [`GraphError::NodeOutOfBounds`] if an edge references a node `>=`
    ///   the explicit node count;
    /// * [`GraphError::SelfLoop`] under [`SelfLoopPolicy::Reject`].
    pub fn build(&self) -> Result<CsrGraph> {
        let n = match self.num_nodes {
            Some(n) => n,
            None => match self.max_seen {
                Some(m) => m as usize + 1,
                None => return Err(GraphError::EmptyGraph),
            },
        };
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }

        let mut edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            if u == v {
                match self.self_loops {
                    SelfLoopPolicy::Skip => continue,
                    SelfLoopPolicy::Reject => return Err(GraphError::SelfLoop { node: u }),
                }
            }
            let hi = u.max(v);
            if hi as usize >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: hi,
                    num_nodes: n,
                });
            }
            edges.push((u, v));
        }
        edges.sort_unstable();
        edges.dedup();

        // Counting sort into CSR: each undirected edge contributes two arcs.
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0u32);
        for d in &degree {
            acc += d;
            offsets.push(crate::csr::checked_offset(acc)?);
        }
        let mut cursor: Vec<usize> = offsets[..n].iter().map(|&o| o as usize).collect();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each node's slice was filled from edges sorted by (min, max), so
        // per-node lists may be unsorted; sort them.
        for u in 0..n {
            neighbors[offsets[u] as usize..offsets[u + 1] as usize].sort_unstable();
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_sorts() {
        let g = GraphBuilder::new(4)
            .edge(3, 0)
            .edge(2, 0)
            .edge(1, 0)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn dedup_collapses_both_orientations() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn skip_self_loops_by_default() {
        let g = GraphBuilder::new(2).edge(0, 0).edge(0, 1).build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn reject_self_loops_policy() {
        let mut b = GraphBuilder::new(2);
        b.reject_self_loops();
        b.add_edge(1, 1);
        let err = b.build().unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn auto_infers_node_count() {
        let g = GraphBuilder::auto().edge(0, 7).build().unwrap();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn auto_with_no_edges_is_empty() {
        let err = GraphBuilder::auto().build().unwrap_err();
        assert_eq!(err, GraphError::EmptyGraph);
    }

    #[test]
    fn explicit_zero_nodes_is_empty() {
        let err = GraphBuilder::new(0).build().unwrap_err();
        assert_eq!(err, GraphError::EmptyGraph);
    }

    #[test]
    fn out_of_bounds_edge_fails() {
        let err = GraphBuilder::new(3).edge(0, 3).build().unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { node: 3, .. }));
    }

    #[test]
    fn extend_edges_works() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges(vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.pending_edges(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn build_is_idempotent() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g1 = b.build().unwrap();
        let g2 = b.build().unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn large_star_is_correct() {
        let mut b = GraphBuilder::new(1001);
        for i in 1..=1000 {
            b.add_edge(0, i);
        }
        let g = b.build().unwrap();
        assert_eq!(g.degree(0), 1000);
        assert_eq!(g.num_edges(), 1000);
        for i in 1..=1000u32 {
            assert_eq!(g.neighbors(i), &[0]);
        }
    }
}
