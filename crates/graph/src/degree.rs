//! Degree statistics and histograms.
//!
//! The fixed-point accelerator scales the seed score by a degree-derived
//! constant (`Max = d·|G_L(s)|` with `d` set to half the maximum degree,
//! §V-A), and the sparsity analysis of Fig. 6 buckets normalized PPR scores
//! — both consume the helpers in this module.

use crate::view::GraphView;

/// Summary statistics over a graph's degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Mean degree (`2·|E| / |V|`).
    pub mean: f64,
    /// Median degree (lower median for even counts).
    pub median: u32,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

/// Computes [`DegreeStats`] for any graph view.
///
/// # Examples
///
/// ```
/// use meloppr_graph::{degree::degree_stats, generators};
///
/// # fn main() -> Result<(), meloppr_graph::GraphError> {
/// let g = generators::star(5)?;
/// let stats = degree_stats(&g);
/// assert_eq!(stats.max, 4);
/// assert_eq!(stats.median, 1);
/// # Ok(())
/// # }
/// ```
pub fn degree_stats<G: GraphView + ?Sized>(g: &G) -> DegreeStats {
    let n = g.num_nodes();
    let mut degrees: Vec<u32> = (0..n)
        .map(|u| g.neighbors(u as crate::NodeId).len() as u32)
        .collect();
    degrees.sort_unstable();
    let isolated = degrees.iter().take_while(|&&d| d == 0).count();
    let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
    DegreeStats {
        min: degrees.first().copied().unwrap_or(0),
        max: degrees.last().copied().unwrap_or(0),
        mean: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
        median: degrees.get((n.saturating_sub(1)) / 2).copied().unwrap_or(0),
        isolated,
    }
}

/// Returns `(degree, node_count)` pairs sorted by degree — the empirical
/// degree distribution.
pub fn degree_distribution<G: GraphView + ?Sized>(g: &G) -> Vec<(u32, usize)> {
    let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for u in 0..g.num_nodes() {
        *counts
            .entry(g.neighbors(u as crate::NodeId).len() as u32)
            .or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Bins the degree sequence into `buckets` equal-width bins over
/// `[0, max_degree]` and returns the per-bin node counts.
///
/// # Panics
///
/// Panics if `buckets == 0`.
pub fn degree_histogram<G: GraphView + ?Sized>(g: &G, buckets: usize) -> Vec<usize> {
    assert!(buckets > 0, "histogram needs at least one bucket");
    let n = g.num_nodes();
    let max = (0..n)
        .map(|u| g.neighbors(u as crate::NodeId).len() as u32)
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; buckets];
    let width = (max as f64 + 1.0) / buckets as f64;
    for u in 0..n {
        let d = g.neighbors(u as crate::NodeId).len() as f64;
        let idx = ((d / width) as usize).min(buckets - 1);
        hist[idx] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_star() {
        let g = generators::star(10).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.median, 1);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 1.8).abs() < 1e-12);
    }

    #[test]
    fn stats_counts_isolated() {
        let g = crate::CsrGraph::from_edges(5, &[(0, 1)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn distribution_on_path() {
        let g = generators::path(5).unwrap();
        let dist = degree_distribution(&g);
        assert_eq!(dist, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = generators::grid(6, 6).unwrap();
        let h = degree_histogram(&g, 4);
        assert_eq!(h.iter().sum::<usize>(), 36);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        let g = generators::path(3).unwrap();
        let _ = degree_histogram(&g, 0);
    }
}
