//! A fast, non-cryptographic hasher for node-id keyed maps.
//!
//! BFS ball extraction and local↔global id mapping are the hottest paths
//! of a MeLoPPR query; `std`'s default SipHash costs several times more
//! than the Fibonacci-multiplication hash below for 4-byte node-id
//! keys. The algorithm is the widely-used FxHash folding
//! step (multiply by a mixing constant, rotate), which is perfectly
//! adequate for graph ids (no untrusted-input DoS concern here).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for small integer keys (FxHash-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` keyed by the fast hasher.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the fast hasher.
pub type FastHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut seen = std::collections::HashSet::new();
        for key in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(key);
            seen.insert(h.finish());
        }
        // A good mixing function should not collide on tiny dense ranges.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FastHashMap<u32, u32> = FastHashMap::default();
        for i in 0..1000u32 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&500), Some(&1000));
        assert_eq!(map.get(&1001), None);
    }

    #[test]
    fn set_behaviour() {
        let mut set: FastHashSet<(u32, u32)> = FastHashSet::default();
        assert!(set.insert((1, 2)));
        assert!(!set.insert((1, 2)));
        assert!(set.contains(&(1, 2)));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world!!");
        let mut b = FxHasher::default();
        b.write(b"hello world!!");
        assert_eq!(a.finish(), b.finish());
    }
}
