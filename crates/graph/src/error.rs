//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while constructing, validating or parsing graphs.
///
/// All variants carry enough context to diagnose the offending input
/// (node ids, line numbers, human-readable reasons).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced an index at or beyond the declared node count.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop `(v, v)` was encountered and the active policy rejects
    /// self-loops (the paper assumes simple graphs).
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// The graph has no nodes.
    EmptyGraph,
    /// Raw CSR arrays failed structural validation.
    InvalidCsr {
        /// Why validation failed.
        reason: String,
    },
    /// The graph has more adjacency entries (half-edges) than the 4-byte
    /// CSR offset representation can index. `CsrGraph` deliberately stores
    /// `u32` offsets to halve index memory (Table II); graphs beyond ~4.29
    /// billion half-edges need a wider offset type and are rejected rather
    /// than silently truncated.
    OffsetOverflow {
        /// The adjacency entry count that overflowed.
        half_edges: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Why the line was rejected.
        reason: String,
    },
    /// An I/O failure while reading or writing an edge list.
    ///
    /// The underlying [`std::io::Error`] is stringified so the error type
    /// stays `Clone + Eq`.
    Io {
        /// The stringified I/O error.
        reason: String,
    },
    /// A generator was asked for an impossible topology
    /// (e.g. more edges than a simple graph on `n` nodes can hold).
    InvalidGenerator {
        /// Why the parameters are unsatisfiable.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} (simple graph required)")
            }
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::InvalidCsr { reason } => write!(f, "invalid CSR structure: {reason}"),
            GraphError::OffsetOverflow { half_edges } => write!(
                f,
                "graph has {half_edges} adjacency entries, beyond the u32 offset \
                 limit of {} (a wider offset type is required)",
                u32::MAX
            ),
            GraphError::Parse { line, reason } => {
                write!(f, "edge-list parse error at line {line}: {reason}")
            }
            GraphError::Io { reason } => write!(f, "edge-list I/O error: {reason}"),
            GraphError::InvalidGenerator { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io {
            reason: err.to_string(),
        }
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_out_of_bounds() {
        let err = GraphError::NodeOutOfBounds {
            node: 7,
            num_nodes: 5,
        };
        assert_eq!(
            err.to_string(),
            "node 7 out of bounds for graph with 5 nodes"
        );
    }

    #[test]
    fn display_self_loop() {
        let err = GraphError::SelfLoop { node: 3 };
        assert!(err.to_string().contains("self-loop on node 3"));
    }

    #[test]
    fn display_parse_contains_line() {
        let err = GraphError::Parse {
            line: 42,
            reason: "expected two integers".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("line 42"));
        assert!(msg.contains("expected two integers"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io { .. }));
        assert!(err.to_string().contains("missing file"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<GraphError>();
    }
}
