//! The [`GraphView`] abstraction shared by full graphs and extracted
//! sub-graphs.
//!
//! MeLoPPR's diffusion kernel must run both on the full graph (for ground
//! truth) and on BFS-extracted sub-graphs (for the multi-stage algorithm).
//! The crucial subtlety is the *random-walk divisor*: the transition matrix
//! `W = A·D⁻¹` uses the degree of each node **in the original graph**, even
//! when the diffusion itself only touches a sub-graph. [`GraphView`]
//! therefore separates the adjacency that is physically present
//! ([`GraphView::neighbors`]) from the degree used to split propagated mass
//! ([`GraphView::walk_degree`]).

use crate::NodeId;

/// A read-only view of an undirected graph suitable for diffusion.
///
/// Implemented by [`CsrGraph`](crate::CsrGraph) (where `walk_degree` is the
/// plain degree) and by [`Subgraph`](crate::Subgraph) (where `walk_degree`
/// is the node's degree in the *parent* graph, preserving the exactness of
/// diffusion on BFS balls — see the crate-level documentation).
pub trait GraphView {
    /// Number of nodes in this view. Node ids are `0..num_nodes`.
    fn num_nodes(&self) -> usize;

    /// Neighbors of `u` within this view, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_nodes() as NodeId`.
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// The degree used as the random-walk divisor for node `u`.
    ///
    /// For a full graph this equals `neighbors(u).len()`. For a sub-graph it
    /// is the degree of `u` in the parent graph, which may be larger than
    /// the number of neighbors physically present in the view.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_nodes() as NodeId`.
    fn walk_degree(&self, u: NodeId) -> u32;

    /// Number of *directed* adjacency entries in the view
    /// (twice the undirected edge count).
    fn num_directed_edges(&self) -> usize;

    /// The paper's graph size measure `|V| + |E|` (undirected edge count).
    fn size(&self) -> usize {
        self.num_nodes() + self.num_directed_edges() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn size_counts_undirected_edges_once() {
        // Triangle: 3 nodes, 3 undirected edges -> size 6.
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
            .unwrap();
        assert_eq!(g.size(), 6);
        assert_eq!(g.num_directed_edges(), 6);
    }
}
