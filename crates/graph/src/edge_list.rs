//! SNAP-compatible edge-list text I/O.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comment headers (the SNAP convention). [`parse_edge_list`] accepts that
//! format (plus `%`-style comments used by some mirrors), optionally
//! relabelling arbitrary node ids into the dense `0..n` range required by
//! [`CsrGraph`].

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::fast_hash::FastHashMap;
use crate::NodeId;

/// Parsing options for [`parse_edge_list`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeListOptions {
    /// Relabel arbitrary (possibly sparse, 64-bit) node ids into dense
    /// `0..n` ids in order of first appearance. When `false`, ids must
    /// already be dense `u32` values. Default: `true`.
    pub relabel: bool,
    /// Drop `(v, v)` lines instead of failing. Default: `true`.
    pub skip_self_loops: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            relabel: true,
            skip_self_loops: true,
        }
    }
}

/// A parsed edge list: the graph plus (when relabelling was active) the
/// original id of each dense node.
#[derive(Debug, Clone)]
pub struct ParsedEdgeList {
    /// The parsed graph.
    pub graph: CsrGraph,
    /// `original_ids[v]` is the id node `v` had in the input; `None` when
    /// relabelling was disabled.
    pub original_ids: Option<Vec<u64>>,
}

/// Parses an edge list from a string. Empty lines and lines starting with
/// `#`, `%` or `//` are skipped.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] (with a 1-based line number) for malformed
/// lines, plus any graph-construction error.
///
/// # Examples
///
/// ```
/// use meloppr_graph::edge_list::{parse_edge_list, EdgeListOptions};
///
/// # fn main() -> Result<(), meloppr_graph::GraphError> {
/// let text = "# a comment\n0 1\n1 2\n";
/// let parsed = parse_edge_list(text, EdgeListOptions::default())?;
/// assert_eq!(parsed.graph.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_edge_list(text: &str, options: EdgeListOptions) -> Result<ParsedEdgeList> {
    parse_lines(text.lines().map(Ok::<&str, std::io::Error>), options)
}

/// Parses an edge list from any reader (buffered internally).
///
/// # Errors
///
/// As [`parse_edge_list`], plus [`GraphError::Io`] for read failures.
pub fn read_edge_list<R: Read>(reader: R, options: EdgeListOptions) -> Result<ParsedEdgeList> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in buf.lines() {
        lines.push(line.map_err(GraphError::from)?);
    }
    parse_lines(lines.iter().map(|l| Ok::<&str, std::io::Error>(l)), options)
}

/// Convenience wrapper: reads an edge list from a filesystem path.
///
/// # Errors
///
/// As [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    options: EdgeListOptions,
) -> Result<ParsedEdgeList> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

fn parse_lines<'a, I>(lines: I, options: EdgeListOptions) -> Result<ParsedEdgeList>
where
    I: Iterator<Item = std::result::Result<&'a str, std::io::Error>>,
{
    let mut remap: FastHashMap<u64, NodeId> = FastHashMap::default();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::auto();
    if !options.skip_self_loops {
        builder.reject_self_loops();
    }
    let mut max_dense: Option<u64> = None;

    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(GraphError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('#')
            || trimmed.starts_with('%')
            || trimmed.starts_with("//")
        {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno,
                    reason: format!("expected two node ids, got {trimmed:?}"),
                })
            }
        };
        let parse_id = |tok: &str| -> Result<u64> {
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno,
                reason: format!("invalid node id {tok:?}: {e}"),
            })
        };
        let (ua, ub) = (parse_id(a)?, parse_id(b)?);
        let (u, v) = if options.relabel {
            let mut map = |raw: u64| -> NodeId {
                *remap.entry(raw).or_insert_with(|| {
                    original_ids.push(raw);
                    (original_ids.len() - 1) as NodeId
                })
            };
            (map(ua), map(ub))
        } else {
            for &raw in [&ua, &ub] {
                if raw > u32::MAX as u64 {
                    return Err(GraphError::Parse {
                        line: lineno,
                        reason: format!("node id {raw} exceeds u32 range (enable relabelling)"),
                    });
                }
            }
            max_dense = Some(max_dense.map_or(ua.max(ub), |m| m.max(ua).max(ub)));
            (ua as NodeId, ub as NodeId)
        };
        builder.add_edge(u, v);
    }

    let graph = builder.build()?;
    Ok(ParsedEdgeList {
        graph,
        original_ids: options.relabel.then_some(original_ids),
    })
}

/// Writes a graph as a SNAP-style edge list (one `u v` line per undirected
/// edge, `u < v`, preceded by a summary comment).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# Undirected graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let parsed = parse_edge_list("0 1\n1 2\n", EdgeListOptions::default()).unwrap();
        assert_eq!(parsed.graph.num_nodes(), 3);
        assert_eq!(parsed.graph.num_edges(), 2);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# header\n% other\n// slashes\n\n  0 1  \n";
        let parsed = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 1);
    }

    #[test]
    fn parse_relabels_sparse_ids() {
        let text = "1000000000000 5\n5 42\n";
        let parsed = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        assert_eq!(parsed.graph.num_nodes(), 3);
        let ids = parsed.original_ids.unwrap();
        assert_eq!(ids, vec![1000000000000, 5, 42]);
    }

    #[test]
    fn parse_without_relabel_requires_dense_u32() {
        let opts = EdgeListOptions {
            relabel: false,
            ..EdgeListOptions::default()
        };
        let parsed = parse_edge_list("0 1\n1 2\n", opts).unwrap();
        assert!(parsed.original_ids.is_none());
        assert_eq!(parsed.graph.num_nodes(), 3);

        let err = parse_edge_list("99999999999 1\n", opts).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_malformed_line() {
        let err = parse_edge_list("0 1\njunk\n", EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_non_numeric() {
        let err = parse_edge_list("a b\n", EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn self_loops_skipped_by_default_rejected_on_demand() {
        let parsed = parse_edge_list("3 3\n0 1\n", EdgeListOptions::default()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 1);

        let opts = EdgeListOptions {
            skip_self_loops: false,
            ..EdgeListOptions::default()
        };
        assert!(parse_edge_list("3 3\n0 1\n", opts).is_err());
    }

    #[test]
    fn roundtrip_write_parse() {
        let g = crate::generators::karate_club();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = EdgeListOptions {
            relabel: false,
            ..EdgeListOptions::default()
        };
        let parsed = parse_edge_list(&text, opts).unwrap();
        assert_eq!(parsed.graph, g);
    }

    #[test]
    fn read_from_reader() {
        let data = b"0 1\n2 1\n" as &[u8];
        let parsed = read_edge_list(data, EdgeListOptions::default()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 2);
    }

    #[test]
    fn empty_input_is_empty_graph_error() {
        let err = parse_edge_list("# only comments\n", EdgeListOptions::default()).unwrap_err();
        assert_eq!(err, GraphError::EmptyGraph);
    }
}
