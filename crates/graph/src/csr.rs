//! Compressed sparse row (CSR) storage for simple undirected graphs.
//!
//! The paper stores graphs and performs all matrix–vector products in CSR
//! format (§VI). [`CsrGraph`] is the canonical in-memory representation used
//! throughout this workspace: an `offsets` array of length `|V| + 1` and a
//! `neighbors` array of length `2·|E|` (each undirected edge appears in both
//! endpoint lists). Neighbor lists are sorted, contain no duplicates and no
//! self-loops.
//!
//! Offsets are stored as `u32` — like [`NodeId`], 4 bytes comfortably cover
//! the paper's largest graph (com-youtube: ~6 M half-edges) while halving
//! the index-array footprint of every graph **and every cached sub-graph**
//! (the Table II memory axis). Graphs with more than `u32::MAX` adjacency
//! entries are rejected with [`GraphError::OffsetOverflow`] instead of
//! silently truncating.

use crate::error::{GraphError, Result};
use crate::view::GraphView;
use crate::NodeId;

/// A simple undirected graph in compressed sparse row form.
///
/// Invariants (enforced by [`CsrGraph::from_parts`] and all constructors):
///
/// * `offsets.len() == num_nodes + 1`, monotonically non-decreasing,
///   `offsets[0] == 0`, `offsets[num_nodes] == neighbors.len()`;
/// * every neighbor id is `< num_nodes`;
/// * each node's neighbor list is strictly increasing (sorted, no
///   duplicates);
/// * no self-loops;
/// * adjacency is symmetric: `v ∈ N(u) ⇔ u ∈ N(v)`.
///
/// # Examples
///
/// ```
/// use meloppr_graph::{CsrGraph, GraphView};
///
/// # fn main() -> Result<(), meloppr_graph::GraphError> {
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(0), &[1, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
}

/// Converts an accumulated adjacency count to a `u32` offset, failing with
/// [`GraphError::OffsetOverflow`] for graphs beyond the 4-byte range.
#[inline]
pub(crate) fn checked_offset(half_edges: usize) -> Result<u32> {
    u32::try_from(half_edges).map_err(|_| GraphError::OffsetOverflow { half_edges })
}

impl CsrGraph {
    /// Builds a graph from an explicit node count and undirected edge list.
    ///
    /// Duplicate edges are collapsed; `(u, v)` and `(v, u)` are the same
    /// edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is
    /// `>= num_nodes`, [`GraphError::SelfLoop`] for `(v, v)` entries, and
    /// [`GraphError::EmptyGraph`] when `num_nodes == 0`.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut builder = crate::builder::GraphBuilder::new(num_nodes);
        builder.reject_self_loops();
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Assembles a graph directly from CSR arrays, validating every
    /// invariant listed in the type-level documentation.
    ///
    /// This is the constructor used by [`GraphBuilder`](crate::GraphBuilder)
    /// and the generators; prefer those for ergonomic construction.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] describing the first violated
    /// invariant, or [`GraphError::EmptyGraph`] when `offsets` implies zero
    /// nodes.
    pub fn from_parts(offsets: Vec<u32>, neighbors: Vec<NodeId>) -> Result<Self> {
        if offsets.len() < 2 {
            if offsets.len() == 1 && neighbors.is_empty() && offsets[0] == 0 {
                return Err(GraphError::EmptyGraph);
            }
            return Err(GraphError::InvalidCsr {
                reason: format!("offsets array too short: {}", offsets.len()),
            });
        }
        if offsets[0] != 0 {
            return Err(GraphError::InvalidCsr {
                reason: format!("offsets[0] must be 0, got {}", offsets[0]),
            });
        }
        let last = checked_offset(neighbors.len())?;
        if *offsets.last().expect("non-empty") != last {
            return Err(GraphError::InvalidCsr {
                reason: format!(
                    "offsets[last] = {} does not match neighbors.len() = {}",
                    offsets.last().expect("non-empty"),
                    neighbors.len()
                ),
            });
        }
        for w in offsets.windows(2) {
            if w[1] < w[0] {
                return Err(GraphError::InvalidCsr {
                    reason: "offsets must be non-decreasing".into(),
                });
            }
        }
        let graph = CsrGraph { offsets, neighbors };
        graph.validate()?;
        Ok(graph)
    }

    /// Re-checks every structural invariant of the CSR arrays: neighbor
    /// ids in bounds, no self-loops, strictly increasing (duplicate-free)
    /// adjacency lists, and undirected symmetry (`u->v` implies `v->u`).
    ///
    /// Every constructor already validates, so a graph built through the
    /// public API cannot fail this. Call it again at trust boundaries —
    /// after deserializing a graph from disk or accepting one across a
    /// process boundary — where a torn file or a hostile producer could
    /// hand over arrays the type's invariants no longer hold for.
    ///
    /// Cost: `O(m log d)` (a binary search per arc for the symmetry
    /// check) — proportional to a single BFS over the whole graph.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidCsr`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_nodes();
        for u in 0..n {
            let list = &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize];
            let mut prev: Option<NodeId> = None;
            for &v in list {
                if v as usize >= n {
                    return Err(GraphError::InvalidCsr {
                        reason: format!("neighbor {v} of node {u} out of bounds (n = {n})"),
                    });
                }
                if v as usize == u {
                    return Err(GraphError::InvalidCsr {
                        reason: format!("self-loop on node {u}"),
                    });
                }
                if let Some(p) = prev {
                    if v <= p {
                        return Err(GraphError::InvalidCsr {
                            reason: format!(
                                "neighbor list of node {u} not strictly increasing ({p} then {v})"
                            ),
                        });
                    }
                }
                prev = Some(v);
            }
        }
        // Symmetry: every directed arc must have its reverse.
        for u in 0..n {
            for &v in &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize] {
                if !self.has_arc(v, u as NodeId) {
                    return Err(GraphError::InvalidCsr {
                        reason: format!("edge {u}->{v} present but {v}->{u} missing"),
                    });
                }
            }
        }
        Ok(())
    }

    fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        let list = &self.neighbors
            [self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize];
        list.binary_search(&v).is_ok()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn degree(&self, u: NodeId) -> u32 {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted neighbor list of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Whether the undirected edge `{u, v}` exists.
    ///
    /// Runs in `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds (checked via indexing).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        assert!((v as usize) < self.num_nodes(), "node {v} out of bounds");
        self.has_arc(u, v)
    }

    /// Iterator over undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            node: 0,
            idx: 0,
        }
    }

    /// Maximum degree over all nodes (0 for a graph with no edges).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes())
            .map(|u| self.degree(u as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Mean degree (`2·|E| / |V|`).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_nodes() as f64
    }

    /// Estimated heap footprint of the CSR arrays in bytes.
    ///
    /// Used by the memory-accounting model (`meloppr-core`'s `memory`
    /// module) to charge implementations for graph storage.
    pub fn csr_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }

    /// Consumes the graph and returns its raw `(offsets, neighbors)` arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<NodeId>) {
        (self.offsets, self.neighbors)
    }

    /// Borrow the raw offsets array (`len == num_nodes + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Borrow the raw concatenated neighbor array (`len == 2·num_edges`).
    pub fn neighbor_array(&self) -> &[NodeId] {
        &self.neighbors
    }
}

impl GraphView for CsrGraph {
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, u)
    }

    fn walk_degree(&self, u: NodeId) -> u32 {
        self.degree(u)
    }

    fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }
}

/// Iterator over undirected edges of a [`CsrGraph`], created by
/// [`CsrGraph::edges`]. Yields each edge once as `(u, v)` with `u < v`.
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a CsrGraph,
    node: usize,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.num_nodes();
        while self.node < n {
            let end = self.graph.offsets[self.node + 1] as usize;
            while self.idx < end {
                let v = self.graph.neighbors[self.idx];
                self.idx += 1;
                if (self.node as NodeId) < v {
                    return Some((self.node as NodeId, v));
                }
            }
            self.node += 1;
            if self.node < n {
                self.idx = self.graph.offsets[self.node] as usize;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn public_validate_accepts_constructed_graphs() {
        // Constructors route through the same checks, so anything they
        // return re-validates cleanly at a later trust boundary.
        square().validate().unwrap();
    }

    #[test]
    fn from_edges_basic() {
        let g = square();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn from_edges_dedups() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn from_edges_rejects_out_of_bounds() {
        let err = CsrGraph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { node: 5, .. }));
    }

    #[test]
    fn from_edges_rejects_self_loop() {
        let err = CsrGraph::from_edges(2, &[(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn from_edges_rejects_empty() {
        let err = CsrGraph::from_edges(0, &[]).unwrap_err();
        assert_eq!(err, GraphError::EmptyGraph);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[NodeId]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = square();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn has_edge_panics_on_bad_target() {
        let g = square();
        let _ = g.has_edge(0, 99);
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = square();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn edges_iterator_empty_graph_with_isolated_nodes() {
        let g = CsrGraph::from_edges(3, &[]).unwrap();
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn degree_statistics() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_parts_roundtrip() {
        let g = square();
        let (offsets, neighbors) = g.clone().into_parts();
        let g2 = CsrGraph::from_parts(offsets, neighbors).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn from_parts_rejects_asymmetric() {
        // 0 -> 1 without 1 -> 0.
        let err = CsrGraph::from_parts(vec![0, 1, 1], vec![1]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidCsr { .. }));
    }

    #[test]
    fn from_parts_rejects_unsorted() {
        let err = CsrGraph::from_parts(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidCsr { .. }));
    }

    #[test]
    fn from_parts_rejects_bad_offsets() {
        let err = CsrGraph::from_parts(vec![0, 2, 1], vec![1, 0]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidCsr { .. }));
    }

    #[test]
    fn from_parts_rejects_offset_mismatch() {
        let err = CsrGraph::from_parts(vec![0, 1, 2], vec![1, 0, 1]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidCsr { .. }));
    }

    #[test]
    fn graph_view_impl() {
        let g = square();
        let view: &dyn GraphView = &g;
        assert_eq!(view.num_nodes(), 4);
        assert_eq!(view.walk_degree(2), 2);
        assert_eq!(view.num_directed_edges(), 8);
        assert_eq!(view.size(), 8);
    }

    #[test]
    fn csr_bytes_uses_u32_offsets() {
        let g = square();
        // 5 offsets x 4 bytes + 8 directed arcs x 4 bytes.
        assert_eq!(g.csr_bytes(), 5 * 4 + 8 * 4);
    }

    #[test]
    fn checked_offset_rejects_past_u32() {
        assert_eq!(checked_offset(u32::MAX as usize).unwrap(), u32::MAX);
        let err = checked_offset(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, GraphError::OffsetOverflow { .. }));
        assert!(err.to_string().contains("u32 offset"));
    }
}
