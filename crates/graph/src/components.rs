//! Connected components (used to validate generators and pick seeds that
//! live in the giant component).

use std::collections::VecDeque;

use crate::view::GraphView;
use crate::NodeId;

/// Labels every node with a component id (`0..count`) and returns
/// `(labels, count)`. Components are numbered in order of their smallest
/// node id.
pub fn connected_components<G: GraphView + ?Sized>(g: &G) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// Size and label of the largest connected component.
pub fn largest_component<G: GraphView + ?Sized>(g: &G) -> (usize, u32) {
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let (label, &size) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .expect("graph has at least one node");
    (size, label as u32)
}

/// Whether the graph is a single connected component.
pub fn is_connected<G: GraphView + ?Sized>(g: &G) -> bool {
    let (_, count) = connected_components(g);
    count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;

    #[test]
    fn single_component() {
        let g = generators::cycle(5).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1}, {2,3}, {4}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_found() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (size, label) = largest_component(&g);
        assert_eq!(size, 3);
        assert_eq!(label, 0);
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = CsrGraph::from_edges(3, &[]).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 3);
    }
}
