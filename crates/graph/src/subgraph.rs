//! Induced sub-graphs over BFS balls with local↔global id mapping.
//!
//! A [`Subgraph`] is the unit MeLoPPR actually diffuses on: the induced
//! graph over a [`BfsBall`](crate::BfsBall), re-labelled with dense local
//! ids so score tables can be flat arrays. Two representation choices
//! matter for correctness:
//!
//! 1. **Walk degrees come from the parent graph.** The transition matrix
//!    `W = A·D⁻¹` is defined on the full graph; an interior ball node has
//!    the same degree locally and globally, but a frontier node does not.
//!    Storing parent degrees keeps the diffusion exact for up to `depth`
//!    iterations (mass only leaves through frontier nodes that never need
//!    to propagate — see `meloppr-core`'s ball-exactness tests).
//! 2. **The seed is always local id 0**, because balls enumerate nodes in
//!    BFS order. Diffusion kernels rely on this for cheap initialization.

use crate::bfs::BfsBall;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::fast_hash::FastHashMap;
use crate::view::GraphView;
use crate::NodeId;

/// An induced sub-graph with dense local node ids.
///
/// Create one with [`Subgraph::extract`]. Local ids index every per-node
/// array (`0..num_nodes`); [`Subgraph::to_global`] maps back to parent ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    csr: CsrGraph,
    global_ids: Vec<NodeId>,
    global_to_local: FastHashMap<NodeId, NodeId>,
    walk_degrees: Vec<u32>,
    seed_local: NodeId,
}

/// The buffer set [`Subgraph::extract_reusing`] threads: CSR offsets,
/// packed neighbors, local→global ids, global→local map, walk degrees.
type ExtractBuffers = (
    Vec<u32>,
    Vec<NodeId>,
    Vec<NodeId>,
    FastHashMap<NodeId, NodeId>,
    Vec<u32>,
);

/// Cold-start buffer set for [`Subgraph::extract_reusing`], sized for a
/// ball of `n` nodes. Deliberately outside the hot path: this runs once
/// per workspace lifetime; steady-state extraction harvests the
/// previous sub-graph's buffers instead.
#[cold]
fn fresh_buffers(n: usize) -> ExtractBuffers {
    (
        Vec::with_capacity(n + 1),
        Vec::new(),
        Vec::with_capacity(n),
        FastHashMap::with_capacity_and_hasher(n, Default::default()),
        Vec::with_capacity(n),
    )
}

impl Subgraph {
    /// Extracts the induced sub-graph over a BFS ball of `parent`.
    ///
    /// Node `i` of the sub-graph corresponds to `ball.nodes[i]`; the seed
    /// therefore gets local id 0. Edges are those of `parent` with both
    /// endpoints inside the ball.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if the ball references nodes
    /// outside `parent` (i.e. the ball was computed on a different graph).
    pub fn extract<G: GraphView + ?Sized>(parent: &G, ball: &BfsBall) -> Result<Self> {
        Self::extract_reusing(parent, ball, None)
    }

    /// As [`Subgraph::extract`], but harvests the internal buffers of a
    /// previously extracted sub-graph instead of allocating fresh ones.
    ///
    /// In steady state (buffer capacities warmed up to the largest ball
    /// seen) extraction performs no heap allocation. The result is
    /// bit-identical to [`Subgraph::extract`].
    ///
    /// # Errors
    ///
    /// As [`Subgraph::extract`]. On error the reused buffers are dropped.
    pub fn extract_reusing<G: GraphView + ?Sized>(
        parent: &G,
        ball: &BfsBall,
        reuse: Option<Subgraph>,
    ) -> Result<Self> {
        let n = ball.nodes.len();
        let (mut offsets, mut neighbors, mut global_ids, mut global_to_local, mut walk_degrees) =
            match reuse {
                Some(prev) => {
                    let (offsets, neighbors) = prev.csr.into_parts();
                    (
                        offsets,
                        neighbors,
                        prev.global_ids,
                        prev.global_to_local,
                        prev.walk_degrees,
                    )
                }
                None => fresh_buffers(n),
            };
        offsets.clear();
        neighbors.clear();
        global_ids.clear();
        global_to_local.clear();
        walk_degrees.clear();

        for (local, &global) in ball.nodes.iter().enumerate() {
            if global as usize >= parent.num_nodes() {
                return Err(GraphError::NodeOutOfBounds {
                    node: global,
                    num_nodes: parent.num_nodes(),
                });
            }
            global_to_local.insert(global, local as NodeId);
        }

        offsets.push(0u32);
        for &global in &ball.nodes {
            let start = neighbors.len();
            for &nbr in parent.neighbors(global) {
                if let Some(&local_nbr) = global_to_local.get(&nbr) {
                    neighbors.push(local_nbr);
                }
            }
            neighbors[start..].sort_unstable();
            offsets.push(crate::csr::checked_offset(neighbors.len())?);
            walk_degrees.push(parent.walk_degree(global));
        }
        global_ids.extend_from_slice(&ball.nodes);

        let csr = CsrGraph::from_parts(offsets, neighbors)?;
        Ok(Subgraph {
            csr,
            global_ids,
            global_to_local,
            walk_degrees,
            seed_local: 0,
        })
    }

    /// Reassembles a sub-graph from its serialized arrays — the inflate
    /// half of a ball codec. The arrays must originate from
    /// [`Subgraph::extract`] (directly or via a compact wire form):
    /// node 0 is the seed, `offsets`/`neighbors` are the local-id CSR
    /// adjacency with per-node sorted neighbor lists, and
    /// `walk_degrees` are parent-graph degrees. The global→local map is
    /// rebuilt; the result is bit-identical to the extraction that
    /// produced the arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] when the per-node arrays
    /// disagree on the node count or the adjacency fails the CSR
    /// invariants (via [`CsrGraph::from_parts`]).
    pub fn from_parts(
        global_ids: Vec<NodeId>,
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        walk_degrees: Vec<u32>,
    ) -> Result<Self> {
        let n = global_ids.len();
        if offsets.len() != n + 1 || walk_degrees.len() != n {
            return Err(GraphError::InvalidCsr {
                reason: format!(
                    "per-node arrays disagree: {n} global ids, {} offsets, {} walk degrees",
                    offsets.len(),
                    walk_degrees.len()
                ),
            });
        }
        let csr = CsrGraph::from_parts(offsets, neighbors)?;
        let mut global_to_local = FastHashMap::with_capacity_and_hasher(n, Default::default());
        for (local, &global) in global_ids.iter().enumerate() {
            if global_to_local.insert(global, local as NodeId).is_some() {
                return Err(GraphError::InvalidCsr {
                    reason: format!("duplicate global id {global} in sub-graph"),
                });
            }
        }
        Ok(Subgraph {
            csr,
            global_ids,
            global_to_local,
            walk_degrees,
            seed_local: 0,
        })
    }

    /// The local id of the ball's seed node (always 0).
    pub fn seed_local(&self) -> NodeId {
        self.seed_local
    }

    /// Maps a local id back to the parent graph's id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.global_ids[local as usize]
    }

    /// Maps a parent-graph id to its local id, if the node is in the
    /// sub-graph.
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.global_to_local.get(&global).copied()
    }

    /// The local→global id table (index = local id).
    pub fn global_ids(&self) -> &[NodeId] {
        &self.global_ids
    }

    /// Number of undirected edges induced inside the ball.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The underlying local-id CSR adjacency.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Degree of the node *in the parent graph* (the random-walk divisor).
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn parent_degree(&self, local: NodeId) -> u32 {
        self.walk_degrees[local as usize]
    }

    /// Heap bytes of the sub-graph representation, split by component.
    ///
    /// Feeds the CPU memory model (`meloppr-core::memory`): CSR arrays,
    /// the id-mapping tables and the walk-degree array are all charged.
    pub fn memory_bytes(&self) -> SubgraphBytes {
        let map_entry = std::mem::size_of::<(NodeId, NodeId)>() * 2; // conservative HashMap cost
        SubgraphBytes {
            csr: self.csr.csr_bytes(),
            id_maps: self.global_ids.len() * std::mem::size_of::<NodeId>()
                + self.global_to_local.len() * map_entry,
            degrees: self.walk_degrees.len() * std::mem::size_of::<u32>(),
        }
    }
}

impl GraphView for Subgraph {
    fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.csr.neighbors(u)
    }

    fn walk_degree(&self, u: NodeId) -> u32 {
        self.walk_degrees[u as usize]
    }

    fn num_directed_edges(&self) -> usize {
        self.csr.num_directed_edges()
    }
}

/// Byte accounting of a [`Subgraph`], returned by
/// [`Subgraph::memory_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgraphBytes {
    /// CSR offsets + neighbor arrays.
    pub csr: usize,
    /// local→global vector plus global→local hash map.
    pub id_maps: usize,
    /// Parent-degree array.
    pub degrees: usize,
}

impl SubgraphBytes {
    /// Total bytes across all components.
    pub fn total(&self) -> usize {
        self.csr + self.id_maps + self.degrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_ball;
    use crate::generators;

    #[test]
    fn extract_ball_from_grid() {
        let g = generators::grid(5, 5).unwrap();
        let ball = bfs_ball(&g, 12, 1).unwrap(); // center of 5x5 grid
        let sub = Subgraph::extract(&g, &ball).unwrap();
        assert_eq!(sub.num_nodes(), 5); // center + 4 neighbors
        assert_eq!(sub.seed_local(), 0);
        assert_eq!(sub.to_global(0), 12);
        // Only edges incident to the center exist inside this ball.
        assert_eq!(sub.num_edges(), 4);
    }

    #[test]
    fn interior_nodes_keep_parent_degree() {
        let g = generators::grid(5, 5).unwrap();
        let ball = bfs_ball(&g, 12, 2).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        // The seed is interior (distance 0 < 2): its local degree must match
        // the parent degree.
        assert_eq!(
            sub.neighbors(sub.seed_local()).len() as u32,
            sub.walk_degree(sub.seed_local())
        );
        // All walk degrees equal parent degrees.
        for local in 0..sub.num_nodes() as NodeId {
            let global = sub.to_global(local);
            assert_eq!(sub.walk_degree(local), g.degree(global));
        }
    }

    #[test]
    fn frontier_nodes_may_have_truncated_neighbors() {
        let g = generators::path(10).unwrap();
        let ball = bfs_ball(&g, 0, 2).unwrap(); // nodes 0,1,2
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let frontier_local = sub.to_local(2).unwrap();
        // Node 2 has parent degree 2 but only one neighbor (node 1) in the
        // ball.
        assert_eq!(sub.walk_degree(frontier_local), 2);
        assert_eq!(sub.neighbors(frontier_local).len(), 1);
    }

    #[test]
    fn from_parts_roundtrips_an_extraction() {
        let g = generators::grid(6, 4).unwrap();
        let ball = bfs_ball(&g, 9, 2).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let n = sub.num_nodes() as NodeId;
        let mut offsets = vec![0u32];
        let mut neighbors = Vec::new();
        let mut walk_degrees = Vec::new();
        for u in 0..n {
            neighbors.extend_from_slice(sub.neighbors(u));
            offsets.push(neighbors.len() as u32);
            walk_degrees.push(sub.walk_degree(u));
        }
        let rebuilt =
            Subgraph::from_parts(sub.global_ids().to_vec(), offsets, neighbors, walk_degrees)
                .unwrap();
        assert_eq!(rebuilt.num_nodes(), sub.num_nodes());
        assert_eq!(rebuilt.seed_local(), 0);
        for u in 0..n {
            assert_eq!(rebuilt.neighbors(u), sub.neighbors(u));
            assert_eq!(rebuilt.walk_degree(u), sub.walk_degree(u));
            assert_eq!(rebuilt.to_global(u), sub.to_global(u));
            assert_eq!(rebuilt.to_local(sub.to_global(u)), Some(u));
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_arrays() {
        // Two nodes but walk_degrees for one.
        let err = Subgraph::from_parts(vec![5, 7], vec![0, 1, 2], vec![1, 0], vec![2]);
        assert!(err.is_err());
        // Duplicate global id.
        let err = Subgraph::from_parts(vec![5, 5], vec![0, 1, 2], vec![1, 0], vec![2, 2]);
        assert!(err.is_err());
        // Asymmetric adjacency is caught by CSR validation.
        let err = Subgraph::from_parts(vec![5, 7], vec![0, 1, 1], vec![1], vec![2, 2]);
        assert!(err.is_err());
    }

    #[test]
    fn to_local_roundtrip() {
        let g = generators::cycle(8).unwrap();
        let ball = bfs_ball(&g, 3, 2).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        for local in 0..sub.num_nodes() as NodeId {
            assert_eq!(sub.to_local(sub.to_global(local)), Some(local));
        }
        assert_eq!(sub.to_local(999), None);
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let g = generators::grid(6, 4).unwrap();
        let ball = bfs_ball(&g, 7, 3).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        for u in 0..sub.num_nodes() as NodeId {
            let nbrs = sub.neighbors(u);
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &v in nbrs {
                assert!(sub.neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn extract_whole_graph_preserves_structure() {
        let g = generators::complete(6).unwrap();
        let ball = bfs_ball(&g, 0, 1).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        assert_eq!(sub.num_nodes(), 6);
        assert_eq!(sub.num_edges(), 15);
    }

    #[test]
    fn memory_bytes_totals() {
        let g = generators::grid(5, 5).unwrap();
        let ball = bfs_ball(&g, 12, 2).unwrap();
        let sub = Subgraph::extract(&g, &ball).unwrap();
        let bytes = sub.memory_bytes();
        assert!(bytes.csr > 0);
        assert!(bytes.id_maps > 0);
        assert!(bytes.degrees > 0);
        assert_eq!(bytes.total(), bytes.csr + bytes.id_maps + bytes.degrees);
    }

    #[test]
    fn extract_reusing_matches_fresh_extraction() {
        let g = generators::grid(6, 4).unwrap();
        // Prime a reusable subgraph with a large ball, then re-extract
        // smaller and differently-shaped balls through its buffers.
        let mut reused = Some(Subgraph::extract(&g, &bfs_ball(&g, 7, 3).unwrap()).unwrap());
        for (seed, depth) in [(0u32, 1), (7, 2), (12, 3), (23, 0)] {
            let ball = bfs_ball(&g, seed, depth).unwrap();
            let fresh = Subgraph::extract(&g, &ball).unwrap();
            let recycled = Subgraph::extract_reusing(&g, &ball, reused.take()).unwrap();
            assert_eq!(recycled.num_nodes(), fresh.num_nodes());
            assert_eq!(recycled.num_edges(), fresh.num_edges());
            assert_eq!(recycled.global_ids(), fresh.global_ids());
            for local in 0..fresh.num_nodes() as NodeId {
                assert_eq!(recycled.neighbors(local), fresh.neighbors(local));
                assert_eq!(recycled.walk_degree(local), fresh.walk_degree(local));
                assert_eq!(recycled.to_global(local), fresh.to_global(local));
            }
            reused = Some(recycled);
        }
    }

    #[test]
    fn ball_from_wrong_graph_errors() {
        let big = generators::path(10).unwrap();
        let small = generators::path(3).unwrap();
        let ball = bfs_ball(&big, 9, 1).unwrap();
        assert!(Subgraph::extract(&small, &ball).is_err());
    }
}
