//! Graph substrate for the MeLoPPR reproduction.
//!
//! This crate provides everything the MeLoPPR algorithm
//! (`meloppr-core`) and its FPGA accelerator simulator (`meloppr-fpga`)
//! need from a graph library:
//!
//! * [`CsrGraph`] — simple undirected graphs in compressed sparse row form,
//!   the storage format the paper uses for all matrix–vector products;
//! * [`GraphBuilder`] — ergonomic, validating construction;
//! * [`bfs_ball`] / [`Subgraph`] — depth-limited BFS ball extraction with
//!   local↔global id mapping, the operation at the heart of MeLoPPR's
//!   stage decomposition (§IV);
//! * [`generators`] — deterministic fixtures, classic random models, and
//!   [`generators::corpus`] with synthetic stand-ins for the paper's six
//!   SNAP evaluation graphs;
//! * [`edge_list`] — SNAP-compatible text I/O;
//! * [`degree`] / [`components`] — statistics used by the fixed-point
//!   scaling rules and generator validation.
//!
//! # The `GraphView` abstraction
//!
//! Diffusion must behave identically on the full graph and on extracted
//! balls. The [`GraphView`] trait exposes `walk_degree` — the degree used
//! as the random-walk divisor — separately from the physically present
//! adjacency, so a [`Subgraph`] can report parent-graph degrees and keep
//! ball-restricted diffusion exact. See the `meloppr-core` crate's
//! ball-exactness tests for the precise statement.
//!
//! # Example
//!
//! ```
//! use meloppr_graph::{bfs_ball, generators, GraphView, Subgraph};
//!
//! # fn main() -> Result<(), meloppr_graph::GraphError> {
//! // A synthetic stand-in for the paper's citeseer graph, scaled down.
//! let g = generators::corpus::PaperGraph::G1Citeseer.generate_scaled(0.1, 42)?;
//!
//! // Extract the depth-3 ball around node 0 — the stage-one sub-graph.
//! let ball = bfs_ball(&g, 0, 3)?;
//! let sub = Subgraph::extract(&g, &ball)?;
//! assert!(sub.num_nodes() <= g.num_nodes());
//! assert_eq!(sub.to_global(sub.seed_local()), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Node identifier. `u32` comfortably covers the paper's largest graph
/// (com-youtube, 1.13 M nodes) while halving index-array memory.
pub type NodeId = u32;

mod bfs;
mod builder;
pub mod components;
mod csr;
pub mod degree;
pub mod edge_list;
mod error;
pub mod fast_hash;
pub mod generators;
mod scratch;
mod subgraph;
mod view;

pub use bfs::{ball_growth, bfs_ball, bfs_ball_into, bfs_distances, BallSize, BfsBall, BfsScratch};
pub use builder::{GraphBuilder, SelfLoopPolicy};
pub use csr::{CsrGraph, Edges};
pub use error::{GraphError, Result};
pub use fast_hash::{FastHashMap, FastHashSet};
pub use scratch::ExtractScratch;
pub use subgraph::{Subgraph, SubgraphBytes};
pub use view::GraphView;
