//! Reusable ball-extraction storage — the graph half of the query
//! workspace.
//!
//! MeLoPPR extracts a BFS ball and its induced [`Subgraph`] before every
//! diffusion task. Done naively that is four allocations and a hash map
//! per task; a PPR server doing millions of queries ends up bounded by
//! the allocator rather than the graph. [`ExtractScratch`] owns all of
//! that storage — the BFS visited map and queue, the [`BfsBall`] arrays
//! and the sub-graph's CSR/id-map/degree buffers — and refills it in
//! place on every call, so steady-state extraction allocates nothing.
//!
//! `meloppr-core` embeds one of these in its `QueryWorkspace`; the FPGA
//! host simulator drives it directly for its PS-side extraction loop.

use crate::bfs::{bfs_ball_into, BfsBall, BfsScratch};
use crate::error::Result;
use crate::subgraph::Subgraph;
use crate::view::GraphView;
use crate::NodeId;

/// Owns every buffer needed to turn `(seed, depth)` into an extracted
/// [`Subgraph`], reusing the storage across calls.
///
/// # Examples
///
/// ```
/// use meloppr_graph::{generators, ExtractScratch};
///
/// # fn main() -> Result<(), meloppr_graph::GraphError> {
/// let g = generators::karate_club();
/// let mut scratch = ExtractScratch::new();
/// let (sub, bfs_edges) = scratch.extract(&g, 0, 2)?;
/// assert_eq!(sub.to_global(sub.seed_local()), 0);
/// assert!(bfs_edges > 0);
/// // The next extraction reuses the same buffers.
/// let (sub, _) = scratch.extract(&g, 33, 1)?;
/// assert_eq!(sub.to_global(0), 33);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ExtractScratch {
    bfs: BfsScratch,
    ball: BfsBall,
    sub: Option<Subgraph>,
}

impl ExtractScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        ExtractScratch::default()
    }

    /// Extracts the induced sub-graph of the depth-`depth` ball around
    /// `seed`, reusing this scratch's storage.
    ///
    /// Returns the sub-graph (borrowed from the scratch — it stays valid
    /// until the next `extract` call) and the adjacency entries scanned by
    /// the BFS (the host-side work counter). Results are bit-identical to
    /// [`bfs_ball`](crate::bfs_ball) + [`Subgraph::extract`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`](crate::GraphError) if
    /// `seed` is not a node of `g`.
    pub fn extract<'a, G: GraphView + ?Sized>(
        &'a mut self,
        g: &G,
        seed: NodeId,
        depth: u32,
    ) -> Result<(&'a Subgraph, usize)> {
        bfs_ball_into(g, seed, depth, &mut self.bfs, &mut self.ball)?;
        let reuse = self.sub.take();
        self.sub = Some(Subgraph::extract_reusing(g, &self.ball, reuse)?);
        Ok((
            self.sub.as_ref().expect("just inserted"),
            self.ball.edges_scanned,
        ))
    }

    /// As [`ExtractScratch::extract`], but transfers ownership of the
    /// extracted [`Subgraph`] to the caller instead of keeping it in the
    /// scratch.
    ///
    /// This is the miss path of long-lived sub-graph caches: the BFS
    /// visited map, queue and ball arrays are still reused across calls,
    /// while the sub-graph's own storage leaves the scratch (it will live
    /// in the cache, typically behind an `Arc`), so the next `extract_owned`
    /// call re-allocates only the sub-graph buffers. Results are
    /// bit-identical to [`ExtractScratch::extract`].
    ///
    /// # Errors
    ///
    /// As [`ExtractScratch::extract`].
    pub fn extract_owned<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        seed: NodeId,
        depth: u32,
    ) -> Result<(Subgraph, usize)> {
        bfs_ball_into(g, seed, depth, &mut self.bfs, &mut self.ball)?;
        let reuse = self.sub.take();
        let sub = Subgraph::extract_reusing(g, &self.ball, reuse)?;
        Ok((sub, self.ball.edges_scanned))
    }

    /// The ball of the most recent extraction (empty before the first).
    pub fn ball(&self) -> &BfsBall {
        &self.ball
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_ball;
    use crate::generators;

    #[test]
    fn reused_scratch_matches_fresh_extraction() {
        let g = generators::grid(7, 5).unwrap();
        let mut scratch = ExtractScratch::new();
        // Warm with the largest ball first so later calls are pure reuse.
        scratch.extract(&g, 17, 4).unwrap();
        for (seed, depth) in [(0u32, 2), (17, 3), (34, 1), (5, 0)] {
            let ball = bfs_ball(&g, seed, depth).unwrap();
            let fresh = Subgraph::extract(&g, &ball).unwrap();
            let (sub, bfs_edges) = scratch.extract(&g, seed, depth).unwrap();
            assert_eq!(bfs_edges, ball.edges_scanned);
            assert_eq!(sub.global_ids(), fresh.global_ids());
            assert_eq!(sub.num_edges(), fresh.num_edges());
            for local in 0..fresh.num_nodes() as NodeId {
                assert_eq!(sub.neighbors(local), fresh.neighbors(local));
                assert_eq!(sub.walk_degree(local), fresh.walk_degree(local));
            }
            assert_eq!(scratch.ball(), &ball);
        }
    }

    #[test]
    fn extract_owned_matches_and_keeps_scratch_usable() {
        let g = generators::grid(6, 6).unwrap();
        let mut scratch = ExtractScratch::new();
        let (owned, work) = scratch.extract_owned(&g, 14, 2).unwrap();
        let ball = bfs_ball(&g, 14, 2).unwrap();
        let fresh = Subgraph::extract(&g, &ball).unwrap();
        assert_eq!(work, ball.edges_scanned);
        assert_eq!(owned.global_ids(), fresh.global_ids());
        assert_eq!(owned.num_edges(), fresh.num_edges());
        // The scratch still extracts correctly after giving its sub-graph
        // buffers away.
        let (sub, _) = scratch.extract(&g, 0, 1).unwrap();
        assert_eq!(sub.to_global(0), 0);
        // And `owned` is an independent value, unaffected by later calls.
        assert_eq!(owned.to_global(0), 14);
    }

    #[test]
    fn errors_leave_scratch_usable() {
        let g = generators::path(4).unwrap();
        let mut scratch = ExtractScratch::new();
        assert!(scratch.extract(&g, 99, 1).is_err());
        let (sub, _) = scratch.extract(&g, 1, 1).unwrap();
        assert_eq!(sub.num_nodes(), 3);
    }
}
