//! Graph generators: deterministic fixtures, classic random models and the
//! paper-corpus stand-ins.
//!
//! The MeLoPPR paper evaluates on six SNAP graphs that are not shipped with
//! this repository; [`corpus`] provides deterministic synthetic stand-ins
//! with matched node/edge counts (see `DESIGN.md` §2 for the substitution
//! rationale). The remaining generators are general-purpose substrates used
//! by tests, examples and ablation studies.
//!
//! Every random generator takes an explicit `u64` seed and is fully
//! deterministic given it.

mod fixtures;
mod random;

pub mod corpus;

pub use fixtures::{binary_tree, complete, cycle, grid, karate_club, path, star};
pub use random::{
    barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, locality_preferential, planted_partition,
    rmat, watts_strogatz, RmatProbabilities,
};
