//! Small deterministic graphs used throughout tests and documentation.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::NodeId;

/// Path graph `0 - 1 - … - (n-1)`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0`.
pub fn path(n: usize) -> Result<CsrGraph> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId);
    }
    b.build()
}

/// Cycle graph on `n` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if `n < 3` (smaller cycles are
/// not simple graphs).
pub fn cycle(n: usize) -> Result<CsrGraph> {
    if n < 3 {
        return Err(GraphError::InvalidGenerator {
            reason: format!("cycle requires n >= 3, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// Star graph: node 0 connected to nodes `1..n`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0`.
pub fn star(n: usize) -> Result<CsrGraph> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as NodeId);
    }
    b.build()
}

/// Complete graph `K_n`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0`.
pub fn complete(n: usize) -> Result<CsrGraph> {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as NodeId, j as NodeId);
        }
    }
    b.build()
}

/// `w × h` grid graph (4-neighborhood); node `(x, y)` has id `y·w + x`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Result<CsrGraph> {
    if w == 0 || h == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let id = (y * w + x) as NodeId;
            if x + 1 < w {
                b.add_edge(id, id + 1);
            }
            if y + 1 < h {
                b.add_edge(id, id + w as NodeId);
            }
        }
    }
    b.build()
}

/// Complete binary tree of the given `depth` (`depth = 0` is a single
/// node). Node 0 is the root; node `i` has children `2i + 1` and `2i + 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if the tree would exceed
/// `u32::MAX` nodes.
pub fn binary_tree(depth: u32) -> Result<CsrGraph> {
    if depth >= 31 {
        return Err(GraphError::InvalidGenerator {
            reason: format!("binary tree of depth {depth} exceeds NodeId range"),
        });
    }
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let left = 2 * i + 1;
        let right = 2 * i + 2;
        if left < n {
            b.add_edge(i as NodeId, left as NodeId);
        }
        if right < n {
            b.add_edge(i as NodeId, right as NodeId);
        }
    }
    b.build()
}

/// Zachary's karate club (34 nodes, 78 edges), the classic community-
/// structure benchmark. Useful for eyeballing PPR results: querying from
/// node 0 (the instructor) should rank its faction highly.
pub fn karate_club() -> CsrGraph {
    // 1-based edge list from Zachary (1977), converted to 0-based below.
    const EDGES: [(NodeId, NodeId); 78] = [
        (1, 2),
        (1, 3),
        (2, 3),
        (1, 4),
        (2, 4),
        (3, 4),
        (1, 5),
        (1, 6),
        (1, 7),
        (5, 7),
        (6, 7),
        (1, 8),
        (2, 8),
        (3, 8),
        (4, 8),
        (1, 9),
        (3, 9),
        (3, 10),
        (1, 11),
        (5, 11),
        (6, 11),
        (1, 12),
        (1, 13),
        (4, 13),
        (1, 14),
        (2, 14),
        (3, 14),
        (4, 14),
        (6, 17),
        (7, 17),
        (1, 18),
        (2, 18),
        (1, 20),
        (2, 20),
        (1, 22),
        (2, 22),
        (24, 26),
        (25, 26),
        (3, 28),
        (24, 28),
        (25, 28),
        (3, 29),
        (24, 30),
        (27, 30),
        (2, 31),
        (9, 31),
        (1, 32),
        (25, 32),
        (26, 32),
        (29, 32),
        (3, 33),
        (9, 33),
        (15, 33),
        (16, 33),
        (19, 33),
        (21, 33),
        (23, 33),
        (24, 33),
        (30, 33),
        (31, 33),
        (32, 33),
        (9, 34),
        (10, 34),
        (14, 34),
        (15, 34),
        (16, 34),
        (19, 34),
        (20, 34),
        (21, 34),
        (23, 34),
        (24, 34),
        (27, 34),
        (28, 34),
        (29, 34),
        (30, 34),
        (31, 34),
        (32, 34),
        (33, 34),
    ];
    let mut b = GraphBuilder::new(34);
    for &(u, v) in &EDGES {
        b.add_edge(u - 1, v - 1);
    }
    b.build().expect("karate club edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn path_single_node() {
        let g = path(1).unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert!((0..6).all(|i| g.degree(i) == 2));
    }

    #[test]
    fn cycle_too_small() {
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(7).unwrap();
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5).unwrap();
        assert_eq!(g.num_edges(), 10);
        assert!((0..5).all(|i| g.degree(i) == 4));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.num_nodes(), 12);
        // 4 rows of 2 horizontal + 3 cols of 3 vertical = 8 + 9.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(4), 4); // interior
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3).unwrap();
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1);
    }

    #[test]
    fn karate_club_statistics() {
        let g = karate_club();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        // Instructor (0) and president (33) are the hubs.
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(33), 17);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }
}
