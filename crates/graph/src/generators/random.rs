//! Classic random-graph models, all deterministic under an explicit seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::fast_hash::FastHashSet;
use crate::NodeId;

/// A `FastHashSet` pre-sized for `n` insertions.
fn set_with_capacity<T: std::hash::Hash + Eq>(n: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(n, Default::default())
}

fn max_simple_edges(n: usize) -> usize {
    n.saturating_mul(n.saturating_sub(1)) / 2
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if `m` exceeds the number of
/// edges a simple graph on `n` nodes can hold, or
/// [`GraphError::EmptyGraph`] if `n == 0`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if m > max_simple_edges(n) {
        return Err(GraphError::InvalidGenerator {
            reason: format!("G(n={n}, m={m}) exceeds simple-graph capacity"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen: FastHashSet<(NodeId, NodeId)> = set_with_capacity(m);
    let mut builder = GraphBuilder::new(n);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Erdős–Rényi `G(n, p)` using geometric skipping, `O(n + m)` expected
/// time.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0` or
/// [`GraphError::InvalidGenerator`] if `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGenerator {
            reason: format!("edge probability {p} outside [0, 1]"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if p > 0.0 {
        // Enumerate the n*(n-1)/2 pairs lexicographically and jump ahead by
        // geometric gaps.
        let log_q = (1.0 - p).ln();
        let total = max_simple_edges(n) as u64;
        let mut idx: u64 = 0;
        if p >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    builder.add_edge(u as NodeId, v as NodeId);
                }
            }
        } else {
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (u.ln() / log_q).floor() as u64 + 1;
                idx = match idx.checked_add(skip) {
                    Some(i) => i,
                    None => break,
                };
                if idx > total {
                    break;
                }
                let (a, b) = pair_from_index(n as u64, idx - 1);
                builder.add_edge(a as NodeId, b as NodeId);
            }
        }
    }
    builder.build()
}

/// Maps a linear index in `0..n*(n-1)/2` to the lexicographic pair `(a, b)`
/// with `a < b`.
fn pair_from_index(n: u64, idx: u64) -> (u64, u64) {
    // Row a starts at offset a*n - a*(a+1)/2 - a ... solve incrementally to
    // avoid floating-point edge cases on huge n (binary search on row).
    let mut lo = 0u64;
    let mut hi = n - 1;
    let row_start = |a: u64| a * (2 * n - a - 1) / 2;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let a = lo;
    let b = a + 1 + (idx - row_start(a));
    (a, b)
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m + 1` nodes, then each new node attaches to `m` distinct existing
/// nodes with probability proportional to degree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    if m == 0 || n <= m {
        return Err(GraphError::InvalidGenerator {
            reason: format!("Barabási–Albert requires 0 < m < n (m={m}, n={n})"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Endpoint multiset for preferential sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let core = m + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            builder.add_edge(u as NodeId, v as NodeId);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    for u in core..n {
        let mut targets: FastHashSet<NodeId> = set_with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t as usize != u {
                targets.insert(t);
            }
        }
        for &t in &targets {
            builder.add_edge(u as NodeId, t);
            endpoints.push(u as NodeId);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Watts–Strogatz small world: ring lattice where each node connects to its
/// `k` nearest neighbors (`k` even), each edge rewired with probability
/// `beta`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    if !k.is_multiple_of(2) || k == 0 || k >= n {
        return Err(GraphError::InvalidGenerator {
            reason: format!("Watts–Strogatz requires even 0 < k < n (k={k}, n={n})"),
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidGenerator {
            reason: format!("rewiring probability {beta} outside [0, 1]"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: FastHashSet<(NodeId, NodeId)> = set_with_capacity(n * k / 2);
    let norm = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            edges.insert(norm(u as NodeId, v as NodeId));
        }
    }
    let mut list: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
    list.sort_unstable();
    for &(u, v) in &list {
        if rng.gen_bool(beta) {
            // Rewire the far endpoint to a uniformly random non-duplicate.
            for _ in 0..32 {
                let w = rng.gen_range(0..n) as NodeId;
                if w != u && w != v && !edges.contains(&norm(u, w)) {
                    edges.remove(&norm(u, v));
                    edges.insert(norm(u, w));
                    break;
                }
            }
        }
    }
    let mut builder = GraphBuilder::new(n);
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Quadrant probabilities for the [`rmat`] generator. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatProbabilities {
    /// Top-left quadrant weight.
    pub a: f64,
    /// Top-right quadrant weight.
    pub b: f64,
    /// Bottom-left quadrant weight.
    pub c: f64,
    /// Bottom-right quadrant weight.
    pub d: f64,
}

impl Default for RmatProbabilities {
    /// The canonical `(0.57, 0.19, 0.19, 0.05)` parameters from the R-MAT
    /// paper.
    fn default() -> Self {
        RmatProbabilities {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// R-MAT power-law generator on `2^scale` nodes with `m` unique undirected
/// edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if the probabilities do not sum
/// to ~1, if `scale` exceeds 31, if `m` exceeds simple-graph capacity, or if
/// edge sampling fails to find `m` unique edges within a retry budget
/// (overly dense requests).
pub fn rmat(scale: u32, m: usize, probs: RmatProbabilities, seed: u64) -> Result<CsrGraph> {
    if scale == 0 || scale > 31 {
        return Err(GraphError::InvalidGenerator {
            reason: format!("R-MAT scale must be in 1..=31, got {scale}"),
        });
    }
    let sum = probs.a + probs.b + probs.c + probs.d;
    if (sum - 1.0).abs() > 1e-9
        || [probs.a, probs.b, probs.c, probs.d]
            .iter()
            .any(|&p| p < 0.0)
    {
        return Err(GraphError::InvalidGenerator {
            reason: format!("R-MAT probabilities must be non-negative and sum to 1 (sum={sum})"),
        });
    }
    let n = 1usize << scale;
    if m > max_simple_edges(n) {
        return Err(GraphError::InvalidGenerator {
            reason: format!("R-MAT m={m} exceeds simple-graph capacity of n={n}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen: FastHashSet<(NodeId, NodeId)> = set_with_capacity(m);
    let mut builder = GraphBuilder::new(n);
    let budget = 100usize.saturating_mul(m).max(10_000);
    let mut attempts = 0usize;
    while chosen.len() < m {
        attempts += 1;
        if attempts > budget {
            return Err(GraphError::InvalidGenerator {
                reason: format!("R-MAT failed to find {m} unique edges within {budget} attempts"),
            });
        }
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < probs.a {
                (0, 0)
            } else if r < probs.a + probs.b {
                (0, 1)
            } else if r < probs.a + probs.b + probs.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let key = ((u.min(v)) as NodeId, (u.max(v)) as NodeId);
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Planted-partition stochastic block model: `blocks` communities of
/// `block_size` nodes each, intra-community edge probability `p_in`,
/// inter-community probability `p_out`. Uses geometric skipping, so it
/// scales to large sparse graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] for zero-sized blocks or
/// probabilities outside `[0, 1]`.
pub fn planted_partition(
    blocks: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<CsrGraph> {
    if blocks == 0 || block_size == 0 {
        return Err(GraphError::InvalidGenerator {
            reason: "planted partition requires blocks >= 1 and block_size >= 1".into(),
        });
    }
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidGenerator {
                reason: format!("{name} = {p} outside [0, 1]"),
            });
        }
    }
    let n = blocks * block_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Sample pairs with geometric skipping over the full pair index space,
    // accepting with the block-dependent probability ratio. Dominant
    // probability first keeps the expected work near m.
    let p_max = p_in.max(p_out);
    if p_max > 0.0 {
        let log_q = if p_max >= 1.0 {
            f64::NEG_INFINITY
        } else {
            (1.0 - p_max).ln()
        };
        let total = max_simple_edges(n) as u64;
        let mut idx: u64 = 0;
        loop {
            let skip = if p_max >= 1.0 {
                1
            } else {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                (r.ln() / log_q).floor() as u64 + 1
            };
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx > total {
                break;
            }
            let (a, b) = pair_from_index(n as u64, idx - 1);
            let same_block = (a as usize / block_size) == (b as usize / block_size);
            let p = if same_block { p_in } else { p_out };
            if p >= p_max || rng.gen_bool(p / p_max) {
                builder.add_edge(a as NodeId, b as NodeId);
            }
        }
    }
    builder.build()
}

/// Citation-style generator combining preferential attachment with id
/// locality; used by the paper-corpus stand-ins ([`crate::generators::corpus`]).
///
/// Nodes arrive in id order. Node `i` creates `e_i ≥ 1` edges
/// (`Σ e_i = target_edges`); each edge endpoint is drawn from a recency
/// window `[i - window, i)` with probability `locality` (citation
/// behaviour), otherwise by global preferential attachment (hub behaviour).
/// The resulting graphs are connected, power-law-ish, and exhibit the local
/// community structure that makes BFS balls grow like those of real
/// citation/co-purchase networks.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGenerator`] if `n < 2`,
/// `target_edges < n - 1` (connectivity requires a spanning structure), if
/// `locality` is outside `[0, 1]`, or if `target_edges` exceeds
/// simple-graph capacity.
pub fn locality_preferential(
    n: usize,
    target_edges: usize,
    locality: f64,
    window: usize,
    seed: u64,
) -> Result<CsrGraph> {
    if n < 2 {
        return Err(GraphError::InvalidGenerator {
            reason: format!("locality_preferential requires n >= 2, got {n}"),
        });
    }
    if target_edges < n - 1 {
        return Err(GraphError::InvalidGenerator {
            reason: format!(
                "target_edges = {target_edges} < n - 1 = {} cannot keep the graph connected",
                n - 1
            ),
        });
    }
    if target_edges > max_simple_edges(n) {
        return Err(GraphError::InvalidGenerator {
            reason: format!("target_edges = {target_edges} exceeds simple-graph capacity"),
        });
    }
    if !(0.0..=1.0).contains(&locality) {
        return Err(GraphError::InvalidGenerator {
            reason: format!("locality = {locality} outside [0, 1]"),
        });
    }
    let window = window.max(2);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Distribute edge budget: every node i >= 1 gets one edge (spanning),
    // the surplus is assigned to uniformly random nodes (re-rolled below
    // when a node's budget cannot be met by distinct targets).
    let mut budget = vec![0usize; n];
    for b in budget.iter_mut().skip(1) {
        *b = 1;
    }
    // (budget[0] stays 0: node 0 has no earlier node to cite.)
    let mut surplus = target_edges - (n - 1);
    while surplus > 0 {
        let i = rng.gen_range(1..n);
        // Node i can host at most i distinct earlier targets.
        if budget[i] < i {
            budget[i] += 1;
            surplus -= 1;
        }
    }

    let mut chosen: FastHashSet<(NodeId, NodeId)> = set_with_capacity(target_edges);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * target_edges);
    let mut builder = GraphBuilder::new(n);
    let connect = |u: usize,
                   v: usize,
                   chosen: &mut FastHashSet<(NodeId, NodeId)>,
                   endpoints: &mut Vec<NodeId>,
                   builder: &mut GraphBuilder|
     -> bool {
        let key = ((u.min(v)) as NodeId, (u.max(v)) as NodeId);
        if u == v || !chosen.insert(key) {
            return false;
        }
        builder.add_edge(key.0, key.1);
        endpoints.push(key.0);
        endpoints.push(key.1);
        true
    };

    for (i, &node_budget) in budget.iter().enumerate().skip(1) {
        let mut placed = 0usize;
        let mut misses = 0usize;
        while placed < node_budget {
            let target = if endpoints.is_empty() || rng.gen_bool(locality) {
                // Recency window [i - window, i).
                let lo = i.saturating_sub(window);
                rng.gen_range(lo..i)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())] as usize
            };
            if connect(i, target, &mut chosen, &mut endpoints, &mut builder) {
                placed += 1;
                misses = 0;
            } else {
                misses += 1;
                if misses > 64 {
                    // Dense neighborhood: fall back to scanning for any free
                    // earlier node (guaranteed to exist since budget[i] <= i).
                    for cand in (0..i).rev() {
                        if connect(i, cand, &mut chosen, &mut endpoints, &mut builder) {
                            placed += 1;
                            break;
                        }
                    }
                    misses = 0;
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::view::GraphView;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 7).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_deterministic() {
        let a = erdos_renyi_gnm(50, 100, 42).unwrap();
        let b = erdos_renyi_gnm(50, 100, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gnm_different_seeds_differ() {
        let a = erdos_renyi_gnm(50, 100, 1).unwrap();
        let b = erdos_renyi_gnm(50, 100, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        assert!(erdos_renyi_gnm(4, 7, 0).is_err());
    }

    #[test]
    fn gnm_complete_graph_possible() {
        let g = erdos_renyi_gnm(5, 10, 3).unwrap();
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_expected_density() {
        let g = erdos_renyi_gnp(400, 0.05, 11).unwrap();
        let expected = 0.05 * (400.0 * 399.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 20.0,
            "m = {m}"
        );
    }

    #[test]
    fn gnp_zero_probability_empty() {
        let g = erdos_renyi_gnp(10, 0.0, 5).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnp_one_probability_complete() {
        let g = erdos_renyi_gnp(6, 1.0, 5).unwrap();
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn gnp_rejects_bad_probability() {
        assert!(erdos_renyi_gnp(10, 1.5, 0).is_err());
    }

    #[test]
    fn pair_from_index_enumerates_lexicographically() {
        let n = 5u64;
        let mut expected = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                expected.push((a, b));
            }
        }
        for (idx, &pair) in expected.iter().enumerate() {
            assert_eq!(pair_from_index(n, idx as u64), pair);
        }
    }

    #[test]
    fn ba_edge_count_and_connectivity() {
        let g = barabasi_albert(200, 3, 13).unwrap();
        assert_eq!(g.num_nodes(), 200);
        // Clique of 4 (6 edges) + 196 nodes x 3 edges.
        assert_eq!(g.num_edges(), 6 + 196 * 3);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn ba_rejects_degenerate() {
        assert!(barabasi_albert(5, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }

    #[test]
    fn ba_has_skewed_degrees() {
        let g = barabasi_albert(500, 2, 99).unwrap();
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn ws_keeps_edge_count() {
        let g = watts_strogatz(100, 4, 0.1, 21).unwrap();
        assert_eq!(g.num_nodes(), 100);
        // Rewiring never removes edges without replacing (up to rare
        // saturation), so the count stays at n*k/2.
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn ws_beta_zero_is_ring_lattice() {
        let g = watts_strogatz(10, 2, 0.0, 0).unwrap();
        for u in 0..10u32 {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn ws_rejects_odd_k() {
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err());
    }

    #[test]
    fn rmat_edge_count() {
        let g = rmat(10, 4000, RmatProbabilities::default(), 77).unwrap();
        assert_eq!(g.num_nodes(), 1024);
        assert_eq!(g.num_edges(), 4000);
    }

    #[test]
    fn rmat_rejects_bad_probs() {
        let bad = RmatProbabilities {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
        };
        assert!(rmat(8, 100, bad, 0).is_err());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(11, 8000, RmatProbabilities::default(), 5).unwrap();
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn planted_partition_prefers_intra_edges() {
        let g = planted_partition(4, 50, 0.2, 0.002, 31).unwrap();
        assert_eq!(g.num_nodes(), 200);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if u / 50 == v / 50 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra = {intra}, inter = {inter}");
    }

    #[test]
    fn planted_partition_rejects_bad_probs() {
        assert!(planted_partition(2, 10, 1.5, 0.0, 0).is_err());
        assert!(planted_partition(0, 10, 0.5, 0.0, 0).is_err());
    }

    #[test]
    fn locality_preferential_exact_edges_and_connected() {
        let g = locality_preferential(1000, 2800, 0.7, 50, 17).unwrap();
        assert_eq!(g.num_nodes(), 1000);
        assert_eq!(g.num_edges(), 2800);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn locality_preferential_deterministic() {
        let a = locality_preferential(300, 900, 0.8, 30, 4).unwrap();
        let b = locality_preferential(300, 900, 0.8, 30, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn locality_preferential_rejects_disconnected_budget() {
        assert!(locality_preferential(10, 5, 0.5, 5, 0).is_err());
    }

    #[test]
    fn locality_preferential_dense_fallback() {
        // Nearly complete graph forces the dense-neighborhood fallback path.
        let g = locality_preferential(12, 60, 0.9, 4, 8).unwrap();
        assert_eq!(g.num_edges(), 60);
    }

    #[test]
    fn locality_preferential_skewed_like_citations() {
        let g = locality_preferential(2000, 5600, 0.6, 100, 23).unwrap();
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
        assert_eq!(g.size(), 2000 + 5600);
    }
}
