//! Synthetic stand-ins for the six SNAP graphs of the paper's evaluation
//! (Table II).
//!
//! The paper evaluates on citeseer, cora, pubmed, com-amazon, com-dblp and
//! com-youtube. Those datasets are not redistributed here; instead each
//! [`PaperGraph`] deterministically generates a graph with the **exact**
//! node and edge counts reported in Table II, using the
//! [`locality_preferential`] model, whose locality/window parameters are
//! tuned per graph family (citation networks are recency-local; social
//! networks are hub-driven).
//! See `DESIGN.md` §2 for why this substitution preserves the behaviours
//! the evaluation measures (ball growth, degree skew, score sparsity).
//!
//! Experiments that need to finish quickly can use
//! [`PaperGraph::generate_scaled`] to shrink a stand-in while preserving
//! its average degree.

use crate::csr::CsrGraph;
use crate::error::Result;
use crate::generators::locality_preferential;

/// One of the six evaluation graphs from the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PaperGraph {
    /// G1: citeseer — |V| = 3 327, |E| = 4 676.
    G1Citeseer,
    /// G2: cora — |V| = 2 708, |E| = 5 278.
    G2Cora,
    /// G3: pubmed — |V| = 19 717, |E| = 44 327.
    G3Pubmed,
    /// G4: com-amazon — |V| = 334 863, |E| = 925 872.
    G4ComAmazon,
    /// G5: com-dblp — |V| = 317 080, |E| = 1 049 866.
    G5ComDblp,
    /// G6: com-youtube — |V| = 1 134 890, |E| = 2 987 624.
    G6ComYoutube,
}

/// Generation profile: how local vs hub-driven attachments are.
#[derive(Debug, Clone, Copy)]
struct Profile {
    locality: f64,
    window_div: usize,
}

impl PaperGraph {
    /// All six graphs, in paper order G1..G6.
    pub const ALL: [PaperGraph; 6] = [
        PaperGraph::G1Citeseer,
        PaperGraph::G2Cora,
        PaperGraph::G3Pubmed,
        PaperGraph::G4ComAmazon,
        PaperGraph::G5ComDblp,
        PaperGraph::G6ComYoutube,
    ];

    /// The three small graphs used for Fig. 6 (precision-vs-ratio curves).
    pub const SMALL: [PaperGraph; 3] = [
        PaperGraph::G1Citeseer,
        PaperGraph::G2Cora,
        PaperGraph::G3Pubmed,
    ];

    /// Paper label, e.g. `"G1"`.
    pub fn id(&self) -> &'static str {
        match self {
            PaperGraph::G1Citeseer => "G1",
            PaperGraph::G2Cora => "G2",
            PaperGraph::G3Pubmed => "G3",
            PaperGraph::G4ComAmazon => "G4",
            PaperGraph::G5ComDblp => "G5",
            PaperGraph::G6ComYoutube => "G6",
        }
    }

    /// Dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PaperGraph::G1Citeseer => "citeseer",
            PaperGraph::G2Cora => "cora",
            PaperGraph::G3Pubmed => "pubmed",
            PaperGraph::G4ComAmazon => "com-amazon",
            PaperGraph::G5ComDblp => "com-dblp",
            PaperGraph::G6ComYoutube => "com-youtube",
        }
    }

    /// Node count reported in Table II.
    pub fn paper_nodes(&self) -> usize {
        match self {
            PaperGraph::G1Citeseer => 3_327,
            PaperGraph::G2Cora => 2_708,
            PaperGraph::G3Pubmed => 19_717,
            PaperGraph::G4ComAmazon => 334_863,
            PaperGraph::G5ComDblp => 317_080,
            PaperGraph::G6ComYoutube => 1_134_890,
        }
    }

    /// Edge count reported in Table II.
    pub fn paper_edges(&self) -> usize {
        match self {
            PaperGraph::G1Citeseer => 4_676,
            PaperGraph::G2Cora => 5_278,
            PaperGraph::G3Pubmed => 44_327,
            PaperGraph::G4ComAmazon => 925_872,
            PaperGraph::G5ComDblp => 1_049_866,
            PaperGraph::G6ComYoutube => 2_987_624,
        }
    }

    /// Whether the paper classifies this as one of the large-scale graphs
    /// (G4–G6).
    pub fn is_large(&self) -> bool {
        matches!(
            self,
            PaperGraph::G4ComAmazon | PaperGraph::G5ComDblp | PaperGraph::G6ComYoutube
        )
    }

    fn profile(&self) -> Profile {
        // Locality/window pairs are tuned so the stand-ins' BFS-ball
        // growth (median depth-3 and depth-6 ball sizes from random giant-
        // component seeds) tracks the real datasets': citation networks
        // mix recency-window citations with hub (highly-cited) papers;
        // co-purchase/collaboration graphs are more cluster-local; social
        // networks are strongly hub-driven.
        match self {
            PaperGraph::G1Citeseer => Profile {
                locality: 0.35,
                window_div: 8,
            },
            PaperGraph::G2Cora => Profile {
                locality: 0.35,
                window_div: 8,
            },
            PaperGraph::G3Pubmed => Profile {
                locality: 0.30,
                window_div: 10,
            },
            // Co-purchase: local clusters with occasional bestseller hubs.
            PaperGraph::G4ComAmazon => Profile {
                locality: 0.55,
                window_div: 400,
            },
            // Collaboration: local with moderate hubs.
            PaperGraph::G5ComDblp => Profile {
                locality: 0.45,
                window_div: 300,
            },
            // Social: hub-driven.
            PaperGraph::G6ComYoutube => Profile {
                locality: 0.25,
                window_div: 200,
            },
        }
    }

    /// Generates the full-size stand-in with the exact Table II node and
    /// edge counts.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (cannot occur for the fixed paper
    /// parameters; the signature is fallible for uniformity).
    pub fn generate(&self, seed: u64) -> Result<CsrGraph> {
        self.generate_with_size(self.paper_nodes(), self.paper_edges(), seed)
    }

    /// Generates a scaled stand-in with `⌈|V|·factor⌉` nodes and edge count
    /// scaled to preserve the graph's average degree. Intended for fast
    /// tests and CI-sized experiment runs (`factor` ∈ (0, 1]).
    ///
    /// # Errors
    ///
    /// Returns a generator error if `factor` is not in `(0, 1]`.
    pub fn generate_scaled(&self, factor: f64, seed: u64) -> Result<CsrGraph> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(crate::error::GraphError::InvalidGenerator {
                reason: format!("scale factor {factor} outside (0, 1]"),
            });
        }
        let n = ((self.paper_nodes() as f64 * factor).round() as usize).max(64);
        let e = ((self.paper_edges() as f64 * factor).round() as usize).max(n - 1);
        self.generate_with_size(n, e, seed)
    }

    fn generate_with_size(&self, n: usize, e: usize, seed: u64) -> Result<CsrGraph> {
        let p = self.profile();
        let window = (n / p.window_div).max(8);
        // Mix the graph id into the seed so G1..G6 differ even with the
        // same user seed.
        let seed = seed ^ (self.paper_nodes() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        locality_preferential(n, e, p.locality, window, seed)
    }
}

impl std::fmt::Display for PaperGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn small_graphs_match_paper_counts() {
        for pg in PaperGraph::SMALL {
            let g = pg.generate(1).unwrap();
            assert_eq!(g.num_nodes(), pg.paper_nodes(), "{pg}");
            assert_eq!(g.num_edges(), pg.paper_edges(), "{pg}");
        }
    }

    #[test]
    fn stand_ins_are_connected() {
        let g = PaperGraph::G1Citeseer.generate(3).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn scaled_preserves_avg_degree() {
        let pg = PaperGraph::G3Pubmed;
        let g = pg.generate_scaled(0.05, 9).unwrap();
        let paper_avg = 2.0 * pg.paper_edges() as f64 / pg.paper_nodes() as f64;
        assert!(
            (g.avg_degree() - paper_avg).abs() < 0.5,
            "avg = {}",
            g.avg_degree()
        );
    }

    #[test]
    fn scaled_rejects_bad_factor() {
        assert!(PaperGraph::G1Citeseer.generate_scaled(0.0, 0).is_err());
        assert!(PaperGraph::G1Citeseer.generate_scaled(1.5, 0).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperGraph::G2Cora.generate(5).unwrap();
        let b = PaperGraph::G2Cora.generate(5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn graphs_differ_across_ids_with_same_seed() {
        let a = PaperGraph::G1Citeseer.generate_scaled(0.1, 5).unwrap();
        let b = PaperGraph::G2Cora.generate_scaled(0.1, 5).unwrap();
        assert_ne!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn display_formats() {
        assert_eq!(PaperGraph::G1Citeseer.to_string(), "G1 (citeseer)");
        assert_eq!(PaperGraph::G6ComYoutube.id(), "G6");
        assert!(PaperGraph::G6ComYoutube.is_large());
        assert!(!PaperGraph::G2Cora.is_large());
    }

    #[test]
    fn all_ordering_matches_paper() {
        let ids: Vec<_> = PaperGraph::ALL.iter().map(|g| g.id()).collect();
        assert_eq!(ids, ["G1", "G2", "G3", "G4", "G5", "G6"]);
    }
}
