//! Property-based tests of the graph substrate's structural invariants.

use proptest::prelude::*;

use meloppr_graph::edge_list::{parse_edge_list, write_edge_list, EdgeListOptions};
use meloppr_graph::{
    bfs_ball, bfs_distances, components, generators, CsrGraph, GraphBuilder, NodeId,
};

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), prop::collection::vec(edge, 0..n * 3))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn builder_always_produces_valid_csr((n, edges) in arb_edges(64)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        prop_assert_eq!(g.num_nodes(), n);
        // Symmetric, sorted, loop-free adjacency.
        for u in 0..n as NodeId {
            let nbrs = g.neighbors(u);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &v in nbrs {
                prop_assert!(v != u);
                prop_assert!(g.neighbors(v).contains(&u));
            }
        }
        // Round-trip through raw parts re-validates.
        let (offsets, neighbors) = g.clone().into_parts();
        prop_assert_eq!(CsrGraph::from_parts(offsets, neighbors).unwrap(), g);
    }

    #[test]
    fn edge_list_roundtrip((n, edges) in arb_edges(48)) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges.iter().copied());
        let g = b.build().unwrap();
        prop_assume!(g.num_edges() > 0);

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = EdgeListOptions { relabel: false, ..EdgeListOptions::default() };
        let parsed = parse_edge_list(&text, opts).unwrap();
        // Node counts can shrink if trailing nodes are isolated; edges and
        // adjacency of surviving nodes must match exactly.
        prop_assert_eq!(parsed.graph.num_edges(), g.num_edges());
        for u in 0..parsed.graph.num_nodes() as NodeId {
            prop_assert_eq!(parsed.graph.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_property((n, edges) in arb_edges(48)) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges.iter().copied());
        let g = b.build().unwrap();
        let dist = bfs_distances(&g, 0).unwrap();
        prop_assert_eq!(dist[0], 0);
        // Adjacent nodes differ by at most one hop.
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv); // both unreachable together
            }
        }
    }

    #[test]
    fn ball_nodes_match_distance_filter((n, edges) in arb_edges(48), depth in 0u32..5) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges.iter().copied());
        let g = b.build().unwrap();
        let ball = bfs_ball(&g, 0, depth).unwrap();
        let dist = bfs_distances(&g, 0).unwrap();
        let expected: std::collections::HashSet<NodeId> = (0..n as NodeId)
            .filter(|&v| dist[v as usize] <= depth)
            .collect();
        let actual: std::collections::HashSet<NodeId> = ball.nodes.iter().copied().collect();
        prop_assert_eq!(actual, expected);
        // Reported distances agree with the full BFS.
        for (i, &v) in ball.nodes.iter().enumerate() {
            prop_assert_eq!(ball.dist[i], dist[v as usize]);
        }
    }

    #[test]
    fn components_partition_the_graph((n, edges) in arb_edges(48)) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges.iter().copied());
        let g = b.build().unwrap();
        let (labels, count) = components::connected_components(&g);
        prop_assert_eq!(labels.len(), n);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        // Edges never cross component boundaries.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Each label is used.
        let used: std::collections::HashSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(used.len(), count);
    }

    #[test]
    fn gnm_generator_respects_parameters(n in 2usize..64, m_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let max_m = n * (n - 1) / 2;
        let m = (max_m as f64 * m_frac) as usize;
        let g = generators::erdos_renyi_gnm(n, m, seed).unwrap();
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn locality_preferential_always_connected(
        n in 3usize..120,
        extra in 0usize..60,
        loc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let target = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = generators::locality_preferential(n, target, loc, n / 4 + 2, seed).unwrap();
        prop_assert_eq!(g.num_edges(), target);
        prop_assert!(components::is_connected(&g));
    }
}
