//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace resolves
//! `proptest` to this path crate. It implements random-sampling property
//! tests with the familiar surface — the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, [`Just`], [`any`],
//! `prop::collection::vec`, `prop::sample::Index`, range strategies and
//! the `prop_assert*`/`prop_assume!` macros — but **without shrinking**:
//! a failing case panics with the offending assertion directly.
//!
//! Case generation is deterministic: the RNG is seeded from the test
//! function's name, so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestCaseSkip;

/// Drives the cases of one property (used by the [`proptest!`] expansion).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from `name`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The shared case RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut SmallRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` of `elem`-generated values whose length is uniform in
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, SmallRng};
    use rand::Rng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            Index(rng.gen::<u64>())
        }
    }
}

/// The prelude: everything property tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property (panics on failure, like
/// `assert!` — this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            for _case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let _skipped: ::core::result::Result<(), $crate::TestCaseSkip> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_runner() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(1), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(1), "t");
        let s = (0usize..100, 0.0f64..1.0);
        assert_eq!(s.generate(a.rng()), s.generate(b.rng()));
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut runner = crate::TestRunner::new(ProptestConfig::default(), "fm");
        let s = (2usize..10).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 0..n)));
        for _ in 0..100 {
            let (n, v) = s.generate(runner.rng());
            assert!(v.len() < n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u32..10, 10u32..20), c in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assume!(c != 0); // exercises the skip path
            prop_assert_ne!(c, 0);
        }
    }
}
