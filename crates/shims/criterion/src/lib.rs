//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace resolves
//! `criterion` to this path crate. Benchmarks compile and run unchanged;
//! instead of criterion's statistical machinery each benchmark does a
//! short warm-up, times a fixed batch of iterations with
//! [`std::time::Instant`], and prints mean wall-clock time per iteration
//! (plus throughput when configured). Good enough to eyeball regressions;
//! not a statistics engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Measurement configuration and entry point (mirrors
/// `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let mut group = BenchmarkGroup {
            sample_size,
            throughput: None,
            _criterion: self,
        };
        group.bench_function(name, routine);
        self
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        self.report(name, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, name: &str, bencher: &Bencher) {
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  ({:.2e}/s)", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("{name:<40} {:>12.3} us/iter{rate}", per_iter * 1e6);
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimizing a value away (re-export of
/// `std::hint::black_box` for criterion API compatibility).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (ignores CLI arguments).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
