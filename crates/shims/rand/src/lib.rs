//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace resolves
//! `rand` to this path crate. It provides:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable generator
//!   (xoshiro256++, seeded via SplitMix64);
//! * [`Rng`] — `gen_bool`, `gen_range` over integer and float ranges,
//!   and `gen` for a uniform `f64` in `[0, 1)`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are **not** bit-compatible with the real `rand` crate, but are
//! deterministic under a fixed seed, which is all the workspace relies on
//! (every consumer seeds explicitly and asserts reproducibility, not
//! specific draws).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open `lo..hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)` using the top
/// 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift maps 64 random bits to [0, span) with
                // negligible bias for the spans used here.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + offset as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo) as u64 + 1;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + offset as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let sample = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against landing on `end` through rounding.
        if sample >= self.end {
            self.start
        } else {
            sample
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Matches the role (not the bit stream) of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic under the generator's seed.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }
}
