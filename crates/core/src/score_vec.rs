//! Score vectors and deterministic top-`k` extraction.
//!
//! PPR scores are probabilities, so every helper here assumes non-negative
//! entries. Ranking ties are broken by ascending node id to make every
//! result — and therefore every experiment — bit-for-bit reproducible.

use meloppr_graph::NodeId;

/// A ranked `(node, score)` list, highest score first.
pub type Ranking = Vec<(NodeId, f64)>;

/// Extracts the top-`k` entries of a dense score vector, sorted by
/// descending score with ties broken by ascending node id. Zero-score
/// entries are excluded, so the result may be shorter than `k`.
///
/// This is the paper's selection operator `R(S_L, k)` (Eq. 2).
///
/// # Examples
///
/// ```
/// use meloppr_core::score_vec::top_k_dense;
///
/// let scores = [0.1, 0.0, 0.5, 0.1];
/// assert_eq!(top_k_dense(&scores, 2), vec![(2, 0.5), (0, 0.1)]);
/// ```
pub fn top_k_dense(scores: &[f64], k: usize) -> Ranking {
    let entries = scores
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s > 0.0)
        .map(|(i, &s)| (i as NodeId, s));
    top_k_from_iter(entries, k)
}

/// Extracts the top-`k` of a sparse `(node, score)` list with the same
/// ordering rules as [`top_k_dense`]. The input need not be sorted; nodes
/// must be unique.
pub fn top_k_sparse(scores: &[(NodeId, f64)], k: usize) -> Ranking {
    top_k_from_iter(scores.iter().copied().filter(|&(_, s)| s > 0.0), k)
}

/// Streaming bounded selection: instead of collecting and sorting every
/// entry (O(n log n) per query), keep a buffer of at most `max(2k, 64)`
/// candidates, pruning with `select_nth_unstable` whenever it fills and
/// skipping entries strictly below the current kth-best score. Ties at
/// the boundary are never skipped (an equal score with a smaller node id
/// can still enter the top-k), so the result is identical to the full
/// sort. Amortized O(n + k log k).
fn top_k_from_iter<I>(entries: I, k: usize) -> Ranking
where
    I: Iterator<Item = (NodeId, f64)>,
{
    if k == 0 {
        return Vec::new();
    }
    let cmp =
        |a: &(NodeId, f64), b: &(NodeId, f64)| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0));
    let cap = (2 * k).max(64);
    let mut buf: Vec<(NodeId, f64)> = Vec::with_capacity(cap + 1);
    // Once the buffer has been pruned, scores strictly below the kth-best
    // seen so far can never reach the top-k and are dropped on arrival.
    let mut kth_score = f64::NEG_INFINITY;
    for entry in entries {
        if entry.1 < kth_score {
            continue;
        }
        if buf.len() >= cap {
            buf.select_nth_unstable_by(k - 1, cmp);
            buf.truncate(k);
            kth_score = buf[k - 1].1;
            if entry.1 < kth_score {
                continue;
            }
        }
        buf.push(entry);
    }
    top_k_in_place(&mut buf, k);
    buf
}

/// Reduces a caller-owned `(node, score)` buffer to its top-`k` in place
/// — the zero-allocation form of [`top_k_sparse`]. Entries need not be
/// sorted; nodes must be unique. After the call the buffer holds the
/// ranking (descending score, ties by ascending node id).
pub fn top_k_in_place(entries: &mut Vec<(NodeId, f64)>, k: usize) {
    entries.retain(|&(_, s)| s > 0.0);
    let cmp =
        |a: &(NodeId, f64), b: &(NodeId, f64)| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0));
    if entries.len() > k && k > 0 {
        entries.select_nth_unstable_by(k - 1, cmp);
        entries.truncate(k);
    }
    entries.sort_unstable_by(cmp);
    entries.truncate(k);
}

/// The node set of a ranking (for precision computations). Keyed by the
/// deterministic [`FastHashSet`](meloppr_graph::FastHashSet) so query-path
/// consumers stay reproducible across runs.
pub fn ranking_nodes(ranking: &Ranking) -> meloppr_graph::FastHashSet<NodeId> {
    ranking.iter().map(|&(v, _)| v).collect()
}

/// Sum of all entries of a dense score vector (mass-conservation checks).
pub fn total_mass(scores: &[f64]) -> f64 {
    scores.iter().sum()
}

/// Number of entries strictly greater than `threshold` — the sparsity
/// measure behind Fig. 6's "less than 1 % of nodes have large scores".
pub fn count_above(scores: &[f64], threshold: f64) -> usize {
    scores.iter().filter(|&&s| s > threshold).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score_then_id() {
        let scores = [0.3, 0.5, 0.3, 0.1];
        let top = top_k_dense(&scores, 3);
        assert_eq!(top, vec![(1, 0.5), (0, 0.3), (2, 0.3)]);
    }

    #[test]
    fn top_k_excludes_zeros() {
        let scores = [0.0, 0.2, 0.0];
        let top = top_k_dense(&scores, 5);
        assert_eq!(top, vec![(1, 0.2)]);
    }

    #[test]
    fn top_k_zero_k_is_empty() {
        let scores = [1.0, 2.0];
        assert!(top_k_dense(&scores, 0).is_empty());
    }

    #[test]
    fn top_k_k_larger_than_input() {
        let scores = [0.5, 0.25];
        let top = top_k_dense(&scores, 10);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn top_k_sparse_matches_dense() {
        let dense = [0.1, 0.0, 0.7, 0.2, 0.0, 0.7];
        let sparse: Vec<(NodeId, f64)> = dense
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0.0)
            .map(|(i, &s)| (i as NodeId, s))
            .collect();
        for k in 0..=6 {
            assert_eq!(top_k_dense(&dense, k), top_k_sparse(&sparse, k), "k = {k}");
        }
    }

    #[test]
    fn top_k_selection_boundary_is_deterministic() {
        // Four tied scores, k = 2: the two smallest ids must win.
        let scores = [0.4, 0.4, 0.4, 0.4];
        let top = top_k_dense(&scores, 2);
        assert_eq!(top, vec![(0, 0.4), (1, 0.4)]);
    }

    #[test]
    fn ranking_nodes_collects_ids() {
        let ranking = vec![(3, 0.5), (1, 0.2)];
        let set = ranking_nodes(&ranking);
        assert!(set.contains(&3) && set.contains(&1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn total_mass_and_count_above() {
        let scores = [0.5, 0.25, 0.25];
        assert!((total_mass(&scores) - 1.0).abs() < 1e-12);
        assert_eq!(count_above(&scores, 0.3), 1);
        assert_eq!(count_above(&scores, 0.0), 3);
    }

    #[test]
    fn streaming_prune_keeps_boundary_ties() {
        // Thousands of entries tied at the boundary score, with the
        // smallest ids arriving *last*: the streaming prune must not
        // drop boundary ties, so the smallest ids still win.
        let n = 5_000usize;
        let mut scores = vec![0.5f64; n];
        for (i, s) in scores.iter_mut().enumerate().take(10) {
            *s = 1.0 - i as f64 * 0.01; // ten clear winners at ids 0..10
        }
        let top = top_k_dense(&scores, 20);
        assert_eq!(top.len(), 20);
        for (rank, &(node, score)) in top.iter().take(10).enumerate() {
            assert_eq!(node as usize, rank);
            assert!((score - (1.0 - rank as f64 * 0.01)).abs() < 1e-12);
        }
        // The remaining ten slots: tied 0.5 scores, smallest ids 10..20.
        for (rank, &(node, score)) in top.iter().enumerate().skip(10) {
            assert_eq!(node as usize, rank);
            assert_eq!(score, 0.5);
        }
    }

    #[test]
    fn streaming_matches_full_sort_on_adversarial_order() {
        // Descending input means every entry beats the threshold; the
        // buffer must prune repeatedly and still match the exact result.
        let scores: Vec<f64> = (0..3_000).rev().map(|i| i as f64 + 0.5).collect();
        let sparse: Vec<(NodeId, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as NodeId, s))
            .collect();
        let mut exact = sparse.clone();
        exact.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        exact.truncate(100);
        assert_eq!(top_k_sparse(&sparse, 100), exact);
    }

    #[test]
    fn large_input_selection_is_correct() {
        let scores: Vec<f64> = (0..10_000).map(|i| (i % 997) as f64 / 997.0).collect();
        let top = top_k_dense(&scores, 10);
        assert_eq!(top.len(), 10);
        assert!(top
            .windows(2)
            .all(|w| { w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0) }));
        assert!((top[0].1 - 996.0 / 997.0).abs() < 1e-12);
    }
}
