//! Deterministic, seeded fault injection for chaos testing.
//!
//! A *failpoint* is a named seam in the serving stack — cache
//! extraction, ball diffusion, backend dispatch, state-file I/O, frame
//! parsing — where a test can script a fault: a typed error, a panic,
//! or an injected delay. Production code calls [`check`] at the seam;
//! tests call [`configure`] to arm it.
//!
//! Three properties make the resulting chaos runs *debuggable*:
//!
//! 1. **Determinism.** Each point draws from its own
//!    [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream,
//!    seeded from the global seed ([`set_seed`]) mixed with the point's
//!    name. Probabilistic faults therefore replay bit-identically, and
//!    arming one point never perturbs another's sequence.
//! 2. **Exact scheduling.** A spec can `skip` the first N evaluations
//!    and fire for exactly the next `times` — so a test can assert
//!    telemetry counters *equal* the schedule, not just bound it.
//! 3. **Zero production overhead.** Without the `failpoints` cargo
//!    feature every function in this module compiles to an inlined
//!    no-op ([`ACTIVE`] is `false`); the alloc-smoke suite asserts the
//!    hot path stays allocation-free either way.
//!
//! # Example (requires the `failpoints` feature)
//!
//! ```
//! use meloppr_core::failpoint::{self, FaultAction, FaultSpec};
//!
//! failpoint::set_seed(42);
//! // Fail the 3rd and 4th cache extraction, then recover.
//! failpoint::configure(
//!     "cache.extract",
//!     FaultSpec::new(FaultAction::Error).skip(2).times(2),
//! );
//! // ... drive the server, assert typed errors, then:
//! failpoint::clear_all();
//! ```

use std::fmt;
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// [`check`] returns `Err(InjectedFault)`, which converts into the
    /// crate's typed errors (or `io::Error` at I/O seams).
    Error,
    /// [`check`] panics, exercising `catch_unwind` isolation paths.
    Panic,
    /// [`check`] sleeps for the given duration, then succeeds —
    /// for deadline-pressure and slow-peer scenarios.
    Delay(Duration),
}

/// A scripted fault schedule for one named point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The action taken when the point fires.
    pub action: FaultAction,
    /// Evaluations to let through unfaulted before the first fire.
    pub skip: u64,
    /// Maximum number of fires; `None` means every eligible
    /// evaluation fires.
    pub times: Option<u64>,
    /// Probability (in `[0, 1]`) that an eligible evaluation fires,
    /// drawn from the point's deterministic stream. `1.0` (the
    /// default) gives exact schedules.
    pub probability: f64,
}

impl FaultSpec {
    /// A spec that fires `action` on every evaluation.
    #[must_use]
    pub fn new(action: FaultAction) -> FaultSpec {
        FaultSpec {
            action,
            skip: 0,
            times: None,
            probability: 1.0,
        }
    }

    /// Let the first `n` evaluations through unfaulted.
    #[must_use]
    pub fn skip(mut self, n: u64) -> FaultSpec {
        self.skip = n;
        self
    }

    /// Fire at most `n` times, then fall dormant.
    #[must_use]
    pub fn times(mut self, n: u64) -> FaultSpec {
        self.times = Some(n);
        self
    }

    /// Fire each eligible evaluation with probability `p`, drawn from
    /// the point's seeded stream (deterministic across replays).
    #[must_use]
    pub fn probability(mut self, p: f64) -> FaultSpec {
        self.probability = p.clamp(0.0, 1.0);
        self
    }
}

/// The typed error produced when an armed point fires
/// [`FaultAction::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Name of the failpoint that fired.
    pub point: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.point)
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for crate::error::PprError {
    fn from(fault: InjectedFault) -> Self {
        crate::error::PprError::Backend(crate::error::BackendError::Internal {
            reason: fault.to_string(),
        })
    }
}

impl From<InjectedFault> for std::io::Error {
    fn from(fault: InjectedFault) -> Self {
        std::io::Error::other(fault.to_string())
    }
}

impl From<InjectedFault> for String {
    fn from(fault: InjectedFault) -> Self {
        fault.to_string()
    }
}

/// `true` when the `failpoints` cargo feature is compiled in; `false`
/// builds reduce every function here to an inlined no-op.
pub const ACTIVE: bool = cfg!(feature = "failpoints");

#[cfg(feature = "failpoints")]
mod active {
    use super::{FaultAction, FaultSpec, InjectedFault};
    use meloppr_graph::FastHashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// SplitMix64: tiny, seedable, and excellent bit mixing — exactly
    /// what per-point deterministic streams need.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw in `[0, 1)` with 53 bits of precision.
        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    struct PointState {
        spec: FaultSpec,
        hits: u64,
        fired: u64,
        rng: SplitMix64,
    }

    struct Registry {
        seed: u64,
        points: FastHashMap<String, PointState>,
    }

    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    /// Number of armed points — lets `check` bail with one relaxed
    /// atomic load when nothing is configured.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> &'static Mutex<Registry> {
        REGISTRY.get_or_init(|| {
            Mutex::new(Registry {
                seed: 0,
                points: FastHashMap::default(),
            })
        })
    }

    fn lock(m: &Mutex<Registry>) -> std::sync::MutexGuard<'_, Registry> {
        // A panic injected *by* a failpoint can unwind while this lock
        // is not held, but be defensive anyway: the registry's state is
        // plain data, always valid.
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// FNV-1a over the point name: mixed into the global seed so each
    /// point gets an independent stream.
    fn name_hash(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Set the global chaos seed. Points configured afterwards derive
    /// their deterministic streams from `seed ^ fnv(name)`; call this
    /// before [`configure`] for replayable probabilistic schedules.
    pub fn set_seed(seed: u64) {
        lock(registry()).seed = seed;
    }

    /// Arm (or re-arm, resetting counters and the stream) the named
    /// failpoint with `spec`.
    pub fn configure(name: &str, spec: FaultSpec) {
        let mut reg = lock(registry());
        let seed = reg.seed ^ name_hash(name);
        let prev = reg.points.insert(
            name.to_string(),
            PointState {
                spec,
                hits: 0,
                fired: 0,
                rng: SplitMix64(seed),
            },
        );
        if prev.is_none() {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Disarm one failpoint; its counters are forgotten.
    pub fn clear(name: &str) {
        if lock(registry()).points.remove(name).is_some() {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Disarm every failpoint — the chaos-test epilogue.
    pub fn clear_all() {
        let mut reg = lock(registry());
        let n = reg.points.len();
        reg.points.clear();
        ARMED.fetch_sub(n, Ordering::SeqCst);
    }

    /// Evaluations of `name` since it was armed (0 when unarmed).
    pub fn hits(name: &str) -> u64 {
        lock(registry()).points.get(name).map_or(0, |p| p.hits)
    }

    /// Fires of `name` since it was armed (0 when unarmed).
    pub fn fired(name: &str) -> u64 {
        lock(registry()).points.get(name).map_or(0, |p| p.fired)
    }

    /// Evaluate the named failpoint: returns the injected error,
    /// panics, or sleeps per the armed [`FaultSpec`]; passes with one
    /// relaxed atomic load when nothing is armed.
    pub fn check(name: &str) -> Result<(), InjectedFault> {
        if ARMED.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let action = {
            let mut reg = lock(registry());
            let Some(point) = reg.points.get_mut(name) else {
                return Ok(());
            };
            let hit = point.hits;
            point.hits += 1;
            if hit < point.spec.skip {
                return Ok(());
            }
            if let Some(times) = point.spec.times {
                if point.fired >= times {
                    return Ok(());
                }
            }
            if point.spec.probability < 1.0 && point.rng.next_f64() >= point.spec.probability {
                return Ok(());
            }
            point.fired += 1;
            point.spec.action
            // Lock dropped here: a Delay must not serialize other
            // points, and a Panic must not poison the registry.
        };
        match action {
            FaultAction::Error => Err(InjectedFault {
                point: name.to_string(),
            }),
            FaultAction::Panic => panic!("injected panic at failpoint `{name}`"),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use active::{check, clear, clear_all, configure, fired, hits, set_seed};

#[cfg(not(feature = "failpoints"))]
mod inactive {
    use super::{FaultSpec, InjectedFault};

    /// Set the global chaos seed (no-op without the `failpoints`
    /// feature).
    #[inline(always)]
    pub fn set_seed(_seed: u64) {}

    /// Arm a named failpoint (no-op without the `failpoints` feature).
    #[inline(always)]
    pub fn configure(_name: &str, _spec: FaultSpec) {}

    /// Disarm one failpoint (no-op without the `failpoints` feature).
    #[inline(always)]
    pub fn clear(_name: &str) {}

    /// Disarm every failpoint (no-op without the `failpoints`
    /// feature).
    #[inline(always)]
    pub fn clear_all() {}

    /// Evaluations of a point since it was armed (always 0 without the
    /// `failpoints` feature).
    #[inline(always)]
    pub fn hits(_name: &str) -> u64 {
        0
    }

    /// Fires of a point since it was armed (always 0 without the
    /// `failpoints` feature).
    #[inline(always)]
    pub fn fired(_name: &str) -> u64 {
        0
    }

    /// Evaluate a failpoint. Without the `failpoints` feature this is
    /// an unconditional inlined `Ok(())` — zero overhead at the seams.
    #[inline(always)]
    pub fn check(_name: &str) -> Result<(), InjectedFault> {
        Ok(())
    }
}

#[cfg(not(feature = "failpoints"))]
pub use inactive::{check, clear, clear_all, configure, fired, hits, set_seed};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    /// The registry is global; serialize the tests that touch it.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn skip_times_schedule_is_exact() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        clear_all();
        configure(
            "t.skip",
            FaultSpec::new(FaultAction::Error).skip(2).times(2),
        );
        let outcomes: Vec<bool> = (0..6).map(|_| check("t.skip").is_err()).collect();
        assert_eq!(outcomes, [false, false, true, true, false, false]);
        assert_eq!(hits("t.skip"), 6);
        assert_eq!(fired("t.skip"), 2);
        clear_all();
    }

    #[test]
    fn probability_streams_replay_bit_identically() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        clear_all();
        let run = || {
            set_seed(7);
            configure(
                "t.prob",
                FaultSpec::new(FaultAction::Error).probability(0.5),
            );
            let v: Vec<bool> = (0..64).map(|_| check("t.prob").is_err()).collect();
            clear_all();
            v
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 draws fired {fired} times"
        );
        // A different seed gives a different sequence.
        set_seed(8);
        configure(
            "t.prob",
            FaultSpec::new(FaultAction::Error).probability(0.5),
        );
        let c: Vec<bool> = (0..64).map(|_| check("t.prob").is_err()).collect();
        clear_all();
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn unarmed_points_pass_and_faults_convert() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        clear_all();
        assert!(check("t.unarmed").is_ok());
        assert_eq!(hits("t.unarmed"), 0);

        configure("t.conv", FaultSpec::new(FaultAction::Error));
        let fault = check("t.conv").unwrap_err();
        let ppr: crate::error::PprError = fault.clone().into();
        assert!(ppr.to_string().contains("t.conv"));
        let io: std::io::Error = fault.clone().into();
        assert!(io.to_string().contains("t.conv"));
        clear_all();
        // Disarmed again: passes.
        assert!(check("t.conv").is_ok());
    }

    #[test]
    fn injected_panics_unwind_with_the_point_name() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        clear_all();
        configure("t.panic", FaultSpec::new(FaultAction::Panic).times(1));
        let err = std::panic::catch_unwind(|| check("t.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t.panic"), "panic payload was {msg:?}");
        // `times(1)` exhausted: the next evaluation passes.
        assert!(check("t.panic").is_ok());
        clear_all();
    }
}
