//! The multi-stage MeLoPPR engine (§IV, Eq. 8).
//!
//! A query proceeds as a work queue of *diffusion tasks*. Stage one runs
//! `GD(l1)` on the small ball `G_{l1}(s)`; its residual vector `Sʳ_{l1}`
//! nominates next-stage nodes, the most promising of which (per the
//! [`SelectionStrategy`]) spawn stage-two tasks `GD(l2)(e_v)` on their own
//! balls `G_{l2}(v)`, scaled by `α^{l1}·Sʳ_{l1}[v]` (linear decomposition,
//! Eq. 7). With more than two stages the recursion continues. Scores are
//! aggregated in a [`GlobalScoreTable`] — unbounded for the exact CPU
//! implementation, bounded to `c·k` entries when modelling the FPGA's
//! global table (§V-B).
//!
//! # Exactness
//!
//! With [`SelectionStrategy::All`] the engine computes Eq. 8 exactly, so
//! its output equals single-stage `GD(L)` (verified by tests and property
//! tests). With partial selection, the [`ResidualPolicy`] decides what
//! happens to unexpanded residual mass; the default
//! ([`ResidualPolicy::ScaledKeep`]) retains its expected self-retention
//! share, which empirically dominates both keeping and dropping it and
//! matches the paper's high precision at small selection ratios (Fig. 6).

use meloppr_graph::{bfs_ball, GraphView, NodeId, Subgraph};

use crate::cache::CachedBall;
use crate::diffusion::{DiffusionConfig, DiffusionScratch};
use crate::error::Result;
use crate::global_table::GlobalScoreTable;
use crate::memory::{cpu_task_memory_width, meloppr_cpu_peak, meloppr_fpga_peak, CpuTaskMemory};
use crate::params::{MelopprParams, ResidualPolicy};
use crate::quantized::{diffuse_ball, BallRef, CompactBall, PrecisionClass, QuantScratchSet};
use crate::score_vec::Ranking;
use crate::workspace::QueryWorkspace;

/// Default global-table factor used for FPGA memory estimates when the
/// query itself runs with exact (unbounded) aggregation.
const DEFAULT_TABLE_FACTOR: usize = 10;

/// One sub-graph diffusion executed during a query — the replayable trace
/// consumed by latency models and the FPGA host simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionRecord {
    /// Stage index (0-based).
    pub stage: usize,
    /// The node the diffusion started from (parent-graph id).
    pub node: NodeId,
    /// The weight `w` multiplying this diffusion's output (1.0 for stage
    /// one; `α^{l1}·Sʳ[v]`-products afterwards).
    pub weight: f64,
    /// Ball nodes.
    pub ball_nodes: usize,
    /// Ball edges (undirected).
    pub ball_edges: usize,
    /// Adjacency entries scanned by this task's BFS.
    pub bfs_edges_scanned: usize,
    /// Adjacency entries processed by this task's diffusion.
    pub diffusion_edge_updates: usize,
}

/// Aggregated per-stage counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageStats {
    /// Number of diffusions run in this stage.
    pub diffusions: usize,
    /// Total next-stage candidates (non-zero residual entries) produced.
    pub candidates: usize,
    /// Candidates actually expanded into the next stage.
    pub expanded: usize,
    /// BFS work in this stage.
    pub bfs_edges_scanned: usize,
    /// Diffusion work in this stage.
    pub diffusion_edge_updates: usize,
    /// Largest ball (nodes) diffused in this stage.
    pub max_ball_nodes: usize,
    /// Largest ball (edges) diffused in this stage.
    pub max_ball_edges: usize,
}

/// Work, memory and trace accounting of one MeLoPPR query.
#[derive(Debug, Clone, PartialEq)]
pub struct MelopprStats {
    /// Per-stage aggregates (index = stage).
    pub stages: Vec<StageStats>,
    /// Total diffusions across stages.
    pub total_diffusions: usize,
    /// Total BFS work.
    pub bfs_edges_scanned: usize,
    /// Total diffusion work.
    pub diffusion_edge_updates: usize,
    /// Memory of the largest single task (the paper's peak working set).
    pub peak_task_memory: CpuTaskMemory,
    /// Modelled peak CPU bytes: the largest *instantaneous* working set
    /// observed over the query (current task + aggregation table + task
    /// queue at that moment), under the `memory` module's byte model.
    /// This is the number a `max_memory_bytes` budget bounds.
    pub peak_cpu_bytes: usize,
    /// Modelled peak FPGA BRAM bytes (largest ball's tables + global
    /// table).
    pub peak_fpga_bytes: usize,
    /// Entries resident in the aggregation table at the end.
    pub aggregate_entries: usize,
    /// Evictions/rejections in the bounded table (0 when unbounded).
    pub table_evictions: usize,
    /// Whether a `max_memory_bytes` budget forced deterministic
    /// degradation (stage-ball depth shrunk so the working set fits).
    /// `false` means the budget (if any) was met without touching the
    /// schedule — the result is bit-identical to an unbudgeted run.
    pub memory_limited: bool,
    /// The [`PrecisionClass`] this query's diffusions executed at — the
    /// ladder rung after any deadline- or memory-driven degradation
    /// (which the server reports to clients and telemetry).
    pub precision_class: PrecisionClass,
    /// The full diffusion trace, in execution order.
    pub trace: Vec<DiffusionRecord>,
}

/// Result of one MeLoPPR query.
#[derive(Debug, Clone, PartialEq)]
pub struct MelopprOutcome {
    /// The approximated top-`k` ranking `T̂(s, k)` in parent-graph ids.
    pub ranking: Ranking,
    /// Accounting and trace.
    pub stats: MelopprStats,
}

/// The multi-stage MeLoPPR query engine over a borrowed graph.
///
/// # Examples
///
/// ```
/// use meloppr_core::{MelopprEngine, MelopprParams, PprParams, SelectionStrategy};
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let params = MelopprParams::two_stage(
///     PprParams::new(0.85, 4, 5)?,
///     2,
///     2,
///     SelectionStrategy::All,
/// )?;
/// let engine = MelopprEngine::new(&g, params)?;
/// let outcome = engine.query(0)?;
/// assert_eq!(outcome.ranking.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MelopprEngine<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    params: MelopprParams,
}

/// A pending diffusion task: shared between the sequential engine and the
/// parallel executor ([`crate::parallel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TaskSpec {
    pub(crate) node: NodeId,
    pub(crate) weight: f64,
    pub(crate) stage: usize,
}

/// Everything one executed task produces, before aggregation.
#[derive(Debug, Clone)]
pub(crate) struct TaskOutput {
    /// Weighted `(global node, score)` contributions to the global vector.
    pub(crate) contributions: Vec<(NodeId, f64)>,
    /// Next-stage tasks spawned by this one, in selection order.
    pub(crate) children: Vec<TaskSpec>,
    /// Trace record.
    pub(crate) record: DiffusionRecord,
    /// Non-zero residual candidates seen (before selection).
    pub(crate) candidates: usize,
}

/// Executes one diffusion task: ball extraction, diffusion, Eq. 8
/// adjustment, selection. Pure with respect to aggregation state, so
/// callers may run tasks of the same stage concurrently and merge outputs
/// in task order.
pub(crate) fn execute_task<G: GraphView + ?Sized>(
    graph: &G,
    params: &MelopprParams,
    task: &TaskSpec,
    class: PrecisionClass,
) -> Result<TaskOutput> {
    let l = params.stages[task.stage];
    let ball = bfs_ball(graph, task.node, l as u32)?;
    let sub = Subgraph::extract(graph, &ball)?;
    execute_task_on(&sub, ball.edges_scanned, params, task, class)
}

/// The diffusion/selection half of [`execute_task`], operating on an
/// already-extracted sub-graph (possibly served from a
/// [`SubgraphCache`](crate::cache::SubgraphCache), in which case
/// `bfs_edges_scanned` should be 0 — the whole point of caching).
///
/// Allocating wrapper over [`execute_task_on_with`] for callers without a
/// workspace (the parallel executor needs owned per-task outputs anyway).
pub(crate) fn execute_task_on(
    sub: &Subgraph,
    bfs_edges_scanned: usize,
    params: &MelopprParams,
    task: &TaskSpec,
    class: PrecisionClass,
) -> Result<TaskOutput> {
    let mut diffusion = DiffusionScratch::new();
    let mut quant = QuantScratchSet::default();
    let mut candidates = Vec::new();
    let mut contributions = Vec::new();
    let mut children = Vec::new();
    let (record, candidates_count) = execute_task_on_with(
        BallRef::Full(sub),
        bfs_edges_scanned,
        params,
        task,
        params.stages[task.stage],
        class,
        &mut diffusion,
        &mut quant,
        &mut candidates,
        &mut contributions,
        &mut children,
    )?;
    Ok(TaskOutput {
        contributions,
        children,
        record,
        candidates: candidates_count,
    })
}

/// The zero-allocation core of one diffusion task: diffusion into
/// `diffusion` scratch, the Eq. 8 contribution adjustment in place on the
/// accumulated vector, and selection in place on `candidates`.
///
/// On success `contributions` holds the weighted global-id contributions
/// and `children` the spawned next-stage tasks, both overwritten (not
/// appended). Returns the trace record and the pre-selection candidate
/// count. Bit-identical to [`execute_task_on`].
///
/// `len` is the diffusion length to run — `params.stages[task.stage]`
/// for a whole stage task, or the *remaining* length when a
/// budget-segmented continuation piece finishes the stage (the child
/// weights and Eq. 8 adjustment then use `α^len`, which is exactly the
/// uneven-stage-split identity).
#[allow(clippy::too_many_arguments)] // the workspace split keeps borrows disjoint
pub(crate) fn execute_task_on_with(
    ball: BallRef<'_>,
    bfs_edges_scanned: usize,
    params: &MelopprParams,
    task: &TaskSpec,
    len: usize,
    class: PrecisionClass,
    diffusion: &mut DiffusionScratch,
    quant: &mut QuantScratchSet,
    candidates: &mut Vec<(NodeId, f64)>,
    contributions: &mut Vec<(NodeId, f64)>,
    children: &mut Vec<TaskSpec>,
) -> Result<(DiffusionRecord, usize)> {
    let num_stages = params.stages.len();
    let l = len;
    let config = DiffusionConfig::new(params.ppr.alpha, l)?;
    let work = diffuse_ball(
        ball,
        &[(ball.seed_local(), 1.0)],
        config,
        class,
        quant,
        diffusion,
    )?;

    let last_stage = task.stage + 1 == num_stages;
    let alpha_l = params.ppr.alpha.powi(l as i32);

    // Adjusted contribution of this task (Eq. 8): the accumulated scores,
    // minus α^l·residual for every node whose continuation is handled
    // elsewhere (expanded next-stage nodes always; unexpanded ones too
    // under DropUnexpanded). The adjustment happens in place on the
    // scratch's accumulated vector — it is not needed afterwards.
    candidates.clear();
    let mut candidates_count = 0usize;
    if !last_stage {
        let (contribution, residual) = diffusion.accumulated_mut_residual();
        candidates.extend(
            residual
                .iter()
                .enumerate()
                .filter(|&(_, &r)| r > 0.0)
                .map(|(local, &r)| (local as NodeId, r)),
        );
        candidates_count = candidates.len();
        params.selection.select_in_place(candidates);
        let expanded: &[(NodeId, f64)] = candidates;

        match params.residual_policy {
            ResidualPolicy::KeepUnexpanded => {
                for &(local, r) in expanded {
                    contribution[local as usize] =
                        (contribution[local as usize] - alpha_l * r).max(0.0);
                }
            }
            ResidualPolicy::DropUnexpanded => {
                for (local, c) in contribution.iter_mut().enumerate() {
                    let r = residual[local];
                    if r > 0.0 {
                        *c = (*c - alpha_l * r).max(0.0);
                    }
                }
            }
            ResidualPolicy::ScaledKeep => {
                // Unexpanded nodes keep (1 - α)·α^l·r (the expected
                // self-retention of the skipped diffusion); expanded nodes
                // lose their residual entirely as usual.
                for (local, c) in contribution.iter_mut().enumerate() {
                    let r = residual[local];
                    if r > 0.0 {
                        *c = (*c - params.ppr.alpha * alpha_l * r).max(0.0);
                    }
                }
                for &(local, r) in expanded {
                    contribution[local as usize] = (contribution[local as usize]
                        - (1.0 - params.ppr.alpha) * alpha_l * r)
                        .max(0.0);
                }
            }
        }
    }

    contributions.clear();
    contributions.extend(
        diffusion
            .accumulated()
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0.0)
            .map(|(local, &s)| (ball.to_global(local as NodeId), task.weight * s)),
    );

    children.clear();
    children.extend(candidates.iter().map(|&(local, r)| TaskSpec {
        node: ball.to_global(local),
        weight: task.weight * alpha_l * r,
        stage: task.stage + 1,
    }));

    Ok((
        DiffusionRecord {
            stage: task.stage,
            node: task.node,
            weight: task.weight,
            ball_nodes: ball.num_nodes(),
            ball_edges: ball.num_edges(),
            bfs_edges_scanned,
            diffusion_edge_updates: work.edge_updates,
        },
        candidates_count,
    ))
}

/// One piece of a budget-segmented stage ball: a pending continuation
/// carrying the node it resumes from, the accumulated path weight, and
/// how much of the stage's diffusion length it still owes.
///
/// When a hub ball's working set exceeds the memory budget, the staged
/// loop no longer truncates the ball and runs the full stage length on
/// it (a localized approximation). Instead it runs an *exact* length-`d`
/// diffusion on the depth-`d` ball that does fit and hands the remaining
/// `remaining - d` steps off to one continuation piece per
/// positive-residual node — frontier-contiguous segments diffused
/// sequentially through the same workspace and merged in the aggregation
/// table ([`execute_segment_piece`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SegmentPiece {
    pub(crate) node: NodeId,
    pub(crate) weight: f64,
    pub(crate) remaining: u32,
}

/// The budget-segmentation core: runs an **exact** length-`depth`
/// diffusion on a depth-`depth` ball (a length-`d` walk cannot escape a
/// depth-`d` ball, so no residual mass is lost to truncation), then
/// subtracts `α^d·r` from every positive-residual node's contribution
/// and pushes a continuation piece owing the remaining
/// `piece.remaining - depth` steps with weight `piece.weight·α^d·r`.
///
/// This is the linear-decomposition identity (Eq. 7) applied *within* a
/// stage: chaining the pieces reproduces the full-length `GD(remaining)`
/// of the unsegmented ball up to floating-point associativity — the same
/// guarantee `uneven_stage_splits_remain_exact` establishes across stage
/// boundaries. Because **every** positive-residual node hands off (no
/// selection mid-stage), the three [`ResidualPolicy`] variants coincide
/// here; the configured selection and residual policy apply only when a
/// piece finishes the stage (via [`execute_task_on_with`]).
#[allow(clippy::too_many_arguments)] // same workspace split as execute_task_on_with
fn execute_segment_piece(
    ball: BallRef<'_>,
    bfs_edges_scanned: usize,
    params: &MelopprParams,
    piece: &SegmentPiece,
    stage: usize,
    depth: u32,
    class: PrecisionClass,
    diffusion: &mut DiffusionScratch,
    quant: &mut QuantScratchSet,
    contributions: &mut Vec<(NodeId, f64)>,
    segments: &mut Vec<SegmentPiece>,
) -> Result<DiffusionRecord> {
    debug_assert!(depth >= 1 && depth < piece.remaining);
    let config = DiffusionConfig::new(params.ppr.alpha, depth as usize)?;
    let work = diffuse_ball(
        ball,
        &[(ball.seed_local(), 1.0)],
        config,
        class,
        quant,
        diffusion,
    )?;
    let alpha_d = params.ppr.alpha.powi(depth as i32);
    let remaining = piece.remaining - depth;
    let (contribution, residual) = diffusion.accumulated_mut_residual();
    for (local, &r) in residual.iter().enumerate() {
        if r > 0.0 {
            contribution[local] = (contribution[local] - alpha_d * r).max(0.0);
            segments.push(SegmentPiece {
                node: ball.to_global(local as NodeId),
                weight: piece.weight * alpha_d * r,
                remaining,
            });
        }
    }
    contributions.clear();
    contributions.extend(
        diffusion
            .accumulated()
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0.0)
            .map(|(local, &s)| (ball.to_global(local as NodeId), piece.weight * s)),
    );
    Ok(DiffusionRecord {
        stage,
        node: piece.node,
        weight: piece.weight,
        ball_nodes: ball.num_nodes(),
        ball_edges: ball.num_edges(),
        bfs_edges_scanned,
        diffusion_edge_updates: work.edge_updates,
    })
}

/// Mutable accounting shared by the sequential and parallel executors.
///
/// The aggregation table is borrowed (typically from a
/// [`QueryWorkspace`]) so its hash-map storage survives across queries;
/// [`QueryAccumulator::new`] resets it.
#[derive(Debug)]
pub(crate) struct QueryAccumulator<'t> {
    pub(crate) table: &'t mut GlobalScoreTable,
    pub(crate) stages: Vec<StageStats>,
    pub(crate) trace: Vec<DiffusionRecord>,
    /// Set when a `max_memory_bytes` budget forced ball-depth shrinking.
    pub(crate) memory_limited: bool,
    peak_task: CpuTaskMemory,
    peak_ball: (usize, usize),
    /// Largest instantaneous working set observed (task + table + queue
    /// under the byte model) — becomes `MelopprStats::peak_cpu_bytes`.
    peak_working_set: usize,
    table_factor: usize,
    bounded_capacity: Option<usize>,
    k: usize,
    /// The precision class this query executes at (reported in stats).
    class: PrecisionClass,
}

impl<'t> QueryAccumulator<'t> {
    pub(crate) fn new(
        params: &MelopprParams,
        table: &'t mut GlobalScoreTable,
        class: PrecisionClass,
    ) -> Self {
        let k = params.ppr.k;
        table.reset(params.table_factor.map(|c| c * k));
        QueryAccumulator {
            table,
            stages: vec![StageStats::default(); params.stages.len()],
            trace: Vec::new(),
            memory_limited: false,
            peak_task: CpuTaskMemory::default(),
            peak_ball: (0, 0),
            peak_working_set: 0,
            table_factor: params.table_factor.unwrap_or(DEFAULT_TABLE_FACTOR),
            bounded_capacity: params.table_factor.map(|c| c * k),
            k,
            class,
        }
    }

    /// Records the instantaneous working set right after a task's merge:
    /// the task's modelled bytes plus the aggregation table and pending
    /// queue as they stand *now*. The running maximum is the honest
    /// peak — unlike combining the largest-ever task with the final
    /// table size, which mixes maxima from different instants.
    pub(crate) fn observe_working_set(&mut self, rec: &DiffusionRecord, queue_len: usize) {
        let task = cpu_task_memory_width(
            rec.ball_nodes,
            rec.ball_edges,
            self.class.score_width_bytes(),
        );
        let snapshot = meloppr_cpu_peak(task, self.table.len(), queue_len);
        self.peak_working_set = self.peak_working_set.max(snapshot);
    }

    /// Conservative upper bound on the working set a candidate ball
    /// would produce if its task ran now: the ball's task bytes plus the
    /// table and queue each grown by the most entries this task could
    /// add (table: every ball node; queue: the selection's worst-case
    /// spawn count). Used by the budget gate *before* execution; the
    /// post-merge [`QueryAccumulator::observe_working_set`] snapshot is
    /// always ≤ this bound, so enforcing the bound enforces the reported
    /// peak.
    pub(crate) fn working_set_bound(
        &self,
        ball_nodes: usize,
        ball_edges: usize,
        queue_len: usize,
        selection: &crate::selection::SelectionStrategy,
    ) -> usize {
        let task = cpu_task_memory_width(ball_nodes, ball_edges, self.class.score_width_bytes());
        let spawn_bound = selection.upper_bound(ball_nodes);
        let table_bound = match self.bounded_capacity {
            Some(cap) => (self.table.len() + ball_nodes).min(cap),
            None => self.table.len() + ball_nodes,
        };
        meloppr_cpu_peak(task, table_bound, queue_len + spawn_bound)
    }

    /// Merges one task's output (must be called in task order for
    /// bit-for-bit deterministic results).
    pub(crate) fn merge(&mut self, output: &TaskOutput) {
        self.merge_parts(
            &output.contributions,
            output.children.len(),
            output.record,
            output.candidates,
        );
    }

    /// As [`QueryAccumulator::merge`], from borrowed workspace buffers.
    pub(crate) fn merge_parts(
        &mut self,
        contributions: &[(NodeId, f64)],
        children: usize,
        rec: DiffusionRecord,
        candidates: usize,
    ) {
        for &(node, score) in contributions {
            self.table.add(node, score);
        }
        let st = &mut self.stages[rec.stage];
        st.diffusions += 1;
        st.candidates += candidates;
        st.expanded += children;
        st.bfs_edges_scanned += rec.bfs_edges_scanned;
        st.diffusion_edge_updates += rec.diffusion_edge_updates;
        st.max_ball_nodes = st.max_ball_nodes.max(rec.ball_nodes);
        st.max_ball_edges = st.max_ball_edges.max(rec.ball_edges);

        let task_mem = cpu_task_memory_width(
            rec.ball_nodes,
            rec.ball_edges,
            self.class.score_width_bytes(),
        );
        if task_mem.total() > self.peak_task.total() {
            self.peak_task = task_mem;
            self.peak_ball = (rec.ball_nodes, rec.ball_edges);
        }
        self.trace.push(rec);
    }

    pub(crate) fn finish(self, ranking_scratch: &mut Vec<(NodeId, f64)>) -> MelopprOutcome {
        let ranking = self.table.ranking_with(self.k, ranking_scratch);
        let aggregate_entries = self.table.len();
        let stats = MelopprStats {
            total_diffusions: self.trace.len(),
            bfs_edges_scanned: self.stages.iter().map(|s| s.bfs_edges_scanned).sum(),
            diffusion_edge_updates: self.stages.iter().map(|s| s.diffusion_edge_updates).sum(),
            peak_task_memory: self.peak_task,
            peak_cpu_bytes: self.peak_working_set,
            peak_fpga_bytes: meloppr_fpga_peak(
                self.peak_ball.0,
                self.peak_ball.1,
                self.table_factor,
                self.k,
            ),
            aggregate_entries,
            table_evictions: self.table.evictions(),
            memory_limited: self.memory_limited,
            precision_class: self.class,
            stages: self.stages,
            trace: self.trace,
        };
        MelopprOutcome { ranking, stats }
    }
}

impl<'g, G: GraphView + ?Sized> MelopprEngine<'g, G> {
    /// Creates an engine, validating the parameters eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`](crate::PprError::InvalidParams)
    /// if `params` fail validation.
    pub fn new(graph: &'g G, params: MelopprParams) -> Result<Self> {
        params.validate()?;
        Ok(MelopprEngine { graph, params })
    }

    /// The engine's parameters.
    pub fn params(&self) -> &MelopprParams {
        &self.params
    }

    /// Runs one query from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::Graph`](crate::PprError::Graph) if `seed` is out
    /// of bounds.
    pub fn query(&self, seed: NodeId) -> Result<MelopprOutcome> {
        self.query_with(seed, &mut QueryWorkspace::new())
    }

    /// As [`MelopprEngine::query`], borrowing every per-stage buffer —
    /// BFS scratch, sub-graph storage, dense score vectors, the task queue
    /// and the aggregation table — from `ws` instead of allocating.
    ///
    /// One workspace serves the whole query across all of its stages and
    /// is left warm for the next query; results are bit-identical to
    /// [`MelopprEngine::query`].
    ///
    /// # Errors
    ///
    /// As [`MelopprEngine::query`].
    pub fn query_with(&self, seed: NodeId, ws: &mut QueryWorkspace) -> Result<MelopprOutcome> {
        staged_query_impl(
            self.graph,
            &self.params,
            seed,
            PrecisionClass::Exact64,
            BallSource::Fresh,
            None,
            ws,
        )
    }

    /// Cached-extraction reference query, pinned against the backend's
    /// cached mode by the cache integration tests.
    #[cfg(test)]
    pub(crate) fn query_cached_impl(
        &self,
        seed: NodeId,
        cache: &mut crate::cache::SubgraphCache,
    ) -> Result<MelopprOutcome> {
        staged_query_impl(
            self.graph,
            &self.params,
            seed,
            PrecisionClass::Exact64,
            BallSource::Owned(cache),
            None,
            &mut QueryWorkspace::new(),
        )
    }
}

/// A planned memory budget for one staged query: the enforced byte
/// limit plus the profile-predicted starting ball depth per stage (so
/// the loop does not have to materialize over-budget balls just to
/// measure them — it starts from the plan and only shrinks further when
/// a concrete ball still exceeds the bound).
pub(crate) struct MemoryBudget {
    pub(crate) limit: usize,
    /// Starting ball depth per stage, each ≤ the stage length.
    pub(crate) ball_depths: Vec<u32>,
}

/// Where the staged loop gets its sub-graph balls from — the one
/// extraction seam shared by the fresh, owned-cache and shared-cache
/// execution modes (one loop, one budget gate, three ball sources).
pub(crate) enum BallSource<'c> {
    /// Extract every ball fresh through the workspace scratch.
    Fresh,
    /// Serve balls from (and populate) an owned [`SubgraphCache`].
    Owned(&'c mut crate::cache::SubgraphCache),
    /// Serve balls from a [`ConcurrentSubgraphCache`] shared across
    /// workers, attributing every lookup to `consumer`.
    Shared {
        cache: &'c crate::cache::ConcurrentSubgraphCache,
        consumer: &'c crate::cache::CacheConsumer,
    },
}

/// A ball handed to one task: borrowed from the extraction scratch
/// (fresh mode) or shared zero-copy out of a cache — in either resident
/// representation when the cache compacts
/// ([`BallStore::Compact`](crate::cache::BallStore)).
enum Ball<'a> {
    Borrowed(&'a Subgraph),
    Cached(std::sync::Arc<Subgraph>),
    CachedCompact(std::sync::Arc<CompactBall>),
}

impl Ball<'_> {
    fn from_cached(ball: CachedBall) -> Self {
        match ball {
            CachedBall::Full(sub) => Ball::Cached(sub),
            CachedBall::Compact(compact) => Ball::CachedCompact(compact),
        }
    }

    fn as_ref(&self) -> BallRef<'_> {
        match self {
            Ball::Borrowed(sub) => BallRef::Full(sub),
            Ball::Cached(sub) => BallRef::Full(sub),
            Ball::CachedCompact(ball) => BallRef::Compact(ball),
        }
    }

    fn num_nodes(&self) -> usize {
        self.as_ref().num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.as_ref().num_edges()
    }
}

/// The staged query loop over workspace-owned storage: the engine behind
/// [`MelopprEngine::query_with`] and every execution mode of
/// [`backend::Meloppr`](crate::backend::Meloppr) (the ball source is the
/// only difference between fresh, owned-cache and shared-cache serving).
///
/// # Memory-budget enforcement
///
/// With `budget_bytes` set, the modelled working set of every task —
/// [`cpu_task_memory`] on the extracted ball plus the aggregation table,
/// the pending queue and pending segment pieces under the same byte
/// model — is bounded *before* the task runs: a ball whose conservative
/// working-set bound exceeds the budget is re-extracted at a smaller
/// depth (deterministically, one level at a time) until it fits. The
/// shrunken ball is then **segmented**, not truncated: the task runs an
/// exact length-`d` diffusion on the depth-`d` ball and hands the
/// stage's remaining steps off to continuation pieces
/// ([`execute_segment_piece`]), so the budgeted query still serves the
/// full-depth ranking (up to floating-point associativity) instead of a
/// localized approximation, and `memory_limited` stays `false`. Only
/// when even a depth-1 ball exceeds the budget does the loop fall back
/// to the pre-segmentation floor — the remaining length diffused on the
/// depth-0 ball, reported honestly with
/// [`MelopprStats::memory_limited`] set. A query whose budget is never
/// hit is bit-identical to an unbudgeted run, and
/// `MelopprStats::peak_cpu_bytes` never exceeds the budget except at
/// that floor.
///
/// `params` must already be validated.
pub(crate) fn staged_query_impl<G: GraphView + ?Sized>(
    graph: &G,
    params: &MelopprParams,
    seed: NodeId,
    class: PrecisionClass,
    mut source: BallSource<'_>,
    budget: Option<&MemoryBudget>,
    ws: &mut QueryWorkspace,
) -> Result<MelopprOutcome> {
    let QueryWorkspace {
        extract,
        diffusion,
        quant,
        candidates,
        contributions,
        children,
        queue,
        table,
        sparse,
        cold_buf,
        segments,
        ..
    } = ws;
    let mut acc = QueryAccumulator::new(params, table, class);
    queue.clear();
    queue.push_back(TaskSpec {
        node: seed,
        weight: 1.0,
        stage: 0,
    });
    let budgeted = budget.is_some();
    while let Some(task) = queue.pop_front() {
        let stage_depth = params.stages[task.stage] as u32;
        let plan_depth = match budget {
            Some(plan) => plan
                .ball_depths
                .get(task.stage)
                .copied()
                .unwrap_or(stage_depth)
                .min(stage_depth),
            None => stage_depth,
        };
        // The stage task enters as one segment piece owing the whole
        // stage length; pieces that fit whole run as ordinary tasks, so
        // without a budget this loop body executes exactly once with the
        // pre-segmentation semantics.
        segments.clear();
        segments.push(SegmentPiece {
            node: task.node,
            weight: task.weight,
            remaining: stage_depth,
        });
        while let Some(piece) = segments.pop() {
            let mut depth = plan_depth.min(piece.remaining);
            // Set once the depth-0 floor is hit: the remaining length
            // then runs on the depth-0 ball (the pre-segmentation floor
            // semantics) instead of handing off a zero-progress piece.
            let mut floored = false;
            loop {
                // Under a budget, cached lookups are non-admitting
                // *probes*: a depth the gate discards must not make its
                // (over-budget) ball resident — probe balls would be the
                // biggest entries in the cache and would displace hot
                // residents. The depth that actually executes is
                // admitted explicitly below. Resident keys still hit for
                // free either way.
                let (sub, bfs_work): (Ball<'_>, usize) = match &mut source {
                    BallSource::Fresh => {
                        let (sub, work) = extract.extract(graph, piece.node, depth)?;
                        (Ball::Borrowed(sub), work)
                    }
                    BallSource::Owned(cache) => {
                        let (ball, work) = if budgeted {
                            cache.probe_ball_with(graph, piece.node, depth, extract, cold_buf)?
                        } else {
                            cache.get_ball_with(graph, piece.node, depth, extract, cold_buf)?
                        };
                        (Ball::from_cached(ball), work)
                    }
                    BallSource::Shared { cache, consumer } => {
                        let (ball, work) = if budgeted {
                            cache.probe_ball_with_as(
                                graph, piece.node, depth, extract, cold_buf, consumer,
                            )?
                        } else {
                            cache.get_ball_with_as(
                                graph, piece.node, depth, extract, cold_buf, consumer,
                            )?
                        };
                        (Ball::from_cached(ball), work)
                    }
                };
                if let Some(plan) = budget {
                    // A piece that will segment hands off every
                    // positive-residual node, so bound its spawn by the
                    // whole ball, not the configured selection.
                    let spawn_selection = if depth >= piece.remaining {
                        &params.selection
                    } else {
                        &crate::selection::SelectionStrategy::All
                    };
                    let bound = acc.working_set_bound(
                        sub.num_nodes(),
                        sub.num_edges(),
                        queue.len() + segments.len(),
                        spawn_selection,
                    );
                    if bound > plan.limit {
                        if depth > 0 {
                            // Deterministic degradation: shrink the ball
                            // one BFS level and re-extract; the stage's
                            // remaining length is preserved by
                            // segmentation, not lost.
                            depth -= 1;
                            continue;
                        }
                        // Even a depth-0 ball exceeds an unsatisfiable
                        // budget: run the floor anyway.
                        floored = true;
                    }
                }
                if budgeted {
                    match &sub {
                        Ball::Cached(ball) => match &mut source {
                            BallSource::Fresh => {}
                            BallSource::Owned(cache) => {
                                cache.admit_extracted(piece.node, depth, ball)
                            }
                            BallSource::Shared { cache, consumer } => {
                                cache.admit_extracted(piece.node, depth, ball, Some(consumer))
                            }
                        },
                        Ball::CachedCompact(ball) => {
                            let cached = CachedBall::Compact(std::sync::Arc::clone(ball));
                            match &mut source {
                                BallSource::Fresh => {}
                                BallSource::Owned(cache) => {
                                    cache.admit_cached(piece.node, depth, &cached)
                                }
                                BallSource::Shared { cache, consumer } => {
                                    cache.admit_cached(piece.node, depth, &cached, Some(consumer))
                                }
                            }
                        }
                        Ball::Borrowed(_) => {}
                    }
                }
                // Chaos seam: a fault here models the diffusion stage
                // dying mid-query (after extraction, before
                // aggregation).
                crate::failpoint::check("ball.diffuse")?;
                let segmented = depth > 0 && depth < piece.remaining && !floored;
                let (record, candidates_count) = if segmented {
                    let record = execute_segment_piece(
                        sub.as_ref(),
                        bfs_work,
                        params,
                        &piece,
                        task.stage,
                        depth,
                        class,
                        diffusion,
                        quant,
                        contributions,
                        segments,
                    )?;
                    children.clear();
                    (record, 0)
                } else {
                    if depth < piece.remaining {
                        // The ball is shallower than the length it must
                        // diffuse (the floor, or a plan that starts at
                        // depth 0): a localized approximation — the only
                        // degradation segmentation cannot absorb.
                        acc.memory_limited = true;
                    }
                    let task_piece = TaskSpec {
                        node: piece.node,
                        weight: piece.weight,
                        stage: task.stage,
                    };
                    execute_task_on_with(
                        sub.as_ref(),
                        bfs_work,
                        params,
                        &task_piece,
                        piece.remaining as usize,
                        class,
                        diffusion,
                        quant,
                        candidates,
                        contributions,
                        children,
                    )?
                };
                acc.merge_parts(contributions, children.len(), record, candidates_count);
                queue.extend(children.iter().copied());
                acc.observe_working_set(&record, queue.len() + segments.len());
                break;
            }
        }
    }
    Ok(acc.finish(sparse))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_top_k;
    use crate::params::PprParams;
    use crate::precision::precision_at_k;
    use crate::selection::SelectionStrategy;
    use meloppr_graph::generators;

    fn engine_params(
        length: usize,
        stages: Vec<usize>,
        selection: SelectionStrategy,
    ) -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, length, 10).unwrap(),
            stages,
            selection,
            residual_policy: ResidualPolicy::KeepUnexpanded,
            table_factor: None,
        }
    }

    use crate::test_util::assert_ranking_equiv;

    #[test]
    fn full_selection_equals_exact_topk_karate() {
        let g = generators::karate_club();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::All);
        let engine = MelopprEngine::new(&g, params).unwrap();
        for seed in [0u32, 11, 33] {
            let outcome = engine.query(seed).unwrap();
            let exact = exact_top_k(&g, seed, &engine.params().ppr).unwrap();
            assert_ranking_equiv(&outcome.ranking, &exact, 1e-9);
        }
    }

    #[test]
    fn full_selection_scores_match_exact_values() {
        // Stronger than ranking equality: the aggregated scores themselves
        // must reproduce GD(L) (Eq. 8 is an identity).
        let g = generators::grid(7, 7).unwrap();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::All);
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(24).unwrap();
        let exact = crate::ground_truth::exact_ppr(&g, 24, &engine.params().ppr).unwrap();
        for &(v, s) in &outcome.ranking {
            assert!(
                (s - exact.accumulated[v as usize]).abs() < 1e-9,
                "node {v}: {s} vs {}",
                exact.accumulated[v as usize]
            );
        }
    }

    #[test]
    fn three_stages_remain_exact_under_full_selection() {
        let g = generators::karate_club();
        let params = engine_params(6, vec![2, 2, 2], SelectionStrategy::All);
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(0).unwrap();
        let exact = exact_top_k(&g, 0, &engine.params().ppr).unwrap();
        assert_ranking_equiv(&outcome.ranking, &exact, 1e-9);
    }

    #[test]
    fn uneven_stage_splits_remain_exact() {
        let g = generators::grid(6, 6).unwrap();
        for stages in [vec![1, 3], vec![3, 1], vec![1, 1, 2]] {
            let params = engine_params(4, stages.clone(), SelectionStrategy::All);
            let engine = MelopprEngine::new(&g, params).unwrap();
            let outcome = engine.query(14).unwrap();
            let exact = exact_top_k(&g, 14, &engine.params().ppr).unwrap();
            assert_ranking_equiv(&outcome.ranking, &exact, 1e-9);
        }
    }

    #[test]
    fn partial_selection_degrades_gracefully() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 7)
            .unwrap();
        let exact_params = PprParams::new(0.85, 6, 20).unwrap();
        let exact = exact_top_k(&g, 10, &exact_params).unwrap();

        let mut last_precision = -1.0;
        for fraction in [0.01, 0.1, 1.0] {
            let params = MelopprParams {
                ppr: exact_params,
                stages: vec![3, 3],
                selection: SelectionStrategy::TopFraction(fraction),
                residual_policy: ResidualPolicy::KeepUnexpanded,
                table_factor: None,
            };
            let engine = MelopprEngine::new(&g, params).unwrap();
            let outcome = engine.query(10).unwrap();
            let prec = precision_at_k(&outcome.ranking, &exact, 20);
            assert!(
                prec >= last_precision - 0.15,
                "precision collapsed at fraction {fraction}: {prec} < {last_precision}"
            );
            last_precision = prec;
        }
        // Full selection is exact up to floating-point ties at the k-th
        // boundary.
        assert!(
            last_precision >= 0.95,
            "full selection precision {last_precision}"
        );
    }

    #[test]
    fn zero_selection_is_stage_one_only() {
        let g = generators::karate_club();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::TopFraction(0.0));
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(0).unwrap();
        assert_eq!(outcome.stats.total_diffusions, 1);
        assert_eq!(outcome.stats.stages[1].diffusions, 0);
        // Still a valid probability vector over the stage-one ball.
        assert!(!outcome.ranking.is_empty());
    }

    #[test]
    fn stats_trace_is_consistent() {
        let g = generators::karate_club();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::TopCount(3));
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(0).unwrap();
        let s = &outcome.stats;
        assert_eq!(s.total_diffusions, s.trace.len());
        assert_eq!(s.total_diffusions, 1 + 3);
        assert_eq!(s.stages[0].diffusions, 1);
        assert_eq!(s.stages[1].diffusions, 3);
        assert_eq!(s.stages[0].expanded, 3);
        let trace_bfs: usize = s.trace.iter().map(|t| t.bfs_edges_scanned).sum();
        assert_eq!(trace_bfs, s.bfs_edges_scanned);
        assert!(s.peak_cpu_bytes > 0);
        assert!(s.peak_fpga_bytes > 0);
        assert!(s.aggregate_entries > 0);
    }

    #[test]
    fn stage_one_weight_is_unity_and_children_scaled() {
        let g = generators::karate_club();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::TopCount(2));
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(0).unwrap();
        let trace = &outcome.stats.trace;
        assert_eq!(trace[0].weight, 1.0);
        for rec in &trace[1..] {
            assert!(rec.weight > 0.0 && rec.weight < 1.0);
            assert_eq!(rec.stage, 1);
        }
    }

    #[test]
    fn bounded_table_tracks_evictions() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.25, 3)
            .unwrap();
        let mut params = engine_params(6, vec![3, 3], SelectionStrategy::TopFraction(0.3));
        params.table_factor = Some(1); // tiny table: k entries
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(5).unwrap();
        assert!(outcome.stats.table_evictions > 0);
        assert!(outcome.stats.aggregate_entries <= 10);
    }

    #[test]
    fn peak_memory_smaller_than_baseline_on_sparse_graph() {
        // MeLoPPR's whole point: the stage balls are much smaller than the
        // depth-L ball.
        let g = generators::corpus::PaperGraph::G3Pubmed
            .generate_scaled(0.1, 11)
            .unwrap();
        let ppr = PprParams::new(0.85, 6, 20).unwrap();
        let baseline = crate::local_ppr::local_ppr_impl(&g, 50, &ppr).unwrap();
        let params = MelopprParams {
            ppr,
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.02),
            residual_policy: ResidualPolicy::KeepUnexpanded,
            table_factor: Some(10),
        };
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(50).unwrap();
        assert!(
            outcome.stats.peak_task_memory.total() < baseline.stats.memory.total(),
            "{} vs {}",
            outcome.stats.peak_task_memory.total(),
            baseline.stats.memory.total()
        );
    }

    #[test]
    fn residual_drop_policy_loses_mass_but_runs() {
        let g = generators::karate_club();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::TopCount(1))
            .with_residual_policy(ResidualPolicy::DropUnexpanded);
        let engine = MelopprEngine::new(&g, params).unwrap();
        let outcome = engine.query(0).unwrap();
        assert!(!outcome.ranking.is_empty());
    }

    #[test]
    fn invalid_params_rejected_at_construction() {
        let g = generators::path(4).unwrap();
        let params = engine_params(4, vec![1, 2], SelectionStrategy::All);
        assert!(MelopprEngine::new(&g, params).is_err());
    }

    #[test]
    fn out_of_bounds_seed_rejected() {
        let g = generators::path(4).unwrap();
        let params = engine_params(4, vec![2, 2], SelectionStrategy::All);
        let engine = MelopprEngine::new(&g, params).unwrap();
        assert!(engine.query(77).is_err());
    }
}
