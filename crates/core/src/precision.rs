//! The paper's precision metric `Prec(s, k)` (§II, Measurement).
//!
//! `Prec(s, k) = |{v : v ∈ T̂(s, k) ∧ v ∈ T(s, k)}| / k` — the fraction of
//! the exact top-`k` set recovered by the approximation. One refinement for
//! robustness on tiny graphs: when the exact ranking has fewer than `k`
//! positive-score nodes, the denominator is the achievable maximum
//! `min(k, |T|)` instead of `k`, so a perfect answer always scores 1.0.
//! On the paper's workloads (`k = 200`, balls of thousands of nodes) the
//! two definitions coincide.

use crate::score_vec::Ranking;

/// Precision of `approx` against the exact ranking, both truncated to
/// their first `k` entries.
///
/// Returns a value in `[0, 1]`; an empty exact ranking yields 1.0 for an
/// empty approximation and 0.0 otherwise.
///
/// # Examples
///
/// ```
/// use meloppr_core::precision::precision_at_k;
///
/// let exact = vec![(1, 0.5), (2, 0.3), (3, 0.2)];
/// let approx = vec![(1, 0.5), (3, 0.25), (9, 0.1)];
/// assert!((precision_at_k(&approx, &exact, 3) - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn precision_at_k(approx: &Ranking, exact: &Ranking, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let denom = k.min(exact.len());
    if denom == 0 {
        return if approx.is_empty() { 1.0 } else { 0.0 };
    }
    let truth: meloppr_graph::FastHashSet<_> = exact.iter().take(k).map(|&(v, _)| v).collect();
    let hits = approx
        .iter()
        .take(k)
        .filter(|&&(v, _)| truth.contains(&v))
        .count();
    hits as f64 / denom as f64
}

/// Mean of a slice of precision values (ensemble averaging used by
/// Fig. 6/7). Returns `None` for an empty slice.
pub fn mean_precision(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_one() {
        let exact = vec![(1, 0.5), (2, 0.3)];
        assert_eq!(precision_at_k(&exact.clone(), &exact, 2), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        let exact = vec![(1, 0.5), (2, 0.3)];
        let approx = vec![(8, 0.5), (9, 0.3)];
        assert_eq!(precision_at_k(&approx, &exact, 2), 0.0);
    }

    #[test]
    fn order_within_top_k_does_not_matter() {
        let exact = vec![(1, 0.5), (2, 0.3)];
        let approx = vec![(2, 0.9), (1, 0.1)];
        assert_eq!(precision_at_k(&approx, &exact, 2), 1.0);
    }

    #[test]
    fn only_first_k_entries_count() {
        let exact = vec![(1, 0.5), (2, 0.3), (3, 0.2)];
        let approx = vec![(9, 1.0), (1, 0.5), (2, 0.4)];
        // k = 2: truth {1, 2}, approx {9, 1} -> 1 hit / 2.
        assert_eq!(precision_at_k(&approx, &exact, 2), 0.5);
    }

    #[test]
    fn short_exact_ranking_uses_achievable_denominator() {
        let exact = vec![(1, 0.5)];
        let approx = vec![(1, 0.5), (2, 0.4), (3, 0.3)];
        assert_eq!(precision_at_k(&approx, &exact, 3), 1.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(precision_at_k(&vec![], &vec![], 5), 1.0);
        assert_eq!(precision_at_k(&vec![(1, 0.1)], &vec![], 5), 0.0);
        assert_eq!(precision_at_k(&vec![], &vec![(1, 0.1)], 5), 0.0);
        assert_eq!(precision_at_k(&vec![(1, 0.1)], &vec![(1, 0.1)], 0), 1.0);
    }

    #[test]
    fn mean_precision_averages() {
        assert_eq!(mean_precision(&[]), None);
        assert_eq!(mean_precision(&[0.5, 1.0]), Some(0.75));
    }
}
