//! Error types for the MeLoPPR core.

use std::error::Error;
use std::fmt;

use meloppr_graph::GraphError;

/// Errors produced by PPR computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PprError {
    /// A graph-substrate operation failed (bad seed node, malformed graph).
    Graph(GraphError),
    /// Parameters failed validation (α outside (0,1), empty stage list,
    /// stage lengths not summing to the diffusion length, …).
    InvalidParams {
        /// Why the parameters were rejected.
        reason: String,
    },
}

impl fmt::Display for PprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PprError::Graph(e) => write!(f, "graph error: {e}"),
            PprError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
        }
    }
}

impl Error for PprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PprError::Graph(e) => Some(e),
            PprError::InvalidParams { .. } => None,
        }
    }
}

impl From<GraphError> for PprError {
    fn from(err: GraphError) -> Self {
        PprError::Graph(err)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PprError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_graph_error() {
        let err = PprError::from(GraphError::EmptyGraph);
        assert!(err.to_string().contains("graph error"));
    }

    #[test]
    fn source_chains() {
        let err = PprError::from(GraphError::EmptyGraph);
        assert!(err.source().is_some());
        let err = PprError::InvalidParams {
            reason: "x".into(),
        };
        assert!(err.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<PprError>();
    }
}
