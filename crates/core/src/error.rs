//! Error types for the MeLoPPR core.

use std::error::Error;
use std::fmt;

use meloppr_graph::GraphError;

/// Errors produced by PPR computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PprError {
    /// A graph-substrate operation failed (bad seed node, malformed graph).
    Graph(GraphError),
    /// Parameters failed validation (α outside (0,1), empty stage list,
    /// stage lengths not summing to the diffusion length, …).
    InvalidParams {
        /// Why the parameters were rejected.
        reason: String,
    },
    /// A unified-API backend refused or failed a query (see
    /// [`BackendError`]).
    Backend(BackendError),
}

/// The backend-taxonomy half of [`PprError`]: failures specific to the
/// unified [`backend`](crate::backend) query API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendError {
    /// The backend cannot serve this request under its configuration
    /// (e.g. an override it cannot honour).
    Unsupported {
        /// Which backend refused.
        backend: &'static str,
        /// Why the request was refused.
        reason: String,
    },
    /// The router found no backend to serve a request.
    NoBackendAvailable {
        /// Why routing failed.
        reason: String,
    },
    /// An accelerator-simulator failure surfaced through the unified API
    /// (capacity overflows, fixed-point range errors, bad configuration).
    Accelerator {
        /// The underlying accelerator error, rendered.
        reason: String,
    },
    /// An internal failure the client cannot act on: an isolated worker
    /// panic, an injected fault
    /// ([`failpoint`](crate::failpoint)), or a broken invariant caught
    /// and contained by the serving stack.
    Internal {
        /// What failed, rendered for logs; the wire protocol reports
        /// only a generic internal error to clients.
        reason: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported { backend, reason } => {
                write!(f, "backend {backend} cannot serve this request: {reason}")
            }
            BackendError::NoBackendAvailable { reason } => {
                write!(f, "no backend available: {reason}")
            }
            BackendError::Accelerator { reason } => {
                write!(f, "accelerator error: {reason}")
            }
            BackendError::Internal { reason } => {
                write!(f, "internal error: {reason}")
            }
        }
    }
}

impl Error for BackendError {}

impl fmt::Display for PprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PprError::Graph(e) => write!(f, "graph error: {e}"),
            PprError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            PprError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl Error for PprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PprError::Graph(e) => Some(e),
            PprError::InvalidParams { .. } => None,
            PprError::Backend(e) => Some(e),
        }
    }
}

impl From<GraphError> for PprError {
    fn from(err: GraphError) -> Self {
        PprError::Graph(err)
    }
}

impl From<BackendError> for PprError {
    fn from(err: BackendError) -> Self {
        PprError::Backend(err)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PprError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_graph_error() {
        let err = PprError::from(GraphError::EmptyGraph);
        assert!(err.to_string().contains("graph error"));
    }

    #[test]
    fn source_chains() {
        let err = PprError::from(GraphError::EmptyGraph);
        assert!(err.source().is_some());
        let err = PprError::InvalidParams { reason: "x".into() };
        assert!(err.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<PprError>();
        assert_send_sync::<BackendError>();
    }

    #[test]
    fn backend_errors_fold_into_ppr_error() {
        let err = PprError::from(BackendError::NoBackendAvailable {
            reason: "empty router".into(),
        });
        assert!(err.to_string().contains("backend error"));
        assert!(err.to_string().contains("empty router"));
        assert!(err.source().is_some());
        let err = BackendError::Unsupported {
            backend: "monte-carlo",
            reason: "length override".into(),
        };
        assert!(err.to_string().contains("monte-carlo"));
        let err = BackendError::Accelerator {
            reason: "capacity".into(),
        };
        assert!(err.to_string().contains("accelerator"));
    }
}
