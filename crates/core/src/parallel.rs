//! Parallel MeLoPPR queries — the paper's stated future work.
//!
//! §VI-C closes with: *"Through linear decomposition, MeLoPPR allows
//! multiple next-stage nodes to be computed in parallel, which can further
//! reduce the overall latency. We leave this for future experiments."*
//! This module implements it: within each stage, the independent sub-graph
//! diffusions (they share no mutable state — linear decomposition makes
//! them additive) run on a pool of scoped threads; outputs are merged in
//! task order, so the result is **bit-for-bit identical** to the
//! sequential engine regardless of thread count (asserted by tests).

use meloppr_graph::{GraphView, NodeId};

use crate::error::{PprError, Result};
use crate::global_table::GlobalScoreTable;
use crate::meloppr::{execute_task, MelopprOutcome, QueryAccumulator, TaskSpec};
use crate::params::MelopprParams;
use crate::quantized::PrecisionClass;

/// Stage-parallel query, used by the
/// [`backend::Meloppr`](crate::backend::Meloppr) backend's threaded mode.
pub(crate) fn parallel_query_impl<G>(
    graph: &G,
    params: &MelopprParams,
    seed: NodeId,
    class: PrecisionClass,
    threads: usize,
) -> Result<MelopprOutcome>
where
    G: GraphView + Sync + ?Sized,
{
    params.validate()?;
    if threads == 0 {
        return Err(PprError::InvalidParams {
            reason: "thread count must be >= 1".into(),
        });
    }

    let mut table = GlobalScoreTable::unbounded();
    let mut acc = QueryAccumulator::new(params, &mut table, class);
    let mut frontier: Vec<TaskSpec> = vec![TaskSpec {
        node: seed,
        weight: 1.0,
        stage: 0,
    }];

    while !frontier.is_empty() {
        let outputs = run_stage(graph, params, &frontier, class, threads)?;
        let mut next = Vec::new();
        for (i, output) in outputs.iter().enumerate() {
            acc.merge(output);
            next.extend(output.children.iter().copied());
            // Mirror the sequential FIFO's queue depth at this point —
            // remaining same-stage tasks plus children spawned so far —
            // so the working-set snapshots (and thus `peak_cpu_bytes`)
            // stay bit-identical to the sequential engine.
            let remaining = outputs.len() - 1 - i;
            acc.observe_working_set(&output.record, remaining + next.len());
        }
        frontier = next;
    }
    Ok(acc.finish(&mut Vec::new()))
}

/// Executes all tasks of one stage, preserving task order in the output.
///
/// Work is distributed by an atomic task index (work stealing) because
/// ball sizes — and therefore task costs — are heavily skewed; a static
/// block partition would serialize on whichever chunk holds the hubs.
fn run_stage<G>(
    graph: &G,
    params: &MelopprParams,
    tasks: &[TaskSpec],
    class: PrecisionClass,
    threads: usize,
) -> Result<Vec<crate::meloppr::TaskOutput>>
where
    G: GraphView + Sync + ?Sized,
{
    let workers = threads.min(tasks.len()).max(1);
    if workers == 1 {
        return tasks
            .iter()
            .map(|t| execute_task(graph, params, t, class))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Result<Vec<(usize, crate::meloppr::TaskOutput)>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= tasks.len() {
                                break;
                            }
                            mine.push((i, execute_task(graph, params, &tasks[i], class)?));
                        }
                        Ok(mine)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stage worker panicked"))
                .collect()
        });

    let mut indexed = Vec::with_capacity(tasks.len());
    for r in results {
        indexed.extend(r?);
    }
    indexed.sort_unstable_by_key(|&(i, _)| i);
    Ok(indexed.into_iter().map(|(_, out)| out).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meloppr::MelopprEngine;
    use crate::params::PprParams;
    use crate::selection::SelectionStrategy;
    use meloppr_graph::generators;

    fn params() -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, 6, 20).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.2),
            ..MelopprParams::paper_defaults()
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 5)
            .unwrap();
        let p = params();
        let engine = MelopprEngine::new(&g, p.clone()).unwrap();
        let sequential = engine.query(7).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel =
                parallel_query_impl(&g, &p, 7, PrecisionClass::Exact64, threads).unwrap();
            assert_eq!(parallel.ranking, sequential.ranking, "threads = {threads}");
            assert_eq!(parallel.stats.trace, sequential.stats.trace);
            assert_eq!(
                parallel.stats.aggregate_entries,
                sequential.stats.aggregate_entries
            );
        }
    }

    #[test]
    fn parallel_with_bounded_table_stays_deterministic() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 6)
            .unwrap();
        let p = params().with_table_factor(2);
        let a = parallel_query_impl(&g, &p, 3, PrecisionClass::Exact64, 1).unwrap();
        let b = parallel_query_impl(&g, &p, 3, PrecisionClass::Exact64, 5).unwrap();
        assert_eq!(a.ranking, b.ranking);
        assert_eq!(a.stats.table_evictions, b.stats.table_evictions);
    }

    #[test]
    fn zero_threads_rejected() {
        let g = generators::path(4).unwrap();
        assert!(parallel_query_impl(&g, &params(), 0, PrecisionClass::Exact64, 0).is_err());
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let g = generators::karate_club();
        let mut p = params();
        p.ppr.k = 5;
        let outcome = parallel_query_impl(&g, &p, 0, PrecisionClass::Exact64, 64).unwrap();
        assert_eq!(outcome.ranking.len(), 5);
    }
}
