//! On-disk persistence for router self-calibration and cache-consumer
//! hit-rate windows.
//!
//! A long-lived serving process learns two things worth keeping across
//! restarts:
//!
//! * the [`Router`]'s per-backend latency correction EWMAs
//!   ([`CalibrationEntry`]) — without them every restart re-trusts the
//!   analytic latency models until enough traffic re-converges them;
//! * each cached backend's [`CacheConsumer`](crate::cache::CacheConsumer)
//!   sliding window ([`ConsumerState`]) — the staged backend's
//!   `estimate()` discounts BFS by the windowed hit rate, so a cold
//!   window makes the router pessimistic about warmed caches for a full
//!   window after every restart.
//!
//! Both are captured into one [`PersistedState`] and written as a small
//! **versioned, line-oriented text file** (`meloppr-state v1`). Entries
//! are keyed by [`BackendKind`], not registration index, so state
//! survives reordering or adding unrelated backends. Corrupt, truncated
//! or version-mismatched files are **ignored with a warning** — stale
//! state must never keep a server from booting ([`load_state`] returns
//! `Ok(false)`; only real I/O failures are errors).
//!
//! The `meloppr-serve` binary and `meloppr-cli --calibration-file` load
//! this file at startup and save it on shutdown.
//!
//! # File format (v1)
//!
//! ```text
//! meloppr-state v1
//! calibration meloppr ratio 1.82 samples 41 degraded 3
//! consumer meloppr hits 812 shared 77 misses 131 extractions 131 rejected 4 ewma 0.87 window hhmhh...
//! ```
//!
//! `window` is the sliding window's outcomes oldest-first, one char per
//! lookup (`h` = served without BFS, `m` = paid for the extraction, `-`
//! for an empty window); `ewma -` means no lookup was ever recorded.
//!
//! The final line is an integrity footer over every byte before it:
//!
//! ```text
//! footer crc32 9ae16a3b len 142
//! ```
//!
//! A missing footer, a length mismatch (truncation) or a CRC mismatch
//! (bit rot, torn write) all decode to an error — which [`load_state`]
//! downgrades to a warning and a cold boot, like any other corruption.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use super::{BackendKind, CalibrationEntry, Router};
use crate::cache::{ConsumerState, ConsumerStats};

/// First line of every state file; the version suffix gates decoding.
const HEADER: &str = "meloppr-state v1";

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial), bit-at-a-time — the state
/// file is a few hundred bytes at shutdown and startup, so a lookup
/// table would be pure bloat. The ball index (`meloppr_core::ballindex`)
/// reuses this function for its own integrity footer; its builder
/// streams megabytes through it once, offline, where bit-at-a-time is
/// still fine.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// Incremental CRC-32 step: feed chunks through with an initial state of
/// `0xFFFF_FFFF` and complement the final state — equivalent to one
/// [`crc32`] call over the concatenated bytes. The ball-index loader
/// verifies multi-megabyte files in fixed-size chunks this way.
pub(crate) fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc
}

/// Everything [`save_state`] persists: calibration entries plus each
/// cached backend's consumer state, both keyed by [`BackendKind`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PersistedState {
    /// Per-backend latency calibration, in registration order.
    pub calibration: Vec<CalibrationEntry>,
    /// Cache-consumer state of every backend exposing a consumer handle.
    pub consumers: Vec<(BackendKind, ConsumerState)>,
}

impl PersistedState {
    /// Captures the router's current calibration plus every registered
    /// backend's cache-consumer state. Call once traffic has quiesced
    /// (shutdown) — consumer snapshots are relaxed-atomic reads.
    pub fn capture(router: &Router<'_>) -> Self {
        let mut consumers = Vec::new();
        for backend in router.backends() {
            if let Some(consumer) = backend.cache_consumer() {
                consumers.push((backend.capabilities().kind, consumer.export_state()));
            }
        }
        PersistedState {
            calibration: router.calibration_entries(),
            consumers,
        }
    }

    /// Re-applies this state to a (freshly built) router: calibration
    /// entries via [`Router::restore_calibration`], consumer states into
    /// the first not-yet-restored backend of each entry's kind. Entries
    /// for kinds the router does not register are skipped. Returns
    /// `(calibration entries applied, consumer windows applied)`.
    pub fn apply(&self, router: &Router<'_>) -> (usize, usize) {
        let applied = router.restore_calibration(&self.calibration);
        let mut used = vec![false; self.consumers.len()];
        let mut windows = 0;
        for backend in router.backends() {
            let Some(consumer) = backend.cache_consumer() else {
                continue;
            };
            let kind = backend.capabilities().kind;
            let next = self
                .consumers
                .iter()
                .enumerate()
                .find(|(i, (k, _))| *k == kind && !used[*i])
                .map(|(i, _)| i);
            if let Some(i) = next {
                consumer.restore_state(&self.consumers[i].1);
                used[i] = true;
                windows += 1;
            }
        }
        (applied, windows)
    }

    /// Renders the versioned text encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for entry in &self.calibration {
            let _ = writeln!(
                out,
                "calibration {} ratio {} samples {} degraded {}",
                entry.kind, entry.ratio, entry.samples, entry.degraded
            );
        }
        for (kind, state) in &self.consumers {
            let window: String = if state.window.is_empty() {
                "-".into()
            } else {
                state
                    .window
                    .iter()
                    .map(|&free| if free { 'h' } else { 'm' })
                    .collect()
            };
            let ewma = state
                .ewma
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "consumer {kind} hits {} shared {} misses {} extractions {} rejected {} \
                 ewma {ewma} window {window}",
                state.stats.hits,
                state.stats.shared,
                state.stats.misses,
                state.stats.extractions,
                state.stats.rejected_admissions,
            );
        }
        let _ = writeln!(
            out,
            "footer crc32 {:08x} len {}",
            crc32(out.as_bytes()),
            out.len()
        );
        out
    }

    /// Parses the text encoding, rejecting unknown versions and any
    /// malformed record with a human-readable reason (the caller decides
    /// whether that is a warning or an error).
    pub fn decode(text: &str) -> Result<Self, String> {
        // Header before footer: a version mismatch should say so, not
        // "bad crc" (other versions may hash differently).
        match text.lines().next().map(str::trim) {
            Some(HEADER) => {}
            Some(other) => return Err(format!("unsupported header {other:?} (want {HEADER:?})")),
            None => return Err("empty file".into()),
        }
        let body = verify_footer(text)?;
        let mut lines = body.lines();
        lines.next(); // the header, checked above
        let mut state = PersistedState::default();
        for (number, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let context = |what: &str| format!("line {}: {what}", number + 2);
            match tokens.next() {
                Some("calibration") => {
                    let kind = parse_kind(&mut tokens).map_err(|e| context(&e))?;
                    state.calibration.push(CalibrationEntry {
                        kind,
                        ratio: parse_field(&mut tokens, "ratio").map_err(|e| context(&e))?,
                        samples: parse_field(&mut tokens, "samples").map_err(|e| context(&e))?,
                        degraded: parse_field(&mut tokens, "degraded").map_err(|e| context(&e))?,
                    });
                }
                Some("consumer") => {
                    let kind = parse_kind(&mut tokens).map_err(|e| context(&e))?;
                    let stats = ConsumerStats {
                        hits: parse_field(&mut tokens, "hits").map_err(|e| context(&e))?,
                        shared: parse_field(&mut tokens, "shared").map_err(|e| context(&e))?,
                        misses: parse_field(&mut tokens, "misses").map_err(|e| context(&e))?,
                        extractions: parse_field(&mut tokens, "extractions")
                            .map_err(|e| context(&e))?,
                        rejected_admissions: parse_field(&mut tokens, "rejected")
                            .map_err(|e| context(&e))?,
                        // Cold-tier counters are not persisted (the v1
                        // format predates the disk tier); they restart
                        // at zero on every boot.
                        ..Default::default()
                    };
                    let ewma = parse_optional_f64(&mut tokens, "ewma").map_err(|e| context(&e))?;
                    let window = parse_window(&mut tokens).map_err(|e| context(&e))?;
                    state.consumers.push((
                        kind,
                        ConsumerState {
                            stats,
                            ewma,
                            window,
                        },
                    ));
                }
                Some(other) => return Err(context(&format!("unknown record {other:?}"))),
                None => unreachable!("blank lines are skipped"),
            }
        }
        Ok(state)
    }
}

/// Checks the trailing `footer crc32 <hex> len <bytes>` line against
/// every byte before it and returns that body slice (header included).
/// Any discrepancy — no footer at all, bytes missing relative to the
/// recorded length, or a checksum mismatch — is reported as the
/// corruption it implies.
fn verify_footer(text: &str) -> Result<&str, String> {
    let Some(start) = text.rfind("\nfooter ").map(|i| i + 1) else {
        return Err("missing integrity footer (file truncated?)".into());
    };
    let body = &text[..start];
    let mut trailing = text[start..].lines();
    let footer = trailing.next().unwrap_or_default();
    if trailing.any(|line| !line.trim().is_empty()) {
        return Err("unexpected content after the integrity footer".into());
    }
    let mut tokens = footer.split_whitespace().skip(1); // "footer"
    let expected_crc = match (tokens.next(), tokens.next()) {
        (Some("crc32"), Some(value)) => u32::from_str_radix(value, 16)
            .map_err(|e| format!("bad footer crc32 {value:?}: {e}"))?,
        other => {
            return Err(format!(
                "malformed footer: want \"crc32 <hex>\", found {other:?}"
            ))
        }
    };
    let expected_len = match (tokens.next(), tokens.next()) {
        (Some("len"), Some(value)) => value
            .parse::<usize>()
            .map_err(|e| format!("bad footer len {value:?}: {e}"))?,
        other => {
            return Err(format!(
                "malformed footer: want \"len <bytes>\", found {other:?}"
            ))
        }
    };
    if expected_len != body.len() {
        return Err(format!(
            "state file truncated: footer recorded {expected_len} bytes, found {}",
            body.len()
        ));
    }
    let actual = crc32(body.as_bytes());
    if actual != expected_crc {
        return Err(format!(
            "crc32 mismatch: footer recorded {expected_crc:08x}, content hashes to {actual:08x}"
        ));
    }
    Ok(body)
}

fn parse_kind<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<BackendKind, String> {
    tokens
        .next()
        .ok_or_else(|| "missing backend kind".to_string())?
        .parse()
}

fn parse_field<'a, T: std::str::FromStr>(
    tokens: &mut impl Iterator<Item = &'a str>,
    name: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match tokens.next() {
        Some(key) if key == name => {}
        other => return Err(format!("expected key {name:?}, found {other:?}")),
    }
    let value = tokens
        .next()
        .ok_or_else(|| format!("{name} is missing its value"))?;
    value
        .parse()
        .map_err(|e| format!("bad {name} {value:?}: {e}"))
}

fn parse_optional_f64<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    name: &str,
) -> Result<Option<f64>, String> {
    match tokens.next() {
        Some(key) if key == name => {}
        other => return Err(format!("expected key {name:?}, found {other:?}")),
    }
    match tokens.next() {
        Some("-") => Ok(None),
        Some(value) => {
            let parsed: f64 = value
                .parse()
                .map_err(|e| format!("bad {name} {value:?}: {e}"))?;
            if !parsed.is_finite() {
                return Err(format!("non-finite {name} {value:?}"));
            }
            Ok(Some(parsed))
        }
        None => Err(format!("{name} is missing its value")),
    }
}

fn parse_window<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Vec<bool>, String> {
    match tokens.next() {
        Some("window") => {}
        other => return Err(format!("expected key \"window\", found {other:?}")),
    }
    match tokens.next() {
        Some("-") => Ok(Vec::new()),
        Some(chars) => chars
            .chars()
            .map(|c| match c {
                'h' => Ok(true),
                'm' => Ok(false),
                other => Err(format!("bad window outcome {other:?} (want h/m)")),
            })
            .collect(),
        None => Err("window is missing its value".into()),
    }
}

/// Captures the router's state and writes it to `path` (via a sibling
/// temp file + rename, so a crash mid-write never leaves a truncated
/// state file to be mistaken for real history).
///
/// # Errors
///
/// Any filesystem error (permissions, missing parent directory, …).
pub fn save_state(router: &Router<'_>, path: &Path) -> io::Result<()> {
    crate::failpoint::check("persist.io")?;
    let encoded = PersistedState::capture(router).encode();
    // Pid-suffixed temp name: two processes sharing one state file (CLI
    // alongside a daemon) each stage in their own sibling, so neither
    // can rename the other's half-written temp into place — last full
    // rename wins.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = std::fs::write(&tmp, encoded).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Loads `path` and applies it to `router`. Returns `Ok(true)` when
/// state was applied; a **missing** file (first boot) returns
/// `Ok(false)` silently, and a corrupt or version-mismatched file
/// returns `Ok(false)` after printing a warning to stderr — stale state
/// never panics or blocks startup.
///
/// # Errors
///
/// Only real I/O failures while reading an existing file.
pub fn load_state(router: &Router<'_>, path: &Path) -> io::Result<bool> {
    crate::failpoint::check("persist.io")?;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // Binary garbage where text should be is a corrupt file, not
            // an I/O failure: warn and boot cold like any other decode
            // error.
            eprintln!(
                "warning: ignoring calibration state {}: {e}",
                path.display()
            );
            return Ok(false);
        }
        Err(e) => return Err(e),
    };
    match PersistedState::decode(&text) {
        Ok(state) => {
            state.apply(router);
            Ok(true)
        }
        Err(reason) => {
            eprintln!(
                "warning: ignoring calibration state {}: {reason}",
                path.display()
            );
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> PersistedState {
        PersistedState {
            calibration: vec![
                CalibrationEntry {
                    kind: BackendKind::LocalPpr,
                    ratio: 1.8125,
                    samples: 12,
                    degraded: 0,
                },
                CalibrationEntry {
                    kind: BackendKind::Meloppr,
                    ratio: 0.25,
                    samples: 7,
                    degraded: 3,
                },
            ],
            consumers: vec![(
                BackendKind::Meloppr,
                ConsumerState {
                    stats: ConsumerStats {
                        hits: 10,
                        shared: 2,
                        misses: 4,
                        extractions: 4,
                        rejected_admissions: 1,
                        ..Default::default()
                    },
                    ewma: Some(0.75),
                    window: vec![true, false, true, true],
                },
            )],
        }
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let state = sample_state();
        let text = state.encode();
        assert!(text.starts_with(HEADER));
        assert_eq!(PersistedState::decode(&text).unwrap(), state);

        // Empty windows and unset EWMAs render as '-' and roundtrip too.
        let mut bare = sample_state();
        bare.consumers[0].1.ewma = None;
        bare.consumers[0].1.window.clear();
        assert_eq!(PersistedState::decode(&bare.encode()).unwrap(), bare);
    }

    /// Appends a valid integrity footer, so record-level corruption
    /// tests exercise the record parser rather than the checksum.
    fn with_footer(body: &str) -> String {
        format!(
            "{body}footer crc32 {:08x} len {}\n",
            crc32(body.as_bytes()),
            body.len()
        )
    }

    #[test]
    fn decode_rejects_corruption_with_reasons() {
        for (text, needle) in [
            ("".into(), "empty"),
            ("meloppr-state v999\n".into(), "unsupported header"),
            ("meloppr-state v1\n".into(), "missing integrity footer"),
            (with_footer("meloppr-state v1\nfrobnicate all the things\n"), "unknown record"),
            (with_footer("meloppr-state v1\ncalibration nonsense ratio 1 samples 1 degraded 0\n"), "unknown backend kind"),
            (with_footer("meloppr-state v1\ncalibration meloppr ratio abc samples 1 degraded 0\n"), "bad ratio"),
            (with_footer("meloppr-state v1\ncalibration meloppr ratio 1.0 samples 1\n"), "degraded"),
            (with_footer("meloppr-state v1\nconsumer meloppr hits 1 shared 0 misses 0 extractions 0 rejected 0 ewma inf window h\n"), "non-finite"),
            (with_footer("meloppr-state v1\nconsumer meloppr hits 1 shared 0 misses 0 extractions 0 rejected 0 ewma 0.5 window hxm\n"), "bad window outcome"),
        ] {
            let err = PersistedState::decode(&text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
        // Comments and blank lines are fine.
        let text = with_footer("meloppr-state v1\n\n# a comment\n");
        assert_eq!(
            PersistedState::decode(&text).unwrap(),
            PersistedState::default()
        );
    }

    #[test]
    fn footer_catches_bit_flips_and_truncation() {
        let clean = sample_state().encode();

        // A single flipped bit anywhere in the body fails the checksum.
        let mut flipped = clean.clone().into_bytes();
        let target = clean.len() / 2; // well inside the records
        flipped[target] ^= 0x01;
        if let Ok(text) = String::from_utf8(flipped) {
            let err = PersistedState::decode(&text).unwrap_err();
            assert!(err.contains("crc32 mismatch"), "{err}");
        }

        // Losing a record line (footer intact) is a length mismatch.
        let record_start = clean.find("\nconsumer").unwrap() + 1;
        let record_end = clean[record_start..].find('\n').unwrap() + record_start + 1;
        let mut shorter = clean.clone();
        shorter.replace_range(record_start..record_end, "");
        let err = PersistedState::decode(&shorter).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        // Losing the tail (footer included) reads as a missing footer.
        let cut = &clean[..clean.rfind("footer").unwrap()];
        let err = PersistedState::decode(cut).unwrap_err();
        assert!(err.contains("missing integrity footer"), "{err}");
    }

    #[test]
    fn load_state_warns_and_boots_cold_on_corruption() {
        let router = Router::new();
        let path = std::env::temp_dir().join(format!(
            "meloppr-persist-bitflip-{}.state",
            std::process::id()
        ));
        // A valid file round-trips through disk.
        std::fs::write(&path, sample_state().encode()).unwrap();
        assert!(load_state(&router, &path).unwrap());
        // Corrupting it (torn footer) downgrades to a cold boot, not an
        // error and not a panic.
        let mut torn = sample_state().encode();
        torn.truncate(torn.len() - 10);
        std::fs::write(&path, torn).unwrap();
        assert!(!load_state(&router, &path).unwrap());
        let _ = std::fs::remove_file(&path);
    }
}
