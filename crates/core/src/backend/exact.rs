//! The exact full-graph diffusion backend (ground truth as a service).

use meloppr_graph::{GraphView, NodeId};

use super::{
    BackendCaps, BackendKind, CostEstimate, LatencyModel, PprBackend, QueryOutcome, QueryRequest,
    QueryStats,
};
use crate::diffusion::{diffuse_into, DiffusionConfig};
use crate::error::Result;
use crate::meloppr::StageStats;
use crate::memory::cpu_task_memory;
use crate::params::PprParams;
use crate::score_vec::top_k_in_place;
use crate::workspace::{QueryWorkspace, WorkspacePool};

/// Exact power-iteration diffusion over the whole graph (Eq. 2's
/// `T(s, k)` behind the unified API).
///
/// Always exact and always the most memory-hungry choice: the full graph
/// and dense score vectors stay resident. The [`Router`](super::Router)
/// reaches for it when a request demands `min_precision = 1.0` and memory
/// allows.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{ExactPower, PprBackend, QueryRequest};
/// use meloppr_core::PprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let backend = ExactPower::new(&g, PprParams::new(0.85, 4, 5)?)?;
/// let outcome = backend.query(&QueryRequest::new(0))?;
/// assert_eq!(outcome.ranking[0].0, 0); // the seed dominates
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExactPower<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    params: PprParams,
    latency: LatencyModel,
    pool: WorkspacePool,
}

impl<'g, G: GraphView + ?Sized> ExactPower<'g, G> {
    /// Creates the backend, validating `params` eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`](crate::PprError::InvalidParams)
    /// on invalid parameters.
    pub fn new(graph: &'g G, params: PprParams) -> Result<Self> {
        params.validate()?;
        Ok(ExactPower {
            graph,
            params,
            latency: LatencyModel::default(),
            pool: WorkspacePool::new(),
        })
    }

    /// The backend's configured base parameters.
    pub fn params(&self) -> &PprParams {
        &self.params
    }
}

impl<G: GraphView + ?Sized> PprBackend for ExactPower<'_, G> {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::ExactPower,
            exact: true,
            deterministic: true,
            accelerated: false,
            batch_aware: true,
        }
    }

    fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate> {
        let params = req.effective_params(&self.params)?;
        let n = self.graph.num_nodes();
        let directed = self.graph.num_directed_edges();
        let m = self.latency;
        Ok(CostEstimate {
            latency_ns: m.fixed_overhead_ns
                + params.length as f64 * directed as f64 * m.ns_per_diffusion_edge
                + n as f64 * m.ns_per_node,
            peak_memory_bytes: cpu_task_memory(n, directed / 2).total(),
            expected_precision: 1.0,
        })
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        Some(&self.pool)
    }

    fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome> {
        let params = req.effective_params(&self.params)?;
        let QueryWorkspace {
            diffusion, sparse, ..
        } = ws;
        let config = DiffusionConfig::new(params.alpha, params.length)?;
        let work = diffuse_into(self.graph, &[(req.seed, 1.0)], config, diffusion)?;
        let accumulated = diffusion.accumulated();
        sparse.clear();
        sparse.extend(
            accumulated
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s > 0.0)
                .map(|(i, &s)| (i as NodeId, s)),
        );
        let nonzero = sparse.len();
        top_k_in_place(sparse, params.k);
        let ranking = sparse.clone();
        let n = self.graph.num_nodes();
        let stats = QueryStats {
            stages: vec![StageStats {
                diffusions: 1,
                candidates: 0,
                expanded: 0,
                bfs_edges_scanned: 0,
                diffusion_edge_updates: work.edge_updates,
                max_ball_nodes: n,
                max_ball_edges: self.graph.num_directed_edges() / 2,
            }],
            total_diffusions: 1,
            diffusion_edge_updates: work.edge_updates,
            nodes_touched: n,
            peak_memory_bytes: cpu_task_memory(n, self.graph.num_directed_edges() / 2).total(),
            peak_task_memory_bytes: cpu_task_memory(n, self.graph.num_directed_edges() / 2).total(),
            aggregate_entries: nonzero,
            ..QueryStats::empty(BackendKind::ExactPower)
        };
        Ok(QueryOutcome { ranking, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_top_k;
    use meloppr_graph::generators;

    #[test]
    fn matches_direct_ground_truth() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 8).unwrap();
        let backend = ExactPower::new(&g, params).unwrap();
        for seed in [0u32, 11, 33] {
            let via_trait = backend.query(&QueryRequest::new(seed)).unwrap();
            let direct = exact_top_k(&g, seed, &params).unwrap();
            assert_eq!(via_trait.ranking, direct);
        }
    }

    #[test]
    fn overrides_change_effective_query() {
        let g = generators::karate_club();
        let backend = ExactPower::new(&g, PprParams::new(0.85, 4, 8).unwrap()).unwrap();
        let shorter = backend
            .query(&QueryRequest::new(0).with_length(1).with_k(3))
            .unwrap();
        assert_eq!(shorter.ranking.len(), 3);
        let direct = exact_top_k(&g, 0, &PprParams::new(0.85, 1, 3).unwrap()).unwrap();
        assert_eq!(shorter.ranking, direct);
    }

    #[test]
    fn estimate_is_exact_and_dense() {
        let g = generators::grid(8, 8).unwrap();
        let backend = ExactPower::new(&g, PprParams::new(0.85, 4, 8).unwrap()).unwrap();
        let est = backend.estimate(&QueryRequest::new(0)).unwrap();
        assert_eq!(est.expected_precision, 1.0);
        assert!(est.peak_memory_bytes > 0);
        assert!(est.latency_ns > 0.0);
    }

    #[test]
    fn bad_seed_is_rejected() {
        let g = generators::path(4).unwrap();
        let backend = ExactPower::new(&g, PprParams::new(0.85, 2, 2).unwrap()).unwrap();
        assert!(backend.query(&QueryRequest::new(99)).is_err());
    }
}
