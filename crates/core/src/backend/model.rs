//! The routing budget model: probed ball growth plus latency constants.
//!
//! Backend [`CostEstimate`](super::CostEstimate)s have to come from
//! somewhere cheap and deterministic. Following the planner (§IV-A's
//! "adaptively breaks the large graph"), every backend probes average
//! ball growth around a handful of sample seeds at construction time
//! ([`WorkProfile`]), then prices predicted work units with the
//! [`LatencyModel`] constants. The absolute nanosecond figures are rough;
//! what routing needs — and what the probes deliver — are the *relative*
//! costs between solvers on the same graph.

use meloppr_graph::{ball_growth, BallSize, GraphView, NodeId};

use crate::error::Result;
use crate::params::MelopprParams;
use crate::selection::SelectionStrategy;

/// Default number of probe seeds for [`WorkProfile::probe_default`].
const DEFAULT_PROBE_SEEDS: usize = 3;

/// Per-work-unit latency constants of the native Rust kernels.
///
/// Unlike the bench crate's `CpuCostModel` (which is calibrated to the
/// paper's NetworkX baselines so figures reproduce), these model the
/// in-process Rust implementations and exist purely to rank backends
/// against a deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Nanoseconds per adjacency entry scanned by extraction BFS.
    pub ns_per_bfs_edge: f64,
    /// Nanoseconds per adjacency entry processed by diffusion.
    pub ns_per_diffusion_edge: f64,
    /// Nanoseconds per random-walk step (an uncached adjacency probe).
    pub ns_per_walk_step: f64,
    /// Nanoseconds per ball node touched (allocation, id mapping).
    pub ns_per_node: f64,
    /// Fixed per-query overhead.
    pub fixed_overhead_ns: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            ns_per_bfs_edge: 6.0,
            ns_per_diffusion_edge: 3.0,
            ns_per_walk_step: 40.0,
            ns_per_node: 4.0,
            fixed_overhead_ns: 2_000.0,
        }
    }
}

/// Probed average ball growth of a graph — the shared substrate of every
/// backend's cost estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkProfile {
    /// Average ball size per depth `0..=max_depth` over the probe seeds.
    pub growth: Vec<BallSize>,
    /// `|V|` of the profiled graph.
    pub num_nodes: usize,
    /// `|E|` (undirected) of the profiled graph.
    pub num_edges: usize,
}

impl WorkProfile {
    /// Probes ball growth to `max_depth` around `sample_seeds`
    /// (out-of-bounds seeds are skipped; an empty effective sample yields
    /// a whole-graph-sized pessimistic profile).
    ///
    /// # Errors
    ///
    /// Currently infallible for in-bounds seeds; kept fallible for parity
    /// with the probing planner.
    pub fn probe<G: GraphView + ?Sized>(
        g: &G,
        max_depth: u32,
        sample_seeds: &[NodeId],
    ) -> Result<Self> {
        let num_nodes = g.num_nodes();
        let num_edges = g.num_directed_edges() / 2;
        let mut sums = vec![(0usize, 0usize); max_depth as usize + 1];
        let mut sampled = 0usize;
        for &seed in sample_seeds {
            if (seed as usize) >= num_nodes {
                continue;
            }
            let growth = ball_growth(g, seed, max_depth)?;
            for (i, b) in growth.iter().enumerate() {
                sums[i].0 += b.nodes;
                sums[i].1 += b.edges;
            }
            sampled += 1;
        }
        let growth = sums
            .iter()
            .enumerate()
            .map(|(d, &(nodes, edges))| match sampled {
                // No usable probe: assume the worst (whole graph).
                0 => BallSize {
                    depth: d as u32,
                    nodes: num_nodes,
                    edges: num_edges,
                },
                sampled => BallSize {
                    depth: d as u32,
                    nodes: nodes / sampled,
                    edges: edges / sampled,
                },
            })
            .collect();
        Ok(WorkProfile {
            growth,
            num_nodes,
            num_edges,
        })
    }

    /// Probes with the deterministic default sample of
    /// [`default_probe_seeds`].
    ///
    /// # Errors
    ///
    /// As [`WorkProfile::probe`].
    pub fn probe_default<G: GraphView + ?Sized>(g: &G, max_depth: u32) -> Result<Self> {
        WorkProfile::probe(g, max_depth, &default_probe_seeds(g.num_nodes()))
    }

    /// The average ball at `depth`, clamping past the probed horizon.
    pub fn ball(&self, depth: usize) -> BallSize {
        let idx = depth.min(self.growth.len().saturating_sub(1));
        self.growth.get(idx).copied().unwrap_or(BallSize {
            depth: depth as u32,
            nodes: self.num_nodes,
            edges: self.num_edges,
        })
    }

    /// Predicted non-zero residual candidates after a diffusion of
    /// `depth` — the frontier of the average ball, approximated as the
    /// ball's node count (every reached node can hold residual).
    pub fn candidates(&self, depth: usize) -> usize {
        self.ball(depth).nodes
    }
}

/// The deterministic default probe sample for a graph with `num_nodes`
/// nodes: up to `DEFAULT_PROBE_SEEDS` (3) seeds spread evenly over the node
/// range. Shared by [`WorkProfile::probe_default`] and cache warm-up so
/// warmed entries match the profiled balls.
pub fn default_probe_seeds(num_nodes: usize) -> Vec<NodeId> {
    let count = DEFAULT_PROBE_SEEDS.min(num_nodes.max(1));
    (0..count.min(num_nodes))
        .map(|i| (i * num_nodes / count) as NodeId)
        .collect()
}

/// How many of `candidates` next-stage nodes a strategy is expected to
/// expand (the routing-time analogue of
/// [`SelectionStrategy::select`]).
pub fn expected_selected(selection: &SelectionStrategy, candidates: usize) -> f64 {
    match *selection {
        SelectionStrategy::All => candidates as f64,
        SelectionStrategy::TopFraction(f) => {
            if f <= 0.0 {
                0.0
            } else {
                (candidates as f64 * f).ceil().max(1.0)
            }
        }
        SelectionStrategy::TopCount(n) => n.min(candidates) as f64,
        // Residual mass is heavily concentrated (Fig. 6 bottom), so a
        // relative threshold keeps only a small head; model it as 10 %.
        SelectionStrategy::RelativeThreshold(_) => (candidates as f64 * 0.1).ceil(),
    }
}

/// Predicted work of a staged MeLoPPR query under `params`, from the
/// probed ball growth.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedWorkEstimate {
    /// Expected diffusions per stage.
    pub stage_diffusions: Vec<f64>,
    /// Expected BFS adjacency scans across the query.
    pub bfs_edges: f64,
    /// Expected diffusion edge updates across the query.
    pub diffusion_edges: f64,
    /// Expected ball nodes touched across the query.
    pub nodes_touched: f64,
    /// The largest per-stage average ball (peak working set driver).
    pub peak_ball: BallSize,
}

/// Estimates staged work: stage `i+1` runs
/// `diffusions_i · expected_selected(candidates_i)` diffusions over the
/// average depth-`l_{i+1}` ball.
pub fn estimate_staged_work(profile: &WorkProfile, params: &MelopprParams) -> StagedWorkEstimate {
    estimate_staged_work_with_depths(profile, params, &params.stages)
}

/// As [`estimate_staged_work`], with per-stage **ball depths** decoupled
/// from the stage lengths: `ball_depths[i]` sizes stage `i`'s ball (and
/// its candidate pool) while `params.stages[i]` still sets the number
/// of diffusion iterations — exactly how the staged engine degrades
/// under a `max_memory_bytes` budget (shrunk extraction depth, full
/// diffusion length on the smaller ball). Depths missing from the slice
/// fall back to the stage length.
pub fn estimate_staged_work_with_depths(
    profile: &WorkProfile,
    params: &MelopprParams,
    ball_depths: &[usize],
) -> StagedWorkEstimate {
    let mut stage_diffusions = Vec::with_capacity(params.stages.len());
    let mut tasks = 1.0f64;
    let (mut bfs_edges, mut diffusion_edges, mut nodes_touched) = (0.0f64, 0.0, 0.0);
    let mut peak_ball = BallSize {
        depth: 0,
        nodes: 0,
        edges: 0,
    };
    for (i, &l) in params.stages.iter().enumerate() {
        let depth = ball_depths.get(i).copied().unwrap_or(l);
        let ball = profile.ball(depth);
        stage_diffusions.push(tasks);
        bfs_edges += tasks * 2.0 * ball.edges as f64;
        diffusion_edges += tasks * l as f64 * 2.0 * ball.edges as f64;
        nodes_touched += tasks * ball.nodes as f64;
        if ball.nodes + ball.edges > peak_ball.nodes + peak_ball.edges {
            peak_ball = ball;
        }
        if i + 1 < params.stages.len() {
            tasks *= expected_selected(&params.selection, profile.candidates(depth));
        }
    }
    StagedWorkEstimate {
        stage_diffusions,
        bfs_edges,
        diffusion_edges,
        nodes_touched,
        peak_ball,
    }
}

/// Expected top-`k` precision of staged MeLoPPR under `params` — a
/// documented heuristic calibrated on the shape of the paper's Fig. 6
/// sweep (full selection is exact; 2 % selection holds ≈ 90 %), not a
/// measurement.
pub fn staged_precision_heuristic(params: &MelopprParams) -> f64 {
    let selection = match params.selection {
        SelectionStrategy::All => 1.0,
        SelectionStrategy::TopFraction(f) => 0.9 + 0.1 * f.clamp(0.0, 1.0),
        SelectionStrategy::TopCount(_) => 0.92,
        SelectionStrategy::RelativeThreshold(_) => 0.92,
    };
    // Small bounded tables cost extra precision (§V-B: c >= 8 is
    // effectively lossless).
    let table = match params.table_factor {
        Some(c) if c < 8 => 0.02,
        _ => 0.0,
    };
    (selection - table).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn probe_is_monotone_in_depth() {
        let g = generators::grid(12, 12).unwrap();
        let profile = WorkProfile::probe(&g, 5, &[0, 70, 140]).unwrap();
        for w in profile.growth.windows(2) {
            assert!(w[1].nodes >= w[0].nodes);
            assert!(w[1].edges >= w[0].edges);
        }
        assert_eq!(profile.growth.len(), 6);
    }

    #[test]
    fn probe_default_is_deterministic() {
        let g = generators::karate_club();
        let a = WorkProfile::probe_default(&g, 4).unwrap();
        let b = WorkProfile::probe_default(&g, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ball_clamps_past_probe_horizon() {
        let g = generators::path(10).unwrap();
        let profile = WorkProfile::probe(&g, 3, &[5]).unwrap();
        assert_eq!(profile.ball(3), profile.ball(99));
    }

    #[test]
    fn out_of_bounds_seeds_are_skipped() {
        let g = generators::path(4).unwrap();
        let profile = WorkProfile::probe(&g, 2, &[999, 1]).unwrap();
        // Probed from node 1 only; still a usable profile.
        assert!(profile.ball(1).nodes >= 2);
    }

    #[test]
    fn empty_sample_is_pessimistic() {
        let g = generators::path(4).unwrap();
        let profile = WorkProfile::probe(&g, 2, &[]).unwrap();
        assert_eq!(profile.ball(2).nodes, g.num_nodes());
    }

    #[test]
    fn expected_selection_counts() {
        assert_eq!(expected_selected(&SelectionStrategy::All, 50), 50.0);
        assert_eq!(
            expected_selected(&SelectionStrategy::TopFraction(0.1), 50),
            5.0
        );
        assert_eq!(
            expected_selected(&SelectionStrategy::TopFraction(0.0), 50),
            0.0
        );
        assert_eq!(expected_selected(&SelectionStrategy::TopCount(7), 3), 3.0);
    }

    #[test]
    fn staged_work_grows_with_selection() {
        let g = generators::grid(10, 10).unwrap();
        let profile = WorkProfile::probe_default(&g, 6).unwrap();
        let narrow = MelopprParams::paper_defaults();
        let wide = MelopprParams {
            selection: SelectionStrategy::TopFraction(0.5),
            ..MelopprParams::paper_defaults()
        };
        let a = estimate_staged_work(&profile, &narrow);
        let b = estimate_staged_work(&profile, &wide);
        assert!(b.diffusion_edges > a.diffusion_edges);
        assert_eq!(a.stage_diffusions.len(), 2);
        assert_eq!(a.stage_diffusions[0], 1.0);
    }

    #[test]
    fn precision_heuristic_orders_selections() {
        let exact = MelopprParams {
            selection: SelectionStrategy::All,
            ..MelopprParams::paper_defaults()
        };
        let partial = MelopprParams::paper_defaults();
        let tiny_table = MelopprParams::paper_defaults().with_table_factor(1);
        assert_eq!(staged_precision_heuristic(&exact), 1.0);
        assert!(staged_precision_heuristic(&partial) < 1.0);
        assert!(staged_precision_heuristic(&tiny_table) < staged_precision_heuristic(&partial));
    }
}
