//! The batched query executor: a scoped worker pool with one
//! [`QueryWorkspace`] per worker.
//!
//! PowerWalk-style PPR serving lives or dies on amortizing per-query
//! state across concurrent queries. [`BatchExecutor`] runs a slice of
//! [`QueryRequest`]s against any `Sync` backend on `std::thread::scope`
//! workers; each worker owns one workspace for its whole lifetime, work
//! is distributed by an atomic request index (ball sizes are heavily
//! skewed — a static partition would serialize on whichever chunk holds
//! the hubs), and outcomes are returned **in request order** regardless
//! of completion order, so batched results are bit-identical to a
//! sequential loop (asserted by the `workspace_reuse` test suite).
//!
//! [`BatchStats`] aggregates the per-query [`QueryStats`] plus the
//! batch's wall clock, giving experiment binaries and the CLI a single
//! throughput record per batch. When the backend extracts through a
//! shared [`ConcurrentSubgraphCache`](crate::cache::ConcurrentSubgraphCache)
//! the executor also brackets the batch with snapshots of the backend's
//! own [`CacheConsumer`](crate::cache::CacheConsumer) counters and
//! reports the delta in [`BatchStats::cache`], so callers see at a
//! glance how many ball extractions the batch actually paid for versus
//! served from cache — counting exactly this batch's lookups, even when
//! other executors or backends hammer the same cache concurrently.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use super::{BackendKind, PprBackend, QueryOutcome, QueryRequest};
use crate::cache::ConsumerStats;
use crate::error::{PprError, Result};

/// Runs request batches on a fixed-size worker pool.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{BatchExecutor, LocalPpr, QueryRequest};
/// use meloppr_core::PprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let backend = LocalPpr::new(&g, PprParams::new(0.85, 4, 5)?)?;
/// let reqs: Vec<QueryRequest> = (0..8).map(QueryRequest::new).collect();
/// let batch = BatchExecutor::new(4)?.run(&backend, &reqs)?;
/// assert_eq!(batch.outcomes.len(), 8);
/// assert_eq!(batch.stats.queries, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExecutor {
    workers: usize,
}

impl BatchExecutor {
    /// An executor with `workers` worker threads (1 = sequential, still
    /// with full workspace reuse).
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if `workers == 0`.
    pub fn new(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(PprError::InvalidParams {
                reason: "batch executor needs at least one worker".into(),
            });
        }
        Ok(BatchExecutor { workers })
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `reqs` against `backend` and returns ordered outcomes plus
    /// aggregate statistics.
    ///
    /// # Errors
    ///
    /// Propagates the failing query's error; when several requests fail
    /// concurrently, the one with the smallest request index wins
    /// (deterministic).
    pub fn run<B>(&self, backend: &B, reqs: &[QueryRequest]) -> Result<BatchOutcome>
    where
        B: PprBackend + Sync + ?Sized,
    {
        let started = Instant::now();
        // Bracket the batch with snapshots of the backend's *own*
        // consumer counters: the delta is this batch's cache
        // effectiveness, attributed to exactly this backend's lookups.
        // (Two executors driving the same backend instance share that
        // backend's one consumer; give each serving path its own backend
        // handle when their traffic must be told apart.) Backends that
        // expose a shared cache without a consumer handle fall back to
        // global-counter deltas, which mix in any concurrent consumer's
        // traffic.
        let consumer_before = backend.cache_consumer().map(|c| c.stats());
        let cache_before = backend.shared_cache().map(|c| c.stats());
        let workers = self.workers.min(reqs.len()).max(1);
        let outcomes = if workers == 1 {
            backend.query_batch(reqs)?
        } else {
            run_parallel(backend, reqs, workers)?
        };
        let mut stats = BatchStats::aggregate(&outcomes, started.elapsed());
        stats.cache = match (backend.cache_consumer(), consumer_before) {
            (Some(consumer), Some(before)) => Some(consumer.stats().delta_since(&before)),
            _ => match (backend.shared_cache(), cache_before) {
                (Some(cache), Some(before)) => {
                    Some(ConsumerStats::from(cache.stats().delta_since(&before)))
                }
                _ => None,
            },
        };
        stats.cache_resident_bytes = backend.shared_cache().map(|c| c.resident_bytes());
        Ok(BatchOutcome { outcomes, stats })
    }
}

fn run_parallel<B>(backend: &B, reqs: &[QueryRequest], workers: usize) -> Result<Vec<QueryOutcome>>
where
    B: PprBackend + Sync + ?Sized,
{
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    // Each worker owns one workspace for its whole lifetime — checked out
    // of the backend's pool when it has one, so repeated batches reuse
    // warm buffers — and records (request index, result) pairs; indices
    // restore request order after the join.
    let per_worker: Vec<Vec<(usize, Result<QueryOutcome>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let aborted = &aborted;
                scope.spawn(move || {
                    let pool = backend.workspace_pool();
                    let mut ws = pool.map(|p| p.acquire()).unwrap_or_default();
                    let mut mine = Vec::new();
                    // Abort is checked BEFORE claiming: a claimed index is
                    // always processed, so the smallest failing request is
                    // guaranteed to be claimed (all smaller indices are
                    // handed out first) and its error recorded — keeping
                    // the reported error deterministic under races.
                    while !aborted.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= reqs.len() {
                            break;
                        }
                        // lint:allow(panic-freedom) -- i < reqs.len() checked two lines up
                        let result = backend.query_with(&reqs[i], &mut ws);
                        if result.is_err() {
                            // Stop new claims promptly; in-flight requests
                            // on other workers still finish.
                            aborted.store(true, Ordering::Relaxed);
                            mine.push((i, result));
                            break;
                        }
                        mine.push((i, result));
                    }
                    if let Some(pool) = pool {
                        pool.release(ws);
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(panic-freedom) -- re-raising a worker panic; thread::scope would propagate it anyway
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut indexed: Vec<(usize, Result<QueryOutcome>)> =
        per_worker.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    // The smallest failed index decides the reported error; every index
    // below it completed successfully and is discarded with the rest of
    // the partial batch.
    let mut outcomes = Vec::with_capacity(reqs.len());
    for (_, result) in indexed {
        outcomes.push(result?);
    }
    debug_assert_eq!(outcomes.len(), reqs.len());
    Ok(outcomes)
}

/// One batch's results: ordered outcomes plus aggregate accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Per-request outcomes, in request order.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate statistics over the batch.
    pub stats: BatchStats,
}

/// Aggregated [`QueryStats`](super::QueryStats) of one batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Total sub-graph diffusions across the batch.
    pub total_diffusions: usize,
    /// Total extraction-BFS work.
    pub bfs_edges_scanned: usize,
    /// Total diffusion work.
    pub diffusion_edge_updates: usize,
    /// Total random-walk steps (Monte-Carlo queries).
    pub random_walk_steps: usize,
    /// Total ball nodes touched.
    pub nodes_touched: usize,
    /// Largest single-query modelled working set in the batch, bytes.
    pub peak_memory_bytes: usize,
    /// Largest single-task modelled working set in the batch, bytes
    /// (Table II's per-task metric, maximized over every query).
    pub peak_task_memory_bytes: usize,
    /// Queries whose `max_memory_bytes` budget forced deterministic
    /// degradation (see `QueryStats::memory_limited`). 0 means every
    /// result in the batch is bit-identical to an unbudgeted run.
    pub memory_limited_queries: usize,
    /// Bytes resident in the backend's shared sub-graph cache when the
    /// batch finished (`None` without a shared cache) — the number a
    /// [`CacheBudget`](crate::cache::CacheBudget) byte bound caps.
    pub cache_resident_bytes: Option<usize>,
    /// Total bounded-table evictions.
    pub table_evictions: usize,
    /// Sum of backend-reported latency estimates, where present
    /// (simulated-hardware backends).
    pub latency_estimate_ns: Option<f64>,
    /// Measured wall clock of the whole batch.
    pub wall_clock: Duration,
    /// How many queries each solver kind served (relevant under
    /// per-request routing), in first-seen order.
    pub by_backend: Vec<(BackendKind, usize)>,
    /// Shared sub-graph cache counter delta bracketing this batch
    /// (`None` when the backend serves without a shared cache). See
    /// [`ConsumerStats`] — `extractions` much smaller than `queries` is
    /// the skewed-traffic win the cache exists for.
    ///
    /// The delta is taken on the backend's own
    /// [`CacheConsumer`](crate::cache::CacheConsumer), so it counts
    /// exactly this batch's lookups even when other executors or
    /// backends use the same cache concurrently. Only for backends that
    /// expose a cache but no consumer handle does the executor fall back
    /// to (cross-attributable) global-counter deltas.
    pub cache: Option<ConsumerStats>,
}

impl BatchStats {
    /// Aggregates per-query stats and a measured wall clock.
    pub fn aggregate(outcomes: &[QueryOutcome], wall_clock: Duration) -> Self {
        let mut stats = BatchStats {
            queries: outcomes.len(),
            wall_clock,
            ..BatchStats::default()
        };
        for outcome in outcomes {
            let q = &outcome.stats;
            stats.total_diffusions += q.total_diffusions;
            stats.bfs_edges_scanned += q.bfs_edges_scanned;
            stats.diffusion_edge_updates += q.diffusion_edge_updates;
            stats.random_walk_steps += q.random_walk_steps;
            stats.nodes_touched += q.nodes_touched;
            stats.peak_memory_bytes = stats.peak_memory_bytes.max(q.peak_memory_bytes);
            stats.peak_task_memory_bytes =
                stats.peak_task_memory_bytes.max(q.peak_task_memory_bytes);
            stats.memory_limited_queries += q.memory_limited as usize;
            stats.table_evictions += q.table_evictions;
            if let Some(ns) = q.latency_estimate_ns {
                *stats.latency_estimate_ns.get_or_insert(0.0) += ns;
            }
            match stats
                .by_backend
                .iter_mut()
                .find(|(kind, _)| *kind == q.backend)
            {
                Some((_, count)) => *count += 1,
                None => stats.by_backend.push((q.backend, 1)),
            }
        }
        stats
    }

    /// Mean wall-clock latency per query, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.wall_clock.as_secs_f64() * 1e3 / self.queries as f64
    }

    /// Batch throughput in queries per second.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.wall_clock.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LocalPpr, Meloppr, QueryRequest};
    use super::*;
    use crate::params::{MelopprParams, PprParams};
    use crate::selection::SelectionStrategy;
    use meloppr_graph::generators;

    fn staged_params() -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, 4, 10).unwrap(),
            stages: vec![2, 2],
            selection: SelectionStrategy::TopFraction(0.3),
            ..MelopprParams::paper_defaults()
        }
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(BatchExecutor::new(0).is_err());
        assert_eq!(BatchExecutor::new(3).unwrap().workers(), 3);
    }

    #[test]
    fn parallel_batch_matches_sequential_in_order() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.15, 3)
            .unwrap();
        let backend = Meloppr::new(&g, staged_params()).unwrap();
        let reqs: Vec<QueryRequest> = (0..12).map(QueryRequest::new).collect();
        let sequential: Vec<QueryOutcome> =
            reqs.iter().map(|r| backend.query(r).unwrap()).collect();
        for workers in [1, 2, 4, 7] {
            let batch = BatchExecutor::new(workers)
                .unwrap()
                .run(&backend, &reqs)
                .unwrap();
            assert_eq!(batch.outcomes, sequential, "workers = {workers}");
            assert_eq!(batch.stats.queries, 12);
        }
    }

    #[test]
    fn errors_are_deterministic_on_smallest_index() {
        let g = generators::karate_club();
        let backend = LocalPpr::new(&g, PprParams::new(0.85, 3, 5).unwrap()).unwrap();
        // Requests 3 and 5 are both out of bounds; the batch must fail on
        // request 3's error regardless of worker interleaving.
        let mut reqs: Vec<QueryRequest> = (0..8).map(QueryRequest::new).collect();
        reqs[3] = QueryRequest::new(10_000);
        reqs[5] = QueryRequest::new(20_000);
        for _ in 0..4 {
            let err = BatchExecutor::new(4)
                .unwrap()
                .run(&backend, &reqs)
                .unwrap_err();
            assert!(err.to_string().contains("10000"), "wrong error: {err}");
        }
    }

    #[test]
    fn aggregate_stats_sum_and_max() {
        let g = generators::karate_club();
        let backend = Meloppr::new(&g, staged_params()).unwrap();
        let reqs: Vec<QueryRequest> = (0..5).map(QueryRequest::new).collect();
        let batch = BatchExecutor::new(1).unwrap().run(&backend, &reqs).unwrap();
        let s = &batch.stats;
        assert_eq!(s.queries, 5);
        assert_eq!(
            s.total_diffusions,
            batch
                .outcomes
                .iter()
                .map(|o| o.stats.total_diffusions)
                .sum::<usize>()
        );
        assert_eq!(
            s.peak_memory_bytes,
            batch
                .outcomes
                .iter()
                .map(|o| o.stats.peak_memory_bytes)
                .max()
                .unwrap()
        );
        assert_eq!(s.by_backend, vec![(BackendKind::Meloppr, 5)]);
        assert!(s.throughput_qps() > 0.0);
        assert!(s.mean_latency_ms() >= 0.0);
    }

    #[test]
    fn shared_cache_counters_are_folded_per_batch() {
        use crate::cache::ConcurrentSubgraphCache;
        use std::sync::Arc;

        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.15, 3)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(512));
        let backend = Meloppr::new(&g, staged_params())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let uncached = Meloppr::new(&g, staged_params()).unwrap();
        assert!(
            BatchExecutor::new(2)
                .unwrap()
                .run(&uncached, &[QueryRequest::new(0)])
                .unwrap()
                .stats
                .cache
                .is_none(),
            "no shared cache, no cache stats"
        );

        // Same seed repeated: the batch pays for each distinct ball once.
        let reqs: Vec<QueryRequest> = (0..8).map(|_| QueryRequest::new(4)).collect();
        let batch = BatchExecutor::new(4).unwrap().run(&backend, &reqs).unwrap();
        let cache_stats = batch.stats.cache.expect("cache stats present");
        assert!(cache_stats.lookups() > 0);
        assert!(cache_stats.extractions < cache_stats.lookups());
        // A second identical batch reports only its own delta: all hits,
        // zero extractions, zero BFS.
        let again = BatchExecutor::new(4).unwrap().run(&backend, &reqs).unwrap();
        let delta = again.stats.cache.expect("cache stats present");
        assert_eq!(delta.extractions, 0);
        assert_eq!(delta.misses, 0);
        assert_eq!(again.stats.bfs_edges_scanned, 0);
        assert_eq!(again.outcomes[0].ranking, batch.outcomes[0].ranking);
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = generators::karate_club();
        let backend = LocalPpr::new(&g, PprParams::new(0.85, 3, 5).unwrap()).unwrap();
        let batch = BatchExecutor::new(4).unwrap().run(&backend, &[]).unwrap();
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.stats.queries, 0);
        assert_eq!(batch.stats.throughput_qps(), 0.0);
    }
}
