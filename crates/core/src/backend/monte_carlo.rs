//! The Monte-Carlo random-walk estimator behind the unified API.

use meloppr_graph::GraphView;

use super::{
    BackendCaps, BackendKind, CostEstimate, LatencyModel, PprBackend, QueryOutcome, QueryRequest,
    QueryStats,
};
use crate::error::{PprError, Result};
use crate::memory::CPU_WORD_BYTES;
use crate::monte_carlo::monte_carlo_ppr_with;
use crate::params::PprParams;
use crate::workspace::{QueryWorkspace, WorkspacePool};

/// α-decay random-walk PPR estimation (Fig. 2(a)) as a backend.
///
/// The "low space, high accesses" corner of the paper's design space:
/// nearly no working set, but every step probes the full adjacency. The
/// [`Router`](super::Router) reaches for it under very tight memory or
/// latency budgets that tolerate approximate answers.
///
/// Results are deterministic under the configured `rng_seed`,
/// regardless of workspace reuse.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{MonteCarlo, PprBackend, QueryRequest};
/// use meloppr_core::PprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let backend = MonteCarlo::new(&g, PprParams::new(0.85, 4, 5)?, 2000, 42)?;
/// let outcome = backend.query(&QueryRequest::new(0))?;
/// assert!(outcome.stats.random_walk_steps > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MonteCarlo<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    params: PprParams,
    walks: usize,
    rng_seed: u64,
    latency: LatencyModel,
    pool: WorkspacePool,
}

impl<'g, G: GraphView + ?Sized> MonteCarlo<'g, G> {
    /// Creates the backend running `walks` seeded walks per query.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if `walks == 0` or `params`
    /// fail validation.
    pub fn new(graph: &'g G, params: PprParams, walks: usize, rng_seed: u64) -> Result<Self> {
        params.validate()?;
        if walks == 0 {
            return Err(PprError::InvalidParams {
                reason: "Monte-Carlo estimation needs at least one walk".into(),
            });
        }
        Ok(MonteCarlo {
            graph,
            params,
            walks,
            rng_seed,
            latency: LatencyModel::default(),
            pool: WorkspacePool::new(),
        })
    }

    /// The backend's configured base parameters.
    pub fn params(&self) -> &PprParams {
        &self.params
    }

    /// Number of walks each query runs.
    pub fn walks(&self) -> usize {
        self.walks
    }

    /// Expected precision heuristic for `walks` samples: grows with the
    /// sample count, saturating at 0.9 (the estimator ranks the head well
    /// but churns the top-`k` tail — compare Fig. 2(a)). Documented
    /// calibration, not a measurement.
    fn precision_heuristic(&self) -> f64 {
        let walks = self.walks as f64;
        (walks / (walks + 1000.0)).min(0.9)
    }
}

impl<G: GraphView + ?Sized> PprBackend for MonteCarlo<'_, G> {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::MonteCarlo,
            exact: false,
            deterministic: true,
            accelerated: false,
            batch_aware: true,
        }
    }

    fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate> {
        let params = req.effective_params(&self.params)?;
        // Expected steps per walk: sum of survival probabilities
        // α + α² + … + α^L.
        let alpha = params.alpha;
        let expected_len = alpha * (1.0 - alpha.powi(params.length as i32)) / (1.0 - alpha);
        let distinct_terminals = self.walks.min(self.graph.num_nodes());
        Ok(CostEstimate {
            latency_ns: self.latency.fixed_overhead_ns
                + self.walks as f64 * expected_len * self.latency.ns_per_walk_step,
            // Terminal-count map entries: key + count + bucket word.
            peak_memory_bytes: distinct_terminals * 3 * CPU_WORD_BYTES,
            expected_precision: self.precision_heuristic(),
        })
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        Some(&self.pool)
    }

    fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome> {
        let params = req.effective_params(&self.params)?;
        let QueryWorkspace {
            mc_counts, sparse, ..
        } = ws;
        let (ranking, steps) = monte_carlo_ppr_with(
            self.graph,
            req.seed,
            &params,
            self.walks,
            self.rng_seed,
            mc_counts,
            sparse,
        )?;
        let distinct = sparse.len();
        let stats = QueryStats {
            random_walk_steps: steps,
            peak_memory_bytes: distinct * 3 * CPU_WORD_BYTES,
            peak_task_memory_bytes: distinct * 3 * CPU_WORD_BYTES,
            aggregate_entries: distinct,
            ..QueryStats::empty(BackendKind::MonteCarlo)
        };
        Ok(QueryOutcome { ranking, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::monte_carlo_ppr_impl;
    use meloppr_graph::generators;

    #[test]
    fn matches_direct_call_bit_for_bit() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 6, 5).unwrap();
        let backend = MonteCarlo::new(&g, params, 2000, 42).unwrap();
        let via_trait = backend.query(&QueryRequest::new(0)).unwrap();
        let direct = monte_carlo_ppr_impl(&g, 0, &params, 2000, 42).unwrap();
        assert_eq!(via_trait.ranking, direct.ranking);
        assert_eq!(via_trait.stats.random_walk_steps, direct.steps);
    }

    #[test]
    fn repeated_queries_are_deterministic() {
        let g = generators::karate_club();
        let backend = MonteCarlo::new(&g, PprParams::new(0.85, 4, 5).unwrap(), 500, 9).unwrap();
        let a = backend.query(&QueryRequest::new(3)).unwrap();
        let b = backend.query(&QueryRequest::new(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_walks_rejected_at_construction() {
        let g = generators::path(3).unwrap();
        assert!(MonteCarlo::new(&g, PprParams::new(0.85, 2, 2).unwrap(), 0, 0).is_err());
    }

    #[test]
    fn estimate_precision_grows_with_walks() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let few = MonteCarlo::new(&g, params, 100, 1).unwrap();
        let many = MonteCarlo::new(&g, params, 100_000, 1).unwrap();
        let req = QueryRequest::new(0);
        let few_est = few.estimate(&req).unwrap();
        let many_est = many.estimate(&req).unwrap();
        assert!(many_est.expected_precision > few_est.expected_precision);
        assert!(many_est.latency_ns > few_est.latency_ns);
        assert!(few_est.expected_precision < 1.0);
    }
}
