//! Per-request backend selection from capabilities and cost estimates,
//! with optional self-calibration from observed query latency, bounded
//! retry-with-failover, and a per-backend circuit breaker.

use std::fmt;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use super::{BackendKind, CostEstimate, PprBackend, QueryOutcome, QueryRequest};
use crate::error::{BackendError, PprError, Result};

/// EWMA smoothing factor for latency calibration: each observation moves
/// the correction ratio 30 % of the way toward the new sample, so a few
/// repeated queries converge while one outlier cannot flip routing.
const CALIBRATION_BETA: f64 = 0.3;

/// Observed/predicted ratios outside this range are clamped before entering
/// the EWMA (wall-clock noise on microsecond queries can be extreme).
const CALIBRATION_RATIO_RANGE: (f64, f64) = (1e-6, 1e6);

/// Every `memory_limited` outcome folds a `ratio × 1.25` sample into the
/// backend's EWMA (see [`Router::observe_degradation`]): one degradation
/// nudges the predicted latency up ~7.5 %, repeated degradation compounds
/// until budgeted traffic steers to a backend that serves full-fidelity
/// answers instead.
const DEGRADATION_PENALTY: f64 = 1.25;

/// EWMA smoothing factor for the circuit breaker's error rate. 0.5 is
/// deliberately fast: two consecutive errors from a cold breaker reach
/// `0.75 > BREAKER_TRIP_THRESHOLD` and trip it — a failing backend
/// should lose traffic within a couple of requests, not a couple of
/// hundred.
const BREAKER_BETA: f64 = 0.5;

/// A closed breaker trips open when its error-rate EWMA exceeds this.
const BREAKER_TRIP_THRESHOLD: f64 = 0.6;

/// How long an open breaker blocks traffic before a half-open probe is
/// allowed through (overridable via
/// [`Router::with_breaker_cooldown`]).
const DEFAULT_BREAKER_COOLDOWN: Duration = Duration::from_millis(500);

/// Retries [`Router::query_with_failover`] performs beyond the first
/// attempt. Two failovers bound worst-case added latency while still
/// surviving a double fault.
const MAX_FAILOVERS: u32 = 2;

/// Externally visible circuit-breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, errors feed the EWMA.
    Closed,
    /// Tripped: the backend is skipped by routing until its cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: the next request may probe the backend; a
    /// success re-closes the breaker, a failure re-opens it.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

impl std::str::FromStr for BreakerState {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "closed" => Ok(BreakerState::Closed),
            "open" => Ok(BreakerState::Open),
            "half-open" => Ok(BreakerState::HalfOpen),
            other => Err(format!("unknown breaker state {other:?}")),
        }
    }
}

/// A point-in-time view of one backend's circuit breaker, for telemetry
/// (STATS frames, the shutdown report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSnapshot {
    /// Which backend this breaker guards.
    pub kind: BackendKind,
    /// Current position.
    pub state: BreakerState,
    /// Error-rate EWMA (0 = healthy, 1 = every recent request failed).
    pub error_ewma: f64,
    /// Times the breaker has tripped open over its lifetime.
    pub trips: u64,
}

#[derive(Debug, Clone, Copy, Default)]
enum BreakerPhase {
    #[default]
    Closed,
    Open {
        since: Instant,
    },
    HalfOpen,
}

/// Per-backend circuit breaker driven by query outcomes.
#[derive(Debug, Clone, Copy, Default)]
struct Breaker {
    phase: BreakerPhase,
    error_ewma: f64,
    trips: u64,
}

impl Breaker {
    /// Folds one query outcome in and advances the phase machine.
    fn record(&mut self, ok: bool, now: Instant) {
        self.error_ewma =
            (1.0 - BREAKER_BETA) * self.error_ewma + BREAKER_BETA * f64::from(!ok as u8);
        match self.phase {
            BreakerPhase::Closed => {
                if !ok && self.error_ewma > BREAKER_TRIP_THRESHOLD {
                    self.phase = BreakerPhase::Open { since: now };
                    self.trips += 1;
                }
            }
            BreakerPhase::HalfOpen => {
                if ok {
                    self.phase = BreakerPhase::Closed;
                    self.error_ewma = 0.0;
                } else {
                    self.phase = BreakerPhase::Open { since: now };
                    self.trips += 1;
                }
            }
            BreakerPhase::Open { .. } => {
                // A request was forced through an open breaker (every
                // alternative was open too): a success is as good as a
                // half-open probe succeeding.
                if ok {
                    self.phase = BreakerPhase::Closed;
                    self.error_ewma = 0.0;
                }
            }
        }
    }

    /// Whether routing may use this backend now, advancing
    /// `Open → HalfOpen` when the cooldown has elapsed.
    fn available(&mut self, cooldown: Duration, now: Instant) -> bool {
        match self.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen => true,
            BreakerPhase::Open { since } => {
                if now.duration_since(since) >= cooldown {
                    self.phase = BreakerPhase::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn state(&self) -> BreakerState {
        match self.phase {
            BreakerPhase::Closed => BreakerState::Closed,
            BreakerPhase::Open { .. } => BreakerState::Open,
            BreakerPhase::HalfOpen => BreakerState::HalfOpen,
        }
    }
}

/// Per-backend latency correction state.
#[derive(Debug, Clone, Copy)]
struct LatencyCalibration {
    /// EWMA of observed/predicted latency ratios (1.0 = trust the model).
    ratio: f64,
    /// Observations folded in so far.
    samples: usize,
    /// `memory_limited` degradations folded in so far.
    degraded: usize,
}

impl Default for LatencyCalibration {
    fn default() -> Self {
        LatencyCalibration {
            ratio: 1.0,
            samples: 0,
            degraded: 0,
        }
    }
}

/// One backend's persistable calibration state, keyed by
/// [`BackendKind`] so it survives process restarts even when unrelated
/// backends are added or removed (see
/// [`persist`](super::persist)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationEntry {
    /// Which solver this calibration belongs to.
    pub kind: BackendKind,
    /// EWMA of observed/predicted latency ratios.
    pub ratio: f64,
    /// Latency observations folded in.
    pub samples: usize,
    /// `memory_limited` degradations folded in.
    pub degraded: usize,
}

/// The router's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    /// Index of the chosen backend in the router's registration order.
    pub index: usize,
    /// Which solver that is.
    pub kind: BackendKind,
    /// The estimate the decision was based on.
    pub estimate: CostEstimate,
    /// Whether the chosen backend satisfies every budget constraint
    /// (`false` means best-effort fallback: nothing fit).
    pub fits_budget: bool,
}

/// Routes each [`QueryRequest`] to the most suitable registered backend.
///
/// Policy, evaluated against each backend's
/// [`estimate`](PprBackend::estimate) for the concrete request:
///
/// 1. Backends whose estimate satisfies every constraint of the request's
///    [`QueryBudget`](super::QueryBudget) are *admissible*.
/// 2. Among admissible backends the router picks the highest expected
///    precision, breaking ties by lower predicted latency, then by
///    registration order.
/// 3. If nothing is admissible it falls back to the backend violating the
///    fewest constraints (ties again by latency, then order) and reports
///    `fits_budget = false` in the [`Route`].
///
/// With no budget at all, rule 2 therefore serves the most precise
/// backend that is cheapest to run — and different budget hints
/// demonstrably select different solvers (see the `router` integration
/// tests).
///
/// # Self-calibration
///
/// Backend latency estimates are analytic models; real machines disagree
/// with them. With [`Router::with_self_calibration`] enabled, every
/// served query feeds its observed latency (the backend-reported
/// [`QueryStats::latency_estimate_ns`](super::QueryStats) when present,
/// wall clock otherwise) back into a per-backend EWMA of the
/// observed/predicted ratio, and [`Router::select`] scales each latency
/// estimate by its backend's ratio before matching budgets. Repeated
/// budgeted queries therefore converge onto the solver that actually
/// meets the deadline, even when the static model is off by orders of
/// magnitude (see the `router` integration tests). Calibration is off by
/// default: uncalibrated routing stays deterministic run-to-run.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{
///     ExactPower, LocalPpr, MonteCarlo, PprBackend, QueryRequest, Router,
/// };
/// use meloppr_core::PprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let params = PprParams::new(0.85, 4, 5)?;
/// let router = Router::new()
///     .with_backend(Box::new(ExactPower::new(&g, params)?))
///     .with_backend(Box::new(LocalPpr::new(&g, params)?))
///     .with_backend(Box::new(MonteCarlo::new(&g, params, 2000, 42)?));
/// let outcome = router.query(&QueryRequest::new(0))?;
/// assert_eq!(outcome.ranking.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Router<'g> {
    backends: Vec<Box<dyn PprBackend + Sync + 'g>>,
    calibrate: bool,
    calibration: Mutex<Vec<LatencyCalibration>>,
    breakers: Mutex<Vec<Breaker>>,
    /// `None` means [`DEFAULT_BREAKER_COOLDOWN`].
    breaker_cooldown: Option<Duration>,
}

impl std::fmt::Debug for Router<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<BackendKind> = self
            .backends
            .iter()
            .map(|b| b.capabilities().kind)
            .collect();
        f.debug_struct("Router").field("backends", &kinds).finish()
    }
}

impl<'g> Router<'g> {
    /// An empty router (self-calibration off).
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a backend (builder style). Registration order is the
    /// final tie-breaker in routing. Backends must be `Sync`: a router
    /// is shared by reference across serving threads (the
    /// [`server`](crate::server) workers, batch executors).
    #[must_use]
    pub fn with_backend(mut self, backend: Box<dyn PprBackend + Sync + 'g>) -> Self {
        self.push(backend);
        self
    }

    /// Enables or disables latency self-calibration (builder style). See
    /// the type-level docs.
    #[must_use]
    pub fn with_self_calibration(mut self, enabled: bool) -> Self {
        self.calibrate = enabled;
        self
    }

    /// Overrides how long a tripped circuit breaker blocks traffic
    /// before allowing a half-open probe (builder style; default
    /// 500 ms). Chaos tests shorten this to exercise the full
    /// trip → probe → restore cycle quickly.
    #[must_use]
    pub fn with_breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.breaker_cooldown = Some(cooldown);
        self
    }

    /// Registers a backend.
    pub fn push(&mut self, backend: Box<dyn PprBackend + Sync + 'g>) {
        self.backends.push(backend);
        self.calibration_guard().push(LatencyCalibration::default());
        self.breakers_guard().push(Breaker::default());
    }

    /// Both router mutexes guard plain-data vectors whose invariants
    /// hold at every instant, so a poisoned lock (a panicking query
    /// unwinding through a worker's `catch_unwind`) is recovered, not
    /// cascaded into every other serving thread.
    fn calibration_guard(&self) -> MutexGuard<'_, Vec<LatencyCalibration>> {
        self.calibration
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn breakers_guard(&self) -> MutexGuard<'_, Vec<Breaker>> {
        self.breakers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn cooldown(&self) -> Duration {
        self.breaker_cooldown.unwrap_or(DEFAULT_BREAKER_COOLDOWN)
    }

    /// The registered backends, in registration order.
    pub fn backends(&self) -> &[Box<dyn PprBackend + Sync + 'g>] {
        &self.backends
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Prepares every backend (probes, caches, formats).
    ///
    /// # Errors
    ///
    /// Propagates the first backend preparation failure.
    pub fn prepare(&mut self) -> Result<()> {
        for backend in &mut self.backends {
            backend.prepare()?;
        }
        Ok(())
    }

    /// Chooses the backend for `req` without running the query.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::NoBackendAvailable`] (inside
    /// [`PprError::Backend`]) if no backend is registered or every
    /// estimate fails.
    pub fn select(&self, req: &QueryRequest) -> Result<Route> {
        self.select_excluding(req, &[])
    }

    /// As [`Router::select`], additionally skipping the backends in
    /// `excluded` (failover re-routes exclude the backends that already
    /// failed this request) and any backend whose circuit breaker is
    /// open. If every remaining candidate is breaker-blocked, the
    /// breaker filter is dropped — availability beats purity; a request
    /// is served through an open breaker rather than refused when
    /// nothing healthy remains.
    ///
    /// # Errors
    ///
    /// As [`Router::select`] (every non-excluded backend failed to
    /// estimate, or nothing is registered).
    pub fn select_excluding(&self, req: &QueryRequest, excluded: &[usize]) -> Result<Route> {
        if self.backends.is_empty() {
            return Err(PprError::Backend(BackendError::NoBackendAvailable {
                reason: "router has no registered backends".into(),
            }));
        }
        let ratios: Vec<f64> = if self.calibrate {
            self.calibration_guard().iter().map(|c| c.ratio).collect()
        } else {
            Vec::new()
        };
        let available: Vec<bool> = {
            let mut breakers = self.breakers_guard();
            let (cooldown, now) = (self.cooldown(), Instant::now());
            breakers
                .iter_mut()
                .map(|b| b.available(cooldown, now))
                .collect()
        };
        let mut estimate_failures: Vec<String> = Vec::new();
        let mut pick = self.best_route(req, &ratios, &mut estimate_failures, |i| {
            !excluded.contains(&i) && available.get(i).copied().unwrap_or(true)
        });
        if pick.is_none() && available.iter().any(|&a| !a) {
            estimate_failures.clear();
            pick = self.best_route(req, &ratios, &mut estimate_failures, |i| {
                !excluded.contains(&i)
            });
        }
        pick.ok_or_else(|| {
            PprError::Backend(BackendError::NoBackendAvailable {
                reason: format!(
                    "every selectable backend failed to estimate the request: [{}]",
                    estimate_failures.join("; ")
                ),
            })
        })
    }

    /// The scoring core of selection over the backends `allow` admits:
    /// minimize budget violations, then (admissible) maximize precision
    /// / minimize latency, or (best-effort) minimize latency.
    fn best_route(
        &self,
        req: &QueryRequest,
        ratios: &[f64],
        estimate_failures: &mut Vec<String>,
        allow: impl Fn(usize) -> bool,
    ) -> Option<Route> {
        let budget = &req.budget;
        let mut best: Option<(Route, usize)> = None; // (route, violations)
        for (index, backend) in self.backends.iter().enumerate() {
            if !allow(index) {
                continue;
            }
            let mut estimate = match backend.estimate(req) {
                Ok(est) => est,
                // A backend that cannot even estimate the request (e.g.
                // invalid overrides for it) is not a candidate, but its
                // reason must survive into the routing error.
                Err(err) => {
                    estimate_failures.push(format!("{}: {err}", backend.capabilities().kind));
                    continue;
                }
            };
            if let Some(&ratio) = ratios.get(index) {
                estimate.latency_ns *= ratio;
            }
            let violations = count_violations(&estimate, budget);
            let candidate = Route {
                index,
                kind: backend.capabilities().kind,
                estimate,
                fits_budget: violations == 0,
            };
            let better = match &best {
                None => true,
                Some((incumbent, inc_violations)) => {
                    match violations.cmp(inc_violations) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => {
                            if violations == 0 {
                                // Admissible: maximize precision, then
                                // minimize latency.
                                (
                                    -candidate.estimate.expected_precision,
                                    candidate.estimate.latency_ns,
                                ) < (
                                    -incumbent.estimate.expected_precision,
                                    incumbent.estimate.latency_ns,
                                )
                            } else {
                                // Best effort: minimize latency.
                                candidate.estimate.latency_ns < incumbent.estimate.latency_ns
                            }
                        }
                    }
                }
            };
            if better {
                best = Some((candidate, violations));
            }
        }
        best.map(|(route, _)| route)
    }

    /// Routes and runs one query. With self-calibration enabled, the
    /// observed latency is folded back into the chosen backend's
    /// correction ratio.
    ///
    /// # Errors
    ///
    /// As [`Router::select`], plus any error from the chosen backend.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryOutcome> {
        self.query_routed(req).map(|(_, outcome)| outcome)
    }

    /// As [`Router::query`], also returning the [`Route`] the decision
    /// was based on — serving layers use it for per-backend telemetry
    /// and degraded-plan accounting without a second `select()`.
    ///
    /// With self-calibration enabled this additionally feeds two signals
    /// back into the chosen backend's correction ratio: the observed
    /// latency (as [`Router::query`] always did), and — when the outcome
    /// reports [`QueryStats::memory_limited`](super::QueryStats) — a
    /// degradation penalty ([`Router::observe_degradation`]), so a
    /// backend that repeatedly has to shrink its plan under its byte
    /// budget gradually looks slower to the router and budgeted traffic
    /// steers toward backends that can serve the request at full
    /// fidelity.
    ///
    /// # Errors
    ///
    /// As [`Router::select`], plus any error from the chosen backend.
    pub fn query_routed(&self, req: &QueryRequest) -> Result<(Route, QueryOutcome)> {
        let route = self.select(req)?;
        let outcome = self.run_attempt(req, &route)?;
        Ok((route, outcome))
    }

    /// As [`Router::query_routed`] with bounded retry-with-failover:
    /// when the chosen backend **fails** (returns `Err`), the request
    /// re-routes to the best remaining backend that still fits the
    /// deadline budget left after the failed attempt, up to
    /// `MAX_FAILOVERS` retries. The third tuple element is how many
    /// failovers this request consumed (0 = first backend served it).
    ///
    /// Two things are deliberately **not** retried:
    ///
    /// * **Completed queries.** Only an `Err` attempt re-routes; a
    ///   query that returned is never re-run, so non-idempotent budget
    ///   state (calibration EWMAs it fed, cache admissions it caused,
    ///   consumer windows it advanced) is never double-counted — and a
    ///   failed attempt's side effects are *preserved*, not replayed or
    ///   rolled back.
    /// * **Panics.** An unwinding backend propagates to the caller
    ///   (serving workers isolate it with `catch_unwind` and answer a
    ///   typed internal error); retrying a panic would re-run a code
    ///   path just proven capable of corrupting shared state.
    ///
    /// Every attempt's outcome feeds the failed backend's circuit
    /// breaker, so a persistently failing backend trips open and stops
    /// being selected at all (see [`Router::breaker_snapshots`]).
    ///
    /// # Errors
    ///
    /// As [`Router::select`], plus the **last** attempt's backend error
    /// once the failover budget (or the deadline) is exhausted.
    pub fn query_with_failover(&self, req: &QueryRequest) -> Result<(Route, QueryOutcome, u32)> {
        let started = Instant::now();
        let mut attempt = *req;
        let mut excluded: Vec<usize> = Vec::new();
        let mut failovers = 0u32;
        loop {
            let route = self.select_excluding(&attempt, &excluded)?;
            let err = match self.run_attempt(&attempt, &route) {
                Ok(outcome) => return Ok((route, outcome, failovers)),
                Err(err) => err,
            };
            if failovers >= MAX_FAILOVERS || excluded.len() + 1 >= self.backends.len() {
                return Err(err);
            }
            if let Some(budget_ms) = req.budget.max_latency_ms {
                // The failed attempt ate into the deadline: re-route
                // with only the remainder, and stop retrying outright
                // once nothing is left (the retry could not be served
                // in time even if it succeeded).
                let remaining_ms = budget_ms - started.elapsed().as_secs_f64() * 1e3;
                if remaining_ms <= 0.0 {
                    return Err(err);
                }
                attempt.budget.max_latency_ms = Some(remaining_ms);
            }
            excluded.push(route.index);
            failovers += 1;
        }
    }

    /// Runs one already-routed attempt: the `backend.query` failpoint
    /// seams, the query itself, calibration feedback (when enabled),
    /// and the circuit-breaker outcome record.
    fn run_attempt(&self, req: &QueryRequest, route: &Route) -> Result<QueryOutcome> {
        let result = self.run_backend(req, route);
        self.record_breaker(route.index, result.is_ok());
        result
    }

    fn run_backend(&self, req: &QueryRequest, route: &Route) -> Result<QueryOutcome> {
        if crate::failpoint::ACTIVE {
            crate::failpoint::check("backend.query")?;
            crate::failpoint::check(&format!("backend.query.{}", route.kind))?;
        }
        if !self.calibrate {
            // lint:allow(panic-freedom) -- route.index was produced by select() over this very Vec
            return self.backends[route.index].query(req);
        }
        // The observation is measured against the *uncalibrated*
        // prediction; undo the ratio select() applied rather than paying
        // a second estimate() call (ratios are clamped away from zero).
        let (ratio, _) = self.calibration_ratio(route.index);
        let predicted_ns = route.estimate.latency_ns / ratio;
        let started = Instant::now();
        // lint:allow(panic-freedom) -- route.index was produced by select() over this very Vec
        let outcome = self.backends[route.index].query(req)?;
        let observed_ns = outcome
            .stats
            .latency_estimate_ns
            .unwrap_or_else(|| started.elapsed().as_nanos() as f64);
        self.observe(route.index, observed_ns, predicted_ns);
        if outcome.stats.memory_limited {
            self.observe_degradation(route.index);
        }
        Ok(outcome)
    }

    /// Feeds one query outcome into backend `index`'s circuit breaker.
    /// Called automatically by the query paths; exposed for serving
    /// layers that execute backends themselves.
    pub fn record_breaker(&self, index: usize, ok: bool) {
        if let Some(b) = self.breakers_guard().get_mut(index) {
            b.record(ok, Instant::now());
        }
    }

    /// A point-in-time view of every backend's circuit breaker, in
    /// registration order — surfaced in STATS frames and the shutdown
    /// report.
    pub fn breaker_snapshots(&self) -> Vec<BreakerSnapshot> {
        let breakers = self.breakers_guard();
        self.backends
            .iter()
            .zip(breakers.iter())
            .map(|(backend, b)| BreakerSnapshot {
                kind: backend.capabilities().kind,
                state: b.state(),
                error_ewma: b.error_ewma,
                trips: b.trips,
            })
            .collect()
    }

    /// Folds one latency observation for backend `index` into its
    /// correction ratio (EWMA of observed/predicted). Called
    /// automatically by [`Router::query`] under self-calibration; exposed
    /// so serving layers measuring latency themselves can feed it back.
    ///
    /// Non-finite or non-positive inputs are ignored.
    pub fn observe(&self, index: usize, observed_ns: f64, predicted_ns: f64) {
        if !(observed_ns.is_finite() && predicted_ns.is_finite())
            || observed_ns <= 0.0
            || predicted_ns <= 0.0
        {
            return;
        }
        let (lo, hi) = CALIBRATION_RATIO_RANGE;
        let sample = (observed_ns / predicted_ns).clamp(lo, hi);
        let mut calibration = self.calibration_guard();
        if let Some(c) = calibration.get_mut(index) {
            c.ratio = if c.samples == 0 {
                sample // first observation replaces the 1.0 prior outright
            } else {
                (1.0 - CALIBRATION_BETA) * c.ratio + CALIBRATION_BETA * sample
            };
            c.samples += 1;
        }
    }

    /// Folds one **degradation** observation for backend `index` into
    /// its correction ratio: the backend served the query, but had to
    /// deterministically shrink its plan to fit a byte budget
    /// (`memory_limited`). The EWMA absorbs a `ratio ×`
    /// `DEGRADATION_PENALTY` (1.25) sample, so each degradation inflates the
    /// backend's predicted latency a little and *repeated* degradation
    /// compounds until budgeted routing steers to a cheaper (or
    /// roomier) backend. Called automatically by
    /// [`Router::query_routed`] under self-calibration; exposed for
    /// serving layers that execute backends themselves.
    pub fn observe_degradation(&self, index: usize) {
        let (lo, hi) = CALIBRATION_RATIO_RANGE;
        let mut calibration = self.calibration_guard();
        if let Some(c) = calibration.get_mut(index) {
            let sample = (c.ratio * DEGRADATION_PENALTY).clamp(lo, hi);
            c.ratio = if c.samples == 0 {
                sample
            } else {
                (1.0 - CALIBRATION_BETA) * c.ratio + CALIBRATION_BETA * sample
            };
            c.samples += 1;
            c.degraded += 1;
        }
    }

    /// The current observed/predicted latency correction ratio of backend
    /// `index` (1.0 until the first observation), with the number of
    /// observations folded in.
    pub fn calibration_ratio(&self, index: usize) -> (f64, usize) {
        let calibration = self.calibration_guard();
        calibration
            .get(index)
            .map(|c| (c.ratio, c.samples))
            .unwrap_or((1.0, 0))
    }

    /// Snapshot of every backend's calibration state, in registration
    /// order — the in-memory half of calibration persistence (see
    /// [`persist`](super::persist)).
    pub fn calibration_entries(&self) -> Vec<CalibrationEntry> {
        let calibration = self.calibration_guard();
        self.backends
            .iter()
            .zip(calibration.iter())
            .map(|(backend, c)| CalibrationEntry {
                kind: backend.capabilities().kind,
                ratio: c.ratio,
                samples: c.samples,
                degraded: c.degraded,
            })
            .collect()
    }

    /// Re-applies persisted calibration entries, matching each entry to
    /// the first not-yet-restored backend of the same [`BackendKind`]
    /// (registration order). Entries for kinds this router does not
    /// register, or with non-finite/non-positive ratios, are skipped —
    /// stale state never panics. Returns how many entries were applied.
    pub fn restore_calibration(&self, entries: &[CalibrationEntry]) -> usize {
        let (lo, hi) = CALIBRATION_RATIO_RANGE;
        let kinds: Vec<BackendKind> = self
            .backends
            .iter()
            .map(|b| b.capabilities().kind)
            .collect();
        let mut calibration = self.calibration_guard();
        let mut restored = vec![false; kinds.len()];
        let mut applied = 0;
        for entry in entries {
            if !entry.ratio.is_finite() || entry.ratio <= 0.0 {
                continue;
            }
            let Some(index) = kinds
                .iter()
                .enumerate()
                // lint:allow(panic-freedom) -- i enumerates kinds; restored was sized to kinds.len()
                .position(|(i, &kind)| kind == entry.kind && !restored[i])
            else {
                continue;
            };
            if let Some(c) = calibration.get_mut(index) {
                c.ratio = entry.ratio.clamp(lo, hi);
                c.samples = entry.samples.max(1);
                c.degraded = entry.degraded;
                // lint:allow(panic-freedom) -- index came from position() over kinds, same length
                restored[index] = true;
                applied += 1;
            }
        }
        applied
    }

    /// Routes and runs a batch, selecting per request.
    ///
    /// # Errors
    ///
    /// As [`Router::query`]; fails fast on the first error.
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Result<Vec<QueryOutcome>> {
        reqs.iter().map(|req| self.query(req)).collect()
    }
}

fn count_violations(estimate: &CostEstimate, budget: &super::QueryBudget) -> usize {
    let mut violations = 0;
    if let Some(ms) = budget.max_latency_ms {
        if estimate.latency_ns > ms * 1e6 {
            violations += 1;
        }
    }
    if let Some(bytes) = budget.max_memory_bytes {
        if estimate.peak_memory_bytes > bytes {
            violations += 1;
        }
    }
    if let Some(precision) = budget.min_precision {
        if estimate.expected_precision + 1e-12 < precision {
            violations += 1;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::super::{
        BackendCaps, CostEstimate, ExactPower, LocalPpr, MonteCarlo, PprBackend, QueryBudget,
        QueryOutcome, QueryStats,
    };
    use super::*;
    use crate::params::PprParams;
    use crate::quantized::PrecisionClass;
    use crate::workspace::QueryWorkspace;
    use meloppr_graph::generators;

    #[test]
    fn empty_router_reports_no_backend() {
        let router = Router::new();
        let err = router.select(&QueryRequest::new(0)).unwrap_err();
        assert!(matches!(
            err,
            PprError::Backend(BackendError::NoBackendAvailable { .. })
        ));
    }

    #[test]
    fn unconstrained_requests_prefer_precision_then_speed() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_backend(Box::new(MonteCarlo::new(&g, params, 500, 1).unwrap()));
        let route = router.select(&QueryRequest::new(0)).unwrap();
        // Both exact backends tie at precision 1.0; the ball-local one is
        // cheaper on this small graph or equal — either exact backend is
        // acceptable, Monte-Carlo is not.
        assert!(route.fits_budget);
        assert_ne!(route.kind, BackendKind::MonteCarlo);
        assert_eq!(route.estimate.expected_precision, 1.0);
    }

    #[test]
    fn query_routes_and_runs() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new().with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        let outcome = router.query(&QueryRequest::new(0)).unwrap();
        assert_eq!(outcome.ranking.len(), 5);
        let batch = router
            .query_batch(&[QueryRequest::new(0), QueryRequest::new(1)])
            .unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn impossible_budget_falls_back_best_effort() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        let req = QueryRequest::new(0).with_budget(QueryBudget {
            max_latency_ms: Some(0.0),
            max_memory_bytes: Some(1),
            min_precision: Some(1.0),
            precision: None,
        });
        let route = router.select(&req).unwrap();
        assert!(!route.fits_budget);
        // Still runnable.
        assert!(router.query(&req).is_ok());
    }

    #[test]
    fn estimate_failures_surface_in_routing_error() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        // An alpha override that no backend can validate: the underlying
        // reason must appear in the NoBackendAvailable message.
        let err = router
            .select(&QueryRequest::new(0).with_alpha(1.5))
            .unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("alpha"),
            "unhelpful routing error: {message}"
        );
        assert!(
            message.contains("exact-power"),
            "missing backend name: {message}"
        );
    }

    #[test]
    fn observe_updates_ewma_and_ignores_garbage() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_self_calibration(true);
        assert_eq!(router.calibration_ratio(0), (1.0, 0));
        // First observation replaces the prior outright.
        router.observe(0, 2.0e6, 1.0e6);
        let (ratio, samples) = router.calibration_ratio(0);
        assert!((ratio - 2.0).abs() < 1e-12);
        assert_eq!(samples, 1);
        // Later observations move 30 % of the way.
        router.observe(0, 1.0e6, 1.0e6);
        let (ratio, samples) = router.calibration_ratio(0);
        assert!((ratio - (0.7 * 2.0 + 0.3 * 1.0)).abs() < 1e-12);
        assert_eq!(samples, 2);
        // Garbage observations are ignored.
        router.observe(0, f64::NAN, 1.0);
        router.observe(0, -1.0, 1.0);
        router.observe(0, 1.0, 0.0);
        router.observe(7, 1.0, 1.0); // out-of-range index
        assert_eq!(router.calibration_ratio(0).1, 2);
        // Out-of-range queries report the neutral prior.
        assert_eq!(router.calibration_ratio(7), (1.0, 0));
    }

    #[test]
    fn calibration_scales_selection_estimates() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_self_calibration(true);
        let req = QueryRequest::new(0);
        let raw = router.backends()[0].estimate(&req).unwrap().latency_ns;
        router.observe(0, 10.0, 1.0); // observed 10x slower than predicted
        let route = router.select(&req).unwrap();
        assert!(
            (route.estimate.latency_ns - raw * 10.0).abs() < raw * 1e-9,
            "calibrated {} vs raw {raw}",
            route.estimate.latency_ns
        );
    }

    #[test]
    fn degradation_observations_inflate_the_ratio() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_self_calibration(true);
        // First degradation seeds the EWMA with ratio × penalty.
        router.observe_degradation(0);
        let (ratio, samples) = router.calibration_ratio(0);
        assert!((ratio - DEGRADATION_PENALTY).abs() < 1e-12);
        assert_eq!(samples, 1);
        // Repeated degradation compounds monotonically.
        let mut last = ratio;
        for _ in 0..10 {
            router.observe_degradation(0);
            let (next, _) = router.calibration_ratio(0);
            assert!(next > last, "penalty did not compound: {next} vs {last}");
            last = next;
        }
        assert_eq!(router.calibration_entries()[0].degraded, 11);
        // Out-of-range indices are ignored.
        router.observe_degradation(9);
    }

    #[test]
    fn calibration_entries_roundtrip_and_skip_garbage() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let build = || {
            Router::new()
                .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
                .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
                .with_self_calibration(true)
        };
        let warm = build();
        warm.observe(0, 5.0e6, 1.0e6);
        warm.observe(1, 1.0e6, 2.0e6);
        warm.observe_degradation(1);
        let entries = warm.calibration_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, BackendKind::ExactPower);
        assert_eq!(entries[1].degraded, 1);

        let fresh = build();
        assert_eq!(fresh.restore_calibration(&entries), 2);
        assert_eq!(fresh.calibration_ratio(0), warm.calibration_ratio(0));
        assert_eq!(fresh.calibration_ratio(1), warm.calibration_ratio(1));
        assert_eq!(fresh.calibration_entries(), entries);

        // Unknown kinds and garbage ratios are skipped, never panic.
        let fresh = build();
        let applied = fresh.restore_calibration(&[
            CalibrationEntry {
                kind: BackendKind::FpgaHybrid,
                ratio: 3.0,
                samples: 2,
                degraded: 0,
            },
            CalibrationEntry {
                kind: BackendKind::LocalPpr,
                ratio: f64::NAN,
                samples: 2,
                degraded: 0,
            },
            CalibrationEntry {
                kind: BackendKind::LocalPpr,
                ratio: 4.0,
                samples: 0,
                degraded: 0,
            },
        ]);
        assert_eq!(applied, 1);
        // samples is floored at 1 so the next observation refines, not
        // replaces, the restored ratio.
        assert_eq!(fresh.calibration_ratio(1), (4.0, 1));
        assert_eq!(fresh.calibration_ratio(0), (1.0, 0));
    }

    /// A stub backend that fails its first `failures` queries with a
    /// typed internal error and succeeds thereafter — the minimal
    /// transient-fault model for failover and breaker tests.
    struct Flaky {
        kind: BackendKind,
        latency_ns: f64,
        failures_left: AtomicU64,
    }

    impl Flaky {
        fn new(kind: BackendKind, latency_ns: f64, failures: u64) -> Self {
            Flaky {
                kind,
                latency_ns,
                failures_left: AtomicU64::new(failures),
            }
        }
    }

    impl PprBackend for Flaky {
        fn capabilities(&self) -> BackendCaps {
            BackendCaps {
                kind: self.kind,
                exact: false,
                deterministic: true,
                accelerated: false,
                batch_aware: false,
            }
        }

        fn estimate(&self, _req: &QueryRequest) -> Result<CostEstimate> {
            Ok(CostEstimate {
                latency_ns: self.latency_ns,
                peak_memory_bytes: 1,
                expected_precision: 1.0,
            })
        }

        fn query_with(
            &self,
            _req: &QueryRequest,
            _workspace: &mut QueryWorkspace,
        ) -> Result<QueryOutcome> {
            let remaining = self.failures_left.load(Ordering::SeqCst);
            if remaining > 0 {
                self.failures_left.store(remaining - 1, Ordering::SeqCst);
                return Err(PprError::Backend(BackendError::Internal {
                    reason: format!("flaky {} refused the query", self.kind),
                }));
            }
            Ok(QueryOutcome {
                ranking: vec![(0, 1.0)],
                stats: QueryStats {
                    backend: self.kind,
                    stages: Vec::new(),
                    total_diffusions: 0,
                    bfs_edges_scanned: 0,
                    diffusion_edge_updates: 0,
                    random_walk_steps: 0,
                    nodes_touched: 0,
                    peak_memory_bytes: 0,
                    peak_task_memory_bytes: 0,
                    aggregate_entries: 0,
                    table_evictions: 0,
                    memory_limited: false,
                    precision_class: PrecisionClass::Exact64,
                    latency_estimate_ns: Some(self.latency_ns),
                    host_latency_ns: None,
                },
            })
        }
    }

    #[test]
    fn failover_reroutes_backend_errors_and_counts_them() {
        // The flaky backend is far cheaper, so it is always routed
        // first; its one failure must fail over to the reliable one.
        let router = Router::new()
            .with_backend(Box::new(Flaky::new(BackendKind::LocalPpr, 1e3, 1)))
            .with_backend(Box::new(Flaky::new(BackendKind::ExactPower, 1e6, 0)));
        let (route, outcome, failovers) = router
            .query_with_failover(&QueryRequest::new(0))
            .expect("failover should rescue the query");
        assert_eq!(route.kind, BackendKind::ExactPower);
        assert_eq!(outcome.stats.backend, BackendKind::ExactPower);
        assert_eq!(failovers, 1);
        // The failure fed the flaky backend's breaker but one error is
        // not enough to trip it.
        let snaps = router.breaker_snapshots();
        assert_eq!(snaps[0].state, BreakerState::Closed);
        assert_eq!(snaps[0].trips, 0);
        assert!(snaps[0].error_ewma > 0.0);
        assert_eq!(snaps[1].state, BreakerState::Closed);
        assert!((snaps[1].error_ewma - 0.0).abs() < 1e-12);
    }

    #[test]
    fn failover_stops_when_no_alternative_exists() {
        let router =
            Router::new().with_backend(Box::new(Flaky::new(BackendKind::LocalPpr, 1e3, u64::MAX)));
        let err = router
            .query_with_failover(&QueryRequest::new(0))
            .unwrap_err();
        assert!(err.to_string().contains("refused the query"), "{err}");
    }

    #[test]
    fn breaker_trips_open_then_half_open_probe_recloses() {
        let router = Router::new()
            .with_backend(Box::new(Flaky::new(BackendKind::LocalPpr, 1e3, 2)))
            .with_backend(Box::new(Flaky::new(BackendKind::ExactPower, 1e6, 0)))
            .with_breaker_cooldown(Duration::from_millis(10));
        // Two consecutive errors trip the cheap backend's breaker open.
        for _ in 0..2 {
            let req = QueryRequest::new(0);
            let route = router.select(&req).unwrap();
            assert_eq!(route.kind, BackendKind::LocalPpr);
            assert!(router.run_attempt(&req, &route).is_err());
        }
        let snap = router.breaker_snapshots()[0];
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.trips, 1);
        // While open, selection skips it despite the cheaper estimate.
        let route = router.select(&QueryRequest::new(0)).unwrap();
        assert_eq!(route.kind, BackendKind::ExactPower);
        // After the cooldown the breaker half-opens, the probe query is
        // admitted (the backend has healed) and success re-closes it.
        std::thread::sleep(Duration::from_millis(20));
        let req = QueryRequest::new(0);
        let route = router.select(&req).unwrap();
        assert_eq!(route.kind, BackendKind::LocalPpr);
        assert!(router.run_attempt(&req, &route).is_ok());
        let snap = router.breaker_snapshots()[0];
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.trips, 1);
        assert!((snap.error_ewma - 0.0).abs() < 1e-12);
    }

    #[test]
    fn open_breaker_never_refuses_the_last_backend() {
        // Availability over purity: when every candidate is
        // breaker-open, selection drops the breaker filter instead of
        // shedding the request, and a forced-through success re-closes.
        let router =
            Router::new().with_backend(Box::new(Flaky::new(BackendKind::LocalPpr, 1e3, 2)));
        for _ in 0..2 {
            assert!(router.query_routed(&QueryRequest::new(0)).is_err());
        }
        assert_eq!(router.breaker_snapshots()[0].state, BreakerState::Open);
        let (route, _, failovers) = router.query_with_failover(&QueryRequest::new(0)).unwrap();
        assert_eq!(route.kind, BackendKind::LocalPpr);
        assert_eq!(failovers, 0);
        assert_eq!(router.breaker_snapshots()[0].state, BreakerState::Closed);
    }

    #[test]
    fn breaker_state_round_trips_through_display() {
        for state in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ] {
            assert_eq!(state.to_string().parse::<BreakerState>(), Ok(state));
        }
        assert!("ajar".parse::<BreakerState>().is_err());
    }

    #[test]
    fn debug_lists_backend_kinds() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new().with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        assert!(format!("{router:?}").contains("LocalPpr"));
    }
}
