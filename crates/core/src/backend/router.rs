//! Per-request backend selection from capabilities and cost estimates,
//! with optional self-calibration from observed query latency.

use std::sync::Mutex;
use std::time::Instant;

use super::{BackendKind, CostEstimate, PprBackend, QueryOutcome, QueryRequest};
use crate::error::{BackendError, PprError, Result};

/// EWMA smoothing factor for latency calibration: each observation moves
/// the correction ratio 30 % of the way toward the new sample, so a few
/// repeated queries converge while one outlier cannot flip routing.
const CALIBRATION_BETA: f64 = 0.3;

/// Observed/predicted ratios outside this range are clamped before entering
/// the EWMA (wall-clock noise on microsecond queries can be extreme).
const CALIBRATION_RATIO_RANGE: (f64, f64) = (1e-6, 1e6);

/// Every `memory_limited` outcome folds a `ratio × 1.25` sample into the
/// backend's EWMA (see [`Router::observe_degradation`]): one degradation
/// nudges the predicted latency up ~7.5 %, repeated degradation compounds
/// until budgeted traffic steers to a backend that serves full-fidelity
/// answers instead.
const DEGRADATION_PENALTY: f64 = 1.25;

/// Per-backend latency correction state.
#[derive(Debug, Clone, Copy)]
struct LatencyCalibration {
    /// EWMA of observed/predicted latency ratios (1.0 = trust the model).
    ratio: f64,
    /// Observations folded in so far.
    samples: usize,
    /// `memory_limited` degradations folded in so far.
    degraded: usize,
}

impl Default for LatencyCalibration {
    fn default() -> Self {
        LatencyCalibration {
            ratio: 1.0,
            samples: 0,
            degraded: 0,
        }
    }
}

/// One backend's persistable calibration state, keyed by
/// [`BackendKind`] so it survives process restarts even when unrelated
/// backends are added or removed (see
/// [`persist`](super::persist)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationEntry {
    /// Which solver this calibration belongs to.
    pub kind: BackendKind,
    /// EWMA of observed/predicted latency ratios.
    pub ratio: f64,
    /// Latency observations folded in.
    pub samples: usize,
    /// `memory_limited` degradations folded in.
    pub degraded: usize,
}

/// The router's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    /// Index of the chosen backend in the router's registration order.
    pub index: usize,
    /// Which solver that is.
    pub kind: BackendKind,
    /// The estimate the decision was based on.
    pub estimate: CostEstimate,
    /// Whether the chosen backend satisfies every budget constraint
    /// (`false` means best-effort fallback: nothing fit).
    pub fits_budget: bool,
}

/// Routes each [`QueryRequest`] to the most suitable registered backend.
///
/// Policy, evaluated against each backend's
/// [`estimate`](PprBackend::estimate) for the concrete request:
///
/// 1. Backends whose estimate satisfies every constraint of the request's
///    [`QueryBudget`](super::QueryBudget) are *admissible*.
/// 2. Among admissible backends the router picks the highest expected
///    precision, breaking ties by lower predicted latency, then by
///    registration order.
/// 3. If nothing is admissible it falls back to the backend violating the
///    fewest constraints (ties again by latency, then order) and reports
///    `fits_budget = false` in the [`Route`].
///
/// With no budget at all, rule 2 therefore serves the most precise
/// backend that is cheapest to run — and different budget hints
/// demonstrably select different solvers (see the `router` integration
/// tests).
///
/// # Self-calibration
///
/// Backend latency estimates are analytic models; real machines disagree
/// with them. With [`Router::with_self_calibration`] enabled, every
/// served query feeds its observed latency (the backend-reported
/// [`QueryStats::latency_estimate_ns`](super::QueryStats) when present,
/// wall clock otherwise) back into a per-backend EWMA of the
/// observed/predicted ratio, and [`Router::select`] scales each latency
/// estimate by its backend's ratio before matching budgets. Repeated
/// budgeted queries therefore converge onto the solver that actually
/// meets the deadline, even when the static model is off by orders of
/// magnitude (see the `router` integration tests). Calibration is off by
/// default: uncalibrated routing stays deterministic run-to-run.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{
///     ExactPower, LocalPpr, MonteCarlo, PprBackend, QueryRequest, Router,
/// };
/// use meloppr_core::PprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let params = PprParams::new(0.85, 4, 5)?;
/// let router = Router::new()
///     .with_backend(Box::new(ExactPower::new(&g, params)?))
///     .with_backend(Box::new(LocalPpr::new(&g, params)?))
///     .with_backend(Box::new(MonteCarlo::new(&g, params, 2000, 42)?));
/// let outcome = router.query(&QueryRequest::new(0))?;
/// assert_eq!(outcome.ranking.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Router<'g> {
    backends: Vec<Box<dyn PprBackend + Sync + 'g>>,
    calibrate: bool,
    calibration: Mutex<Vec<LatencyCalibration>>,
}

impl std::fmt::Debug for Router<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<BackendKind> = self
            .backends
            .iter()
            .map(|b| b.capabilities().kind)
            .collect();
        f.debug_struct("Router").field("backends", &kinds).finish()
    }
}

impl<'g> Router<'g> {
    /// An empty router (self-calibration off).
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a backend (builder style). Registration order is the
    /// final tie-breaker in routing. Backends must be `Sync`: a router
    /// is shared by reference across serving threads (the
    /// [`server`](crate::server) workers, batch executors).
    #[must_use]
    pub fn with_backend(mut self, backend: Box<dyn PprBackend + Sync + 'g>) -> Self {
        self.push(backend);
        self
    }

    /// Enables or disables latency self-calibration (builder style). See
    /// the type-level docs.
    #[must_use]
    pub fn with_self_calibration(mut self, enabled: bool) -> Self {
        self.calibrate = enabled;
        self
    }

    /// Registers a backend.
    pub fn push(&mut self, backend: Box<dyn PprBackend + Sync + 'g>) {
        self.backends.push(backend);
        self.calibration
            .lock()
            .expect("calibration poisoned")
            .push(LatencyCalibration::default());
    }

    /// The registered backends, in registration order.
    pub fn backends(&self) -> &[Box<dyn PprBackend + Sync + 'g>] {
        &self.backends
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Prepares every backend (probes, caches, formats).
    ///
    /// # Errors
    ///
    /// Propagates the first backend preparation failure.
    pub fn prepare(&mut self) -> Result<()> {
        for backend in &mut self.backends {
            backend.prepare()?;
        }
        Ok(())
    }

    /// Chooses the backend for `req` without running the query.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::NoBackendAvailable`] (inside
    /// [`PprError::Backend`]) if no backend is registered or every
    /// estimate fails.
    pub fn select(&self, req: &QueryRequest) -> Result<Route> {
        if self.backends.is_empty() {
            return Err(PprError::Backend(BackendError::NoBackendAvailable {
                reason: "router has no registered backends".into(),
            }));
        }
        let budget = &req.budget;
        let ratios: Vec<f64> = if self.calibrate {
            self.calibration
                .lock()
                .expect("calibration poisoned")
                .iter()
                .map(|c| c.ratio)
                .collect()
        } else {
            Vec::new()
        };
        let mut best: Option<(Route, usize)> = None; // (route, violations)
        let mut estimate_failures: Vec<String> = Vec::new();
        for (index, backend) in self.backends.iter().enumerate() {
            let mut estimate = match backend.estimate(req) {
                Ok(est) => est,
                // A backend that cannot even estimate the request (e.g.
                // invalid overrides for it) is not a candidate, but its
                // reason must survive into the routing error.
                Err(err) => {
                    estimate_failures.push(format!("{}: {err}", backend.capabilities().kind));
                    continue;
                }
            };
            if let Some(&ratio) = ratios.get(index) {
                estimate.latency_ns *= ratio;
            }
            let violations = count_violations(&estimate, budget);
            let candidate = Route {
                index,
                kind: backend.capabilities().kind,
                estimate,
                fits_budget: violations == 0,
            };
            let better = match &best {
                None => true,
                Some((incumbent, inc_violations)) => {
                    match violations.cmp(inc_violations) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => {
                            if violations == 0 {
                                // Admissible: maximize precision, then
                                // minimize latency.
                                (
                                    -candidate.estimate.expected_precision,
                                    candidate.estimate.latency_ns,
                                ) < (
                                    -incumbent.estimate.expected_precision,
                                    incumbent.estimate.latency_ns,
                                )
                            } else {
                                // Best effort: minimize latency.
                                candidate.estimate.latency_ns < incumbent.estimate.latency_ns
                            }
                        }
                    }
                }
            };
            if better {
                best = Some((candidate, violations));
            }
        }
        best.map(|(route, _)| route).ok_or_else(|| {
            PprError::Backend(BackendError::NoBackendAvailable {
                reason: format!(
                    "every registered backend failed to estimate the request: [{}]",
                    estimate_failures.join("; ")
                ),
            })
        })
    }

    /// Routes and runs one query. With self-calibration enabled, the
    /// observed latency is folded back into the chosen backend's
    /// correction ratio.
    ///
    /// # Errors
    ///
    /// As [`Router::select`], plus any error from the chosen backend.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryOutcome> {
        self.query_routed(req).map(|(_, outcome)| outcome)
    }

    /// As [`Router::query`], also returning the [`Route`] the decision
    /// was based on — serving layers use it for per-backend telemetry
    /// and degraded-plan accounting without a second `select()`.
    ///
    /// With self-calibration enabled this additionally feeds two signals
    /// back into the chosen backend's correction ratio: the observed
    /// latency (as [`Router::query`] always did), and — when the outcome
    /// reports [`QueryStats::memory_limited`](super::QueryStats) — a
    /// degradation penalty ([`Router::observe_degradation`]), so a
    /// backend that repeatedly has to shrink its plan under its byte
    /// budget gradually looks slower to the router and budgeted traffic
    /// steers toward backends that can serve the request at full
    /// fidelity.
    ///
    /// # Errors
    ///
    /// As [`Router::select`], plus any error from the chosen backend.
    pub fn query_routed(&self, req: &QueryRequest) -> Result<(Route, QueryOutcome)> {
        let route = self.select(req)?;
        if !self.calibrate {
            let outcome = self.backends[route.index].query(req)?;
            return Ok((route, outcome));
        }
        // The observation is measured against the *uncalibrated*
        // prediction; undo the ratio select() applied rather than paying
        // a second estimate() call (ratios are clamped away from zero).
        let (ratio, _) = self.calibration_ratio(route.index);
        let predicted_ns = route.estimate.latency_ns / ratio;
        let started = Instant::now();
        let outcome = self.backends[route.index].query(req)?;
        let observed_ns = outcome
            .stats
            .latency_estimate_ns
            .unwrap_or_else(|| started.elapsed().as_nanos() as f64);
        self.observe(route.index, observed_ns, predicted_ns);
        if outcome.stats.memory_limited {
            self.observe_degradation(route.index);
        }
        Ok((route, outcome))
    }

    /// Folds one latency observation for backend `index` into its
    /// correction ratio (EWMA of observed/predicted). Called
    /// automatically by [`Router::query`] under self-calibration; exposed
    /// so serving layers measuring latency themselves can feed it back.
    ///
    /// Non-finite or non-positive inputs are ignored.
    pub fn observe(&self, index: usize, observed_ns: f64, predicted_ns: f64) {
        if !(observed_ns.is_finite() && predicted_ns.is_finite())
            || observed_ns <= 0.0
            || predicted_ns <= 0.0
        {
            return;
        }
        let (lo, hi) = CALIBRATION_RATIO_RANGE;
        let sample = (observed_ns / predicted_ns).clamp(lo, hi);
        let mut calibration = self.calibration.lock().expect("calibration poisoned");
        if let Some(c) = calibration.get_mut(index) {
            c.ratio = if c.samples == 0 {
                sample // first observation replaces the 1.0 prior outright
            } else {
                (1.0 - CALIBRATION_BETA) * c.ratio + CALIBRATION_BETA * sample
            };
            c.samples += 1;
        }
    }

    /// Folds one **degradation** observation for backend `index` into
    /// its correction ratio: the backend served the query, but had to
    /// deterministically shrink its plan to fit a byte budget
    /// (`memory_limited`). The EWMA absorbs a `ratio ×`
    /// `DEGRADATION_PENALTY` (1.25) sample, so each degradation inflates the
    /// backend's predicted latency a little and *repeated* degradation
    /// compounds until budgeted routing steers to a cheaper (or
    /// roomier) backend. Called automatically by
    /// [`Router::query_routed`] under self-calibration; exposed for
    /// serving layers that execute backends themselves.
    pub fn observe_degradation(&self, index: usize) {
        let (lo, hi) = CALIBRATION_RATIO_RANGE;
        let mut calibration = self.calibration.lock().expect("calibration poisoned");
        if let Some(c) = calibration.get_mut(index) {
            let sample = (c.ratio * DEGRADATION_PENALTY).clamp(lo, hi);
            c.ratio = if c.samples == 0 {
                sample
            } else {
                (1.0 - CALIBRATION_BETA) * c.ratio + CALIBRATION_BETA * sample
            };
            c.samples += 1;
            c.degraded += 1;
        }
    }

    /// The current observed/predicted latency correction ratio of backend
    /// `index` (1.0 until the first observation), with the number of
    /// observations folded in.
    pub fn calibration_ratio(&self, index: usize) -> (f64, usize) {
        let calibration = self.calibration.lock().expect("calibration poisoned");
        calibration
            .get(index)
            .map(|c| (c.ratio, c.samples))
            .unwrap_or((1.0, 0))
    }

    /// Snapshot of every backend's calibration state, in registration
    /// order — the in-memory half of calibration persistence (see
    /// [`persist`](super::persist)).
    pub fn calibration_entries(&self) -> Vec<CalibrationEntry> {
        let calibration = self.calibration.lock().expect("calibration poisoned");
        self.backends
            .iter()
            .zip(calibration.iter())
            .map(|(backend, c)| CalibrationEntry {
                kind: backend.capabilities().kind,
                ratio: c.ratio,
                samples: c.samples,
                degraded: c.degraded,
            })
            .collect()
    }

    /// Re-applies persisted calibration entries, matching each entry to
    /// the first not-yet-restored backend of the same [`BackendKind`]
    /// (registration order). Entries for kinds this router does not
    /// register, or with non-finite/non-positive ratios, are skipped —
    /// stale state never panics. Returns how many entries were applied.
    pub fn restore_calibration(&self, entries: &[CalibrationEntry]) -> usize {
        let (lo, hi) = CALIBRATION_RATIO_RANGE;
        let kinds: Vec<BackendKind> = self
            .backends
            .iter()
            .map(|b| b.capabilities().kind)
            .collect();
        let mut calibration = self.calibration.lock().expect("calibration poisoned");
        let mut restored = vec![false; kinds.len()];
        let mut applied = 0;
        for entry in entries {
            if !entry.ratio.is_finite() || entry.ratio <= 0.0 {
                continue;
            }
            let Some(index) = kinds
                .iter()
                .enumerate()
                .position(|(i, &kind)| kind == entry.kind && !restored[i])
            else {
                continue;
            };
            if let Some(c) = calibration.get_mut(index) {
                c.ratio = entry.ratio.clamp(lo, hi);
                c.samples = entry.samples.max(1);
                c.degraded = entry.degraded;
                restored[index] = true;
                applied += 1;
            }
        }
        applied
    }

    /// Routes and runs a batch, selecting per request.
    ///
    /// # Errors
    ///
    /// As [`Router::query`]; fails fast on the first error.
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Result<Vec<QueryOutcome>> {
        reqs.iter().map(|req| self.query(req)).collect()
    }
}

fn count_violations(estimate: &CostEstimate, budget: &super::QueryBudget) -> usize {
    let mut violations = 0;
    if let Some(ms) = budget.max_latency_ms {
        if estimate.latency_ns > ms * 1e6 {
            violations += 1;
        }
    }
    if let Some(bytes) = budget.max_memory_bytes {
        if estimate.peak_memory_bytes > bytes {
            violations += 1;
        }
    }
    if let Some(precision) = budget.min_precision {
        if estimate.expected_precision + 1e-12 < precision {
            violations += 1;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::super::{ExactPower, LocalPpr, MonteCarlo, QueryBudget};
    use super::*;
    use crate::params::PprParams;
    use meloppr_graph::generators;

    #[test]
    fn empty_router_reports_no_backend() {
        let router = Router::new();
        let err = router.select(&QueryRequest::new(0)).unwrap_err();
        assert!(matches!(
            err,
            PprError::Backend(BackendError::NoBackendAvailable { .. })
        ));
    }

    #[test]
    fn unconstrained_requests_prefer_precision_then_speed() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_backend(Box::new(MonteCarlo::new(&g, params, 500, 1).unwrap()));
        let route = router.select(&QueryRequest::new(0)).unwrap();
        // Both exact backends tie at precision 1.0; the ball-local one is
        // cheaper on this small graph or equal — either exact backend is
        // acceptable, Monte-Carlo is not.
        assert!(route.fits_budget);
        assert_ne!(route.kind, BackendKind::MonteCarlo);
        assert_eq!(route.estimate.expected_precision, 1.0);
    }

    #[test]
    fn query_routes_and_runs() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new().with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        let outcome = router.query(&QueryRequest::new(0)).unwrap();
        assert_eq!(outcome.ranking.len(), 5);
        let batch = router
            .query_batch(&[QueryRequest::new(0), QueryRequest::new(1)])
            .unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn impossible_budget_falls_back_best_effort() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        let req = QueryRequest::new(0).with_budget(QueryBudget {
            max_latency_ms: Some(0.0),
            max_memory_bytes: Some(1),
            min_precision: Some(1.0),
            precision: None,
        });
        let route = router.select(&req).unwrap();
        assert!(!route.fits_budget);
        // Still runnable.
        assert!(router.query(&req).is_ok());
    }

    #[test]
    fn estimate_failures_surface_in_routing_error() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        // An alpha override that no backend can validate: the underlying
        // reason must appear in the NoBackendAvailable message.
        let err = router
            .select(&QueryRequest::new(0).with_alpha(1.5))
            .unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("alpha"),
            "unhelpful routing error: {message}"
        );
        assert!(
            message.contains("exact-power"),
            "missing backend name: {message}"
        );
    }

    #[test]
    fn observe_updates_ewma_and_ignores_garbage() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_self_calibration(true);
        assert_eq!(router.calibration_ratio(0), (1.0, 0));
        // First observation replaces the prior outright.
        router.observe(0, 2.0e6, 1.0e6);
        let (ratio, samples) = router.calibration_ratio(0);
        assert!((ratio - 2.0).abs() < 1e-12);
        assert_eq!(samples, 1);
        // Later observations move 30 % of the way.
        router.observe(0, 1.0e6, 1.0e6);
        let (ratio, samples) = router.calibration_ratio(0);
        assert!((ratio - (0.7 * 2.0 + 0.3 * 1.0)).abs() < 1e-12);
        assert_eq!(samples, 2);
        // Garbage observations are ignored.
        router.observe(0, f64::NAN, 1.0);
        router.observe(0, -1.0, 1.0);
        router.observe(0, 1.0, 0.0);
        router.observe(7, 1.0, 1.0); // out-of-range index
        assert_eq!(router.calibration_ratio(0).1, 2);
        // Out-of-range queries report the neutral prior.
        assert_eq!(router.calibration_ratio(7), (1.0, 0));
    }

    #[test]
    fn calibration_scales_selection_estimates() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_self_calibration(true);
        let req = QueryRequest::new(0);
        let raw = router.backends()[0].estimate(&req).unwrap().latency_ns;
        router.observe(0, 10.0, 1.0); // observed 10x slower than predicted
        let route = router.select(&req).unwrap();
        assert!(
            (route.estimate.latency_ns - raw * 10.0).abs() < raw * 1e-9,
            "calibrated {} vs raw {raw}",
            route.estimate.latency_ns
        );
    }

    #[test]
    fn degradation_observations_inflate_the_ratio() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new()
            .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
            .with_self_calibration(true);
        // First degradation seeds the EWMA with ratio × penalty.
        router.observe_degradation(0);
        let (ratio, samples) = router.calibration_ratio(0);
        assert!((ratio - DEGRADATION_PENALTY).abs() < 1e-12);
        assert_eq!(samples, 1);
        // Repeated degradation compounds monotonically.
        let mut last = ratio;
        for _ in 0..10 {
            router.observe_degradation(0);
            let (next, _) = router.calibration_ratio(0);
            assert!(next > last, "penalty did not compound: {next} vs {last}");
            last = next;
        }
        assert_eq!(router.calibration_entries()[0].degraded, 11);
        // Out-of-range indices are ignored.
        router.observe_degradation(9);
    }

    #[test]
    fn calibration_entries_roundtrip_and_skip_garbage() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let build = || {
            Router::new()
                .with_backend(Box::new(ExactPower::new(&g, params).unwrap()))
                .with_backend(Box::new(LocalPpr::new(&g, params).unwrap()))
                .with_self_calibration(true)
        };
        let warm = build();
        warm.observe(0, 5.0e6, 1.0e6);
        warm.observe(1, 1.0e6, 2.0e6);
        warm.observe_degradation(1);
        let entries = warm.calibration_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, BackendKind::ExactPower);
        assert_eq!(entries[1].degraded, 1);

        let fresh = build();
        assert_eq!(fresh.restore_calibration(&entries), 2);
        assert_eq!(fresh.calibration_ratio(0), warm.calibration_ratio(0));
        assert_eq!(fresh.calibration_ratio(1), warm.calibration_ratio(1));
        assert_eq!(fresh.calibration_entries(), entries);

        // Unknown kinds and garbage ratios are skipped, never panic.
        let fresh = build();
        let applied = fresh.restore_calibration(&[
            CalibrationEntry {
                kind: BackendKind::FpgaHybrid,
                ratio: 3.0,
                samples: 2,
                degraded: 0,
            },
            CalibrationEntry {
                kind: BackendKind::LocalPpr,
                ratio: f64::NAN,
                samples: 2,
                degraded: 0,
            },
            CalibrationEntry {
                kind: BackendKind::LocalPpr,
                ratio: 4.0,
                samples: 0,
                degraded: 0,
            },
        ]);
        assert_eq!(applied, 1);
        // samples is floored at 1 so the next observation refines, not
        // replaces, the restored ratio.
        assert_eq!(fresh.calibration_ratio(1), (4.0, 1));
        assert_eq!(fresh.calibration_ratio(0), (1.0, 0));
    }

    #[test]
    fn debug_lists_backend_kinds() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let router = Router::new().with_backend(Box::new(LocalPpr::new(&g, params).unwrap()));
        assert!(format!("{router:?}").contains("LocalPpr"));
    }
}
