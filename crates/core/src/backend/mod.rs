//! The unified query API: one request/outcome model across every PPR
//! solver.
//!
//! The paper frames staged diffusion (§IV), the LocalPPR-CPU baseline
//! (Fig. 2(b)), Monte-Carlo walks (Fig. 2(a)) and the FPGA-hybrid
//! accelerator (§V) as interchangeable solvers for the same query `π_s`.
//! This module makes that interchangeability a first-class API:
//!
//! * [`PprBackend`] — the solver trait: `query_with` borrows every piece
//!   of per-query scratch from a [`QueryWorkspace`]; the provided
//!   `query` and `query_batch` reuse workspaces from the backend's
//!   [`WorkspacePool`], so steady-state serving performs no heap
//!   allocation (see the `alloc_smoke` test);
//! * [`QueryRequest`] — seed, top-`k`, per-query parameter overrides and
//!   a deadline/budget hint;
//! * [`QueryOutcome`] — the ranking plus a normalized [`QueryStats`]
//!   (per-stage breakdown, work counters, modelled memory footprint,
//!   backend-reported latency estimate);
//! * [`BatchExecutor`] — batched serving on a scoped worker pool, one
//!   workspace per worker, outcomes in request order, aggregate
//!   [`BatchStats`] per batch;
//! * the **shared-cache serving topology** — one
//!   [`ConcurrentSubgraphCache`] (sharded, lock-striped, singleflight)
//!   per graph, attached to the staged backend via
//!   [`Meloppr::with_shared_cache`] and hammered by every batch worker
//!   at once: hot balls recurring across a skewed batch are extracted
//!   once and served as zero-copy `Arc<Subgraph>` handles everywhere
//!   else. Each backend holds its own
//!   [`CacheConsumer`] handle, so when
//!   several backends or executors share one cache, every
//!   [`BatchStats::cache`] delta counts exactly that backend's own
//!   lookups (no cross-attribution), and the staged `estimate()`
//!   discounts BFS by that consumer's *windowed* hit rate — honest
//!   numbers for the budget router even under shifting traffic, with
//!   an [`AdmissionPolicy`](crate::cache::AdmissionPolicy) keeping
//!   giant one-off balls from evicting the hot residents;
//! * [`Router`] — per-request backend selection driven by
//!   [`BackendCaps`] and each backend's [`CostEstimate`] against the
//!   request's [`QueryBudget`], optionally self-calibrating its latency
//!   estimates from observed queries.
//!
//! Four backends live in this crate — [`ExactPower`], [`LocalPpr`],
//! [`MonteCarlo`] and the staged [`Meloppr`] (whose threaded and cached
//! execution variants are constructor options). The fifth, the
//! FPGA-hybrid engine, implements the same trait in
//! `meloppr_fpga::FpgaHybrid`.
//!
//! # Example
//!
//! ```
//! use meloppr_core::backend::{LocalPpr, PprBackend, QueryRequest};
//! use meloppr_core::PprParams;
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let g = generators::karate_club();
//! let backend = LocalPpr::new(&g, PprParams::new(0.85, 4, 5)?)?;
//! let outcome = backend.query(&QueryRequest::new(0))?;
//! assert_eq!(outcome.ranking.len(), 5);
//! assert_eq!(outcome.stats.total_diffusions, 1);
//! # Ok(())
//! # }
//! ```

mod batch;
mod exact;
mod local;
mod model;
mod monte_carlo;
pub mod persist;
mod router;
mod staged;

pub use batch::{BatchExecutor, BatchOutcome, BatchStats};
pub use exact::ExactPower;
pub use local::LocalPpr;
pub use model::{
    default_probe_seeds, estimate_staged_work, estimate_staged_work_with_depths, expected_selected,
    staged_precision_heuristic, LatencyModel, StagedWorkEstimate, WorkProfile,
};
pub use monte_carlo::MonteCarlo;
pub use router::{BreakerSnapshot, BreakerState, CalibrationEntry, Route, Router};
pub use staged::Meloppr;

use meloppr_graph::NodeId;

use crate::cache::{CacheConsumer, ConcurrentSubgraphCache};
use crate::error::Result;
use crate::local_ppr::LocalPprStats;
use crate::meloppr::{MelopprStats, StageStats};
use crate::params::PprParams;
use crate::quantized::PrecisionClass;
use crate::score_vec::Ranking;
use crate::workspace::{QueryWorkspace, WorkspacePool};

/// Which solver produced an outcome (or is being described).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BackendKind {
    /// Exact full-graph diffusion (ground truth, Eq. 2).
    ExactPower,
    /// Single-stage diffusion on the depth-`L` ball (`LocalPPR-CPU`).
    LocalPpr,
    /// α-decay random-walk estimation (Fig. 2(a)).
    MonteCarlo,
    /// Multi-stage MeLoPPR (§IV), sequential, parallel or cached.
    Meloppr,
    /// The simulated CPU+FPGA hybrid platform (§V).
    FpgaHybrid,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BackendKind::ExactPower => "exact-power",
            BackendKind::LocalPpr => "local-ppr",
            BackendKind::MonteCarlo => "monte-carlo",
            BackendKind::Meloppr => "meloppr",
            BackendKind::FpgaHybrid => "fpga-hybrid",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) names back — the
    /// persistence layer and wire protocol speak these strings.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "exact-power" => Ok(BackendKind::ExactPower),
            "local-ppr" => Ok(BackendKind::LocalPpr),
            "monte-carlo" => Ok(BackendKind::MonteCarlo),
            "meloppr" => Ok(BackendKind::Meloppr),
            "fpga-hybrid" => Ok(BackendKind::FpgaHybrid),
            other => Err(format!("unknown backend kind {other:?}")),
        }
    }
}

/// Per-query overrides of the backend's configured parameters.
///
/// `None` fields inherit the backend's configuration. Backends honour
/// overrides by re-deriving their effective parameters for the one query;
/// the staged engines redistribute a `length` override over their
/// configured stage count (front-loading depth, as the planner does).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParamOverrides {
    /// Override the decay factor α.
    pub alpha: Option<f64>,
    /// Override the total diffusion length `L`.
    pub length: Option<usize>,
}

/// A latency/memory/precision budget attached to a request — matched by
/// the [`Router`] against backend [`CostEstimate`]s, and (for the memory
/// bound) **enforced at run time** by the staged backend.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryBudget {
    /// Soft deadline for the query, in milliseconds (advisory: routing
    /// input only).
    pub max_latency_ms: Option<f64>,
    /// Peak working-set bound, in bytes (the paper's on-chip/edge-device
    /// constraint).
    ///
    /// This bound is **enforced, not advisory**, by the staged
    /// [`Meloppr`] backend: `query_with` models every task's working set
    /// (the extracted ball's [`cpu_task_memory`](crate::memory::cpu_task_memory)
    /// plus aggregation-table and task-queue bytes) and deterministically
    /// shrinks the ball's BFS depth until the task fits, reporting
    /// [`QueryStats::memory_limited`] whenever it had to degrade. A
    /// budgeted staged query therefore never reports
    /// [`QueryStats::peak_memory_bytes`] above this bound (unless even
    /// single-node balls cannot fit, the honest floor), and a query
    /// whose budget was never hit is bit-identical to an unbudgeted run.
    /// `estimate()` applies the same per-task byte model (evaluated at
    /// query start, before aggregation state accrues), so the router's
    /// predicted budgets agree with enforcement for the first task and
    /// are never *looser* than it — enforcement can only degrade
    /// further as the aggregation table and queue grow, which the
    /// outcome reports.
    pub max_memory_bytes: Option<usize>,
    /// Minimum acceptable expected top-`k` precision in `[0, 1]`
    /// (`Some(1.0)` demands an exact backend). Advisory: routing input
    /// only.
    pub min_precision: Option<f64>,
    /// Requested score-arithmetic precision rung for the staged host
    /// path (`None` inherits [`PrecisionClass::Exact64`]). Honoured by
    /// the staged [`Meloppr`] backend, which runs its diffusions at this
    /// width and reports the executed class in
    /// [`QueryStats::precision_class`]; the serving front-end's
    /// admission path may *degrade* this rung (before it shrinks ball
    /// depth) when a deadline or byte budget is tight.
    pub precision: Option<PrecisionClass>,
}

impl QueryBudget {
    /// A budget with no constraints (every backend is admissible).
    pub fn unconstrained() -> Self {
        QueryBudget::default()
    }

    /// Requests a score-arithmetic precision rung (see
    /// [`QueryBudget::precision`]).
    #[must_use]
    pub fn with_precision(mut self, class: PrecisionClass) -> Self {
        self.precision = Some(class);
        self
    }
}

/// One PPR query in the unified API: seed, optional top-`k` override,
/// parameter overrides and a budget hint.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::QueryRequest;
///
/// let req = QueryRequest::new(7)
///     .with_k(20)
///     .with_max_memory_bytes(64 << 10);
/// assert_eq!(req.seed, 7);
/// assert_eq!(req.k, Some(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryRequest {
    /// The personalization seed node.
    pub seed: NodeId,
    /// How many top-ranked nodes to return (`None` inherits the backend's
    /// configured `k`).
    pub k: Option<usize>,
    /// Per-query parameter overrides.
    pub overrides: ParamOverrides,
    /// Deadline/budget hint used by the [`Router`] (and available to
    /// backends).
    pub budget: QueryBudget,
}

impl QueryRequest {
    /// A request for `seed` inheriting every backend default.
    pub fn new(seed: NodeId) -> Self {
        QueryRequest {
            seed,
            ..QueryRequest::default()
        }
    }

    /// Overrides the result size `k`.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the decay factor α for this query.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.overrides.alpha = Some(alpha);
        self
    }

    /// Overrides the diffusion length `L` for this query.
    #[must_use]
    pub fn with_length(mut self, length: usize) -> Self {
        self.overrides.length = Some(length);
        self
    }

    /// Attaches a complete budget hint.
    #[must_use]
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a latency deadline (milliseconds).
    #[must_use]
    pub fn with_max_latency_ms(mut self, ms: f64) -> Self {
        self.budget.max_latency_ms = Some(ms);
        self
    }

    /// Attaches a peak-memory bound (bytes).
    #[must_use]
    pub fn with_max_memory_bytes(mut self, bytes: usize) -> Self {
        self.budget.max_memory_bytes = Some(bytes);
        self
    }

    /// Attaches a minimum expected-precision floor.
    #[must_use]
    pub fn with_min_precision(mut self, precision: f64) -> Self {
        self.budget.min_precision = Some(precision);
        self
    }

    /// Requests a score-arithmetic precision rung for the staged host
    /// path (see [`QueryBudget::precision`]).
    #[must_use]
    pub fn with_precision(mut self, class: PrecisionClass) -> Self {
        self.budget.precision = Some(class);
        self
    }

    /// The effective `PprParams` for this request given a backend's
    /// configured base parameters.
    pub fn effective_params(&self, base: &PprParams) -> Result<PprParams> {
        let params = PprParams {
            alpha: self.overrides.alpha.unwrap_or(base.alpha),
            length: self.overrides.length.unwrap_or(base.length),
            k: self.k.unwrap_or(base.k),
        };
        params.validate()?;
        Ok(params)
    }
}

/// Normalized accounting shared by every backend.
///
/// Single-stage backends report exactly one [`StageStats`] entry;
/// Monte-Carlo reports none (its work is counted in
/// [`QueryStats::random_walk_steps`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Which solver ran the query.
    pub backend: BackendKind,
    /// Per-stage breakdown, index = stage.
    pub stages: Vec<StageStats>,
    /// Total sub-graph diffusions executed.
    pub total_diffusions: usize,
    /// Adjacency entries scanned by extraction BFS.
    pub bfs_edges_scanned: usize,
    /// Adjacency entries processed by diffusion.
    pub diffusion_edge_updates: usize,
    /// Random-walk steps taken (Monte-Carlo only; each is an off-chip
    /// neighbour probe in the Fig. 2(a) cost model).
    pub random_walk_steps: usize,
    /// Ball nodes touched across all diffusions (allocation/bookkeeping
    /// cost driver).
    pub nodes_touched: usize,
    /// Modelled peak working set of the query, in bytes.
    pub peak_memory_bytes: usize,
    /// Modelled bytes of the largest *single task* (the paper's Table II
    /// working-set metric: one stage ball's sub-graph + score vectors,
    /// excluding persistent aggregation state).
    pub peak_task_memory_bytes: usize,
    /// Entries resident in the aggregation state at the end.
    pub aggregate_entries: usize,
    /// Evictions/rejections in bounded aggregation tables (0 when exact).
    pub table_evictions: usize,
    /// Whether a [`QueryBudget::max_memory_bytes`] bound forced the
    /// backend to degrade deterministically (staged backends shrink
    /// stage-ball depth until the modelled working set fits). `false`
    /// for unbudgeted queries and for budgets met without degradation —
    /// those results are bit-identical to unbudgeted runs.
    pub memory_limited: bool,
    /// Score-arithmetic precision rung the query actually executed at.
    /// [`PrecisionClass::Exact64`] for every backend except the staged
    /// [`Meloppr`] host path, which honours
    /// [`QueryBudget::precision`] (possibly degraded by the serving
    /// front-end's admission ladder) and reports the rung that ran here.
    pub precision_class: PrecisionClass,
    /// Backend-reported end-to-end latency estimate in nanoseconds
    /// (`Some` for the simulated FPGA platform, whose timing model is the
    /// measurement; `None` for native CPU backends, which are measured by
    /// wall clock or charged via cost models).
    pub latency_estimate_ns: Option<f64>,
    /// Host-side (extraction/driver) share of
    /// [`QueryStats::latency_estimate_ns`], when the backend models it —
    /// the numerator of Fig. 7's "BFS time percentage" bars.
    pub host_latency_ns: Option<f64>,
}

impl QueryStats {
    fn empty(backend: BackendKind) -> Self {
        QueryStats {
            backend,
            stages: Vec::new(),
            total_diffusions: 0,
            bfs_edges_scanned: 0,
            diffusion_edge_updates: 0,
            random_walk_steps: 0,
            nodes_touched: 0,
            peak_memory_bytes: 0,
            peak_task_memory_bytes: 0,
            aggregate_entries: 0,
            table_evictions: 0,
            memory_limited: false,
            precision_class: PrecisionClass::Exact64,
            latency_estimate_ns: None,
            host_latency_ns: None,
        }
    }

    /// Normalizes the staged engine's native stats.
    pub fn from_meloppr(stats: &MelopprStats) -> Self {
        QueryStats {
            backend: BackendKind::Meloppr,
            stages: stats.stages.clone(),
            total_diffusions: stats.total_diffusions,
            bfs_edges_scanned: stats.bfs_edges_scanned,
            diffusion_edge_updates: stats.diffusion_edge_updates,
            nodes_touched: stats.trace.iter().map(|t| t.ball_nodes).sum(),
            peak_memory_bytes: stats.peak_cpu_bytes,
            peak_task_memory_bytes: stats.peak_task_memory.total(),
            aggregate_entries: stats.aggregate_entries,
            table_evictions: stats.table_evictions,
            memory_limited: stats.memory_limited,
            precision_class: stats.precision_class,
            ..QueryStats::empty(BackendKind::Meloppr)
        }
    }

    /// Normalizes the single-stage baseline's native stats.
    pub fn from_local(stats: &LocalPprStats) -> Self {
        QueryStats {
            backend: BackendKind::LocalPpr,
            stages: vec![StageStats {
                diffusions: 1,
                candidates: 0,
                expanded: 0,
                bfs_edges_scanned: stats.bfs_edges_scanned,
                diffusion_edge_updates: stats.diffusion_edge_updates,
                max_ball_nodes: stats.ball_nodes,
                max_ball_edges: stats.ball_edges,
            }],
            total_diffusions: 1,
            bfs_edges_scanned: stats.bfs_edges_scanned,
            diffusion_edge_updates: stats.diffusion_edge_updates,
            nodes_touched: stats.ball_nodes,
            peak_memory_bytes: stats.memory.total(),
            peak_task_memory_bytes: stats.memory.total(),
            aggregate_entries: stats.ball_nodes,
            ..QueryStats::empty(BackendKind::LocalPpr)
        }
    }
}

/// Result of one unified-API query: the ranking plus normalized stats.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The top-`k` ranking `T̂(s, k)`, highest score first, ties broken by
    /// ascending node id.
    pub ranking: Ranking,
    /// Normalized accounting.
    pub stats: QueryStats,
}

/// What a backend can and cannot do — the static half of routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCaps {
    /// Which solver this is.
    pub kind: BackendKind,
    /// Whether results are exact (equal to full-graph diffusion) under
    /// the backend's current configuration.
    pub exact: bool,
    /// Whether repeated identical queries return bit-identical outcomes.
    pub deterministic: bool,
    /// Whether the backend models a hardware accelerator (its
    /// [`QueryStats::latency_estimate_ns`] is authoritative).
    pub accelerated: bool,
    /// Whether `query_batch` does better than looping `query`.
    pub batch_aware: bool,
}

/// A backend's prediction of one query's cost — the dynamic half of
/// routing, matched against [`QueryBudget`].
///
/// Estimates come from each backend's [`WorkProfile`] (probed average
/// ball growth) and [`LatencyModel`] constants; precision figures are
/// documented heuristics calibrated on the paper's Fig. 6/7 sweeps, not
/// measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Predicted end-to-end latency, nanoseconds.
    pub latency_ns: f64,
    /// Predicted peak working set, bytes.
    pub peak_memory_bytes: usize,
    /// Expected top-`k` precision in `[0, 1]` (1.0 = exact).
    pub expected_precision: f64,
}

impl CostEstimate {
    /// Whether this estimate satisfies every constraint `budget` sets.
    pub fn fits(&self, budget: &QueryBudget) -> bool {
        budget
            .max_latency_ms
            .is_none_or(|ms| self.latency_ns <= ms * 1e6)
            && budget
                .max_memory_bytes
                .is_none_or(|bytes| self.peak_memory_bytes <= bytes)
            && budget
                .min_precision
                .is_none_or(|p| self.expected_precision + 1e-12 >= p)
    }
}

/// A PPR solver behind the unified query API.
///
/// All five engines implement this trait, so serving code can hold a
/// `Vec<Box<dyn PprBackend>>` and treat solver choice as data. Rankings
/// returned through the trait are bit-identical to the corresponding
/// direct engine calls (asserted by the `backend_equivalence` test
/// suite).
///
/// # Workspaces
///
/// The required query entry point is [`PprBackend::query_with`], which
/// borrows a [`QueryWorkspace`] for all per-query scratch storage. The
/// provided [`PprBackend::query`] checks a workspace out of the backend's
/// [`WorkspacePool`] (every bundled backend keeps one), so repeated
/// queries reuse warm buffers; reusing a workspace never changes results
/// (asserted by the `workspace_reuse` test suite).
pub trait PprBackend {
    /// Static capabilities of this backend under its configuration.
    fn capabilities(&self) -> BackendCaps;

    /// One-time warm-up: probe the graph, derive formats, prime caches.
    /// Idempotent; calling `query` without `prepare` is always correct,
    /// just possibly colder.
    fn prepare(&mut self) -> Result<()> {
        Ok(())
    }

    /// Predicts the cost of `req` without running it (used by the
    /// [`Router`]).
    fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate>;

    /// Runs one query, borrowing scratch storage from `ws` wherever the
    /// backend's execution mode allows (intra-query thread pools still
    /// allocate their own per-task scratch — see
    /// [`Meloppr::with_threads`]).
    ///
    /// The workspace may be fresh or reused from any prior query on any
    /// backend; outcomes are identical either way.
    fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome>;

    /// The backend's shared workspace pool, if it keeps one. Backends
    /// returning `Some` get allocation-free steady-state [`PprBackend::query`]
    /// and [`PprBackend::query_batch`] for free.
    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        None
    }

    /// The concurrent sub-graph cache this backend extracts through, if
    /// any (see [`Meloppr::with_shared_cache`]). Exposes the
    /// cache-global view (capacity, residency, whole-cache counters).
    fn shared_cache(&self) -> Option<&ConcurrentSubgraphCache> {
        None
    }

    /// This backend's own [`CacheConsumer`] handle on its shared cache,
    /// if it keeps one. The [`BatchExecutor`] brackets each batch with
    /// snapshots of **this** consumer's counters and reports the delta in
    /// [`BatchStats::cache`], so a batch's cache accounting counts
    /// exactly the batch's own lookups even when other executors or
    /// backends hammer the same cache concurrently. Backends that
    /// return a `shared_cache` should return its consumer here too;
    /// otherwise the executor falls back to (cross-attributable)
    /// global-counter deltas.
    fn cache_consumer(&self) -> Option<&CacheConsumer> {
        None
    }

    /// Runs one query, reusing a pooled workspace when the backend has
    /// one.
    fn query(&self, req: &QueryRequest) -> Result<QueryOutcome> {
        match self.workspace_pool() {
            Some(pool) => {
                let mut ws = pool.acquire();
                let outcome = self.query_with(req, &mut ws);
                pool.release(ws);
                outcome
            }
            None => self.query_with(req, &mut QueryWorkspace::new()),
        }
    }

    /// Runs a batch of queries sequentially through **one** reused
    /// workspace, returning outcomes in request order. Fails fast on the
    /// first error.
    ///
    /// For multi-worker execution with one workspace per worker and
    /// aggregate accounting, drive the backend through a
    /// [`BatchExecutor`].
    fn query_batch(&self, reqs: &[QueryRequest]) -> Result<Vec<QueryOutcome>> {
        match self.workspace_pool() {
            Some(pool) => {
                let mut ws = pool.acquire();
                let outcomes = reqs
                    .iter()
                    .map(|req| self.query_with(req, &mut ws))
                    .collect();
                pool.release(ws);
                outcomes
            }
            None => {
                let mut ws = QueryWorkspace::new();
                reqs.iter()
                    .map(|req| self.query_with(req, &mut ws))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_composes() {
        let req = QueryRequest::new(3)
            .with_k(7)
            .with_alpha(0.5)
            .with_length(4)
            .with_max_latency_ms(2.0)
            .with_min_precision(0.9);
        assert_eq!(req.seed, 3);
        assert_eq!(req.k, Some(7));
        assert_eq!(req.overrides.alpha, Some(0.5));
        assert_eq!(req.overrides.length, Some(4));
        assert_eq!(req.budget.max_latency_ms, Some(2.0));
        assert_eq!(req.budget.min_precision, Some(0.9));
    }

    #[test]
    fn effective_params_merge_and_validate() {
        let base = PprParams::new(0.85, 6, 200).unwrap();
        let req = QueryRequest::new(0).with_k(10).with_length(4);
        let p = req.effective_params(&base).unwrap();
        assert_eq!((p.alpha, p.length, p.k), (0.85, 4, 10));
        // Invalid overrides are rejected, not silently clamped.
        assert!(QueryRequest::new(0)
            .with_alpha(1.5)
            .effective_params(&base)
            .is_err());
    }

    #[test]
    fn cost_estimate_budget_matching() {
        let est = CostEstimate {
            latency_ns: 5e6,
            peak_memory_bytes: 1000,
            expected_precision: 0.9,
        };
        assert!(est.fits(&QueryBudget::unconstrained()));
        assert!(est.fits(&QueryBudget {
            max_latency_ms: Some(10.0),
            max_memory_bytes: Some(2000),
            min_precision: Some(0.9),
            precision: None,
        }));
        assert!(!est.fits(&QueryBudget {
            max_latency_ms: Some(1.0),
            ..QueryBudget::default()
        }));
        assert!(!est.fits(&QueryBudget {
            max_memory_bytes: Some(999),
            ..QueryBudget::default()
        }));
        assert!(!est.fits(&QueryBudget {
            min_precision: Some(0.95),
            ..QueryBudget::default()
        }));
    }

    #[test]
    fn backend_kind_display_names() {
        assert_eq!(BackendKind::ExactPower.to_string(), "exact-power");
        assert_eq!(BackendKind::FpgaHybrid.to_string(), "fpga-hybrid");
    }
}
