//! The staged MeLoPPR engine behind the unified API.

use std::sync::{Arc, Mutex};

use meloppr_graph::{GraphView, NodeId};

use super::{
    estimate_staged_work_with_depths, staged_precision_heuristic, BackendCaps, BackendKind,
    CostEstimate, LatencyModel, ParamOverrides, PprBackend, QueryOutcome, QueryRequest, QueryStats,
    WorkProfile,
};
use crate::cache::{CacheConsumer, ConcurrentSubgraphCache, SubgraphCache, DEFAULT_HIT_WINDOW};
use crate::error::{PprError, Result};
use crate::meloppr::{staged_query_impl, BallSource, MelopprOutcome, MemoryBudget};
use crate::memory::cpu_task_memory_width;
use crate::parallel::parallel_query_impl;
use crate::params::MelopprParams;
use crate::quantized::PrecisionClass;
use crate::selection::SelectionStrategy;
use crate::workspace::{QueryWorkspace, WorkspacePool};

/// Relative cost of serving a ball from the cold tier (one positioned
/// index read plus compact decode) versus extracting it with a live
/// BFS: strictly between a RAM hit (0.0, free) and a miss (1.0, the
/// full BFS charge). Feeds the `estimate()` BFS term so routing prices
/// a tiered cache between all-RAM and all-miss serving.
const COLD_HIT_COST_FACTOR: f64 = 0.35;

/// Multi-stage MeLoPPR (§IV) as a backend.
///
/// Execution variants are constructor options:
///
/// * [`Meloppr::with_threads`] — stage-level parallelism inside one
///   query (bit-identical to sequential);
/// * [`Meloppr::with_cache`] — a private LRU sub-graph cache reused
///   across this backend's queries (hits charge zero BFS work);
/// * [`Meloppr::with_shared_cache`] — the serving topology: an
///   `Arc<ConcurrentSubgraphCache>` shared across queries, across
///   [`BatchExecutor`](super::BatchExecutor) workers, and (if desired)
///   across several backends over the same graph. Hot balls are
///   extracted once (singleflight); every other query reuses the
///   `Arc<Subgraph>` zero-copy.
///
/// All modes return identical rankings for identical requests; they
/// differ only in wall-clock and BFS work accounting (cache hits charge
/// zero BFS). With a cache attached, [`Meloppr::estimate`] discounts the
/// predicted BFS latency by the **windowed** hit rate of recent lookups
/// (`--cache-window` / [`Meloppr::with_cache_window`]), so a
/// budget-driven [`Router`](super::Router) learns that warmed caches
/// make staged queries cheaper — and un-learns it within one window when
/// traffic shifts to cold seeds.
///
/// In shared mode the backend holds its own [`CacheConsumer`] handle:
/// its lookups are attributed to *this backend* even when several
/// backends or executors share the one cache, and warm-up extractions
/// ([`Meloppr::prepare`]) bypass lookup accounting entirely so they
/// never deflate the observed rate.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{Meloppr, PprBackend, QueryRequest};
/// use meloppr_core::MelopprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let mut params = MelopprParams::paper_defaults();
/// params.ppr.k = 5;
/// let backend = Meloppr::new(&g, params)?.with_threads(4)?;
/// let outcome = backend.query(&QueryRequest::new(0))?;
/// assert_eq!(outcome.ranking.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Meloppr<'g, G: GraphView + Sync + ?Sized> {
    graph: &'g G,
    params: MelopprParams,
    threads: usize,
    cache: CacheMode,
    /// Sliding-window length for the hit rate feeding `estimate()`.
    cache_window: usize,
    profile: WorkProfile,
    latency: LatencyModel,
    pool: WorkspacePool,
}

/// Which sub-graph cache (if any) the staged backend extracts through.
#[derive(Debug, Default)]
enum CacheMode {
    /// Extract every ball fresh.
    #[default]
    None,
    /// A private single-threaded LRU, serialized behind a mutex.
    Owned(Mutex<SubgraphCache>),
    /// A concurrent cache shared across workers/backends (no serialization
    /// on the query path), with this backend's own consumer handle so its
    /// lookups are attributed to it and to nobody else.
    Shared {
        cache: Arc<ConcurrentSubgraphCache>,
        consumer: CacheConsumer,
    },
}

impl<'g, G: GraphView + Sync + ?Sized> Meloppr<'g, G> {
    /// Creates a sequential staged backend, validating `params` and
    /// probing ball growth for cost estimation.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] on invalid parameters.
    pub fn new(graph: &'g G, params: MelopprParams) -> Result<Self> {
        params.validate()?;
        let profile = WorkProfile::probe_default(graph, params.ppr.length as u32)?;
        Ok(Meloppr {
            graph,
            params,
            threads: 1,
            cache: CacheMode::None,
            cache_window: DEFAULT_HIT_WINDOW,
            profile,
            latency: LatencyModel::default(),
            pool: WorkspacePool::new(),
        })
    }

    /// Enables stage-level parallelism with `threads` workers inside
    /// each query. `1` keeps the sequential schedule.
    ///
    /// Threaded execution allocates per-task state instead of borrowing
    /// the query workspace (each stage worker needs its own scratch), so
    /// the zero-allocation steady state applies only to the sequential
    /// and cached modes. For cross-query parallelism with full workspace
    /// reuse, keep the backend sequential and drive it through a
    /// [`BatchExecutor`](super::BatchExecutor) instead.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(PprError::InvalidParams {
                reason: "thread count must be >= 1".into(),
            });
        }
        self.threads = threads;
        Ok(self)
    }

    /// Enables a private LRU sub-graph cache with `capacity` entries.
    /// Cached execution is sequential; it takes precedence over
    /// [`Meloppr::with_threads`]. For multi-worker serving use
    /// [`Meloppr::with_shared_cache`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (as [`SubgraphCache::new`] does).
    #[must_use]
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = CacheMode::Owned(Mutex::new(SubgraphCache::with_window(
            capacity,
            self.cache_window,
        )));
        self
    }

    /// Sets the sliding-window length (lookups) of the hit rate that
    /// [`Meloppr::estimate`] discounts BFS by (default
    /// [`DEFAULT_HIT_WINDOW`]). Applies to whichever cache mode is (or
    /// later gets) configured; changing it resets the window's contents,
    /// so configure it before serving traffic.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_cache_window(mut self, window: usize) -> Self {
        assert!(window > 0, "cache window must be positive");
        self.cache_window = window;
        match &mut self.cache {
            CacheMode::None => {}
            CacheMode::Owned(cache) => cache
                .get_mut()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .set_window(window),
            CacheMode::Shared { consumer, .. } => *consumer = CacheConsumer::new(window),
        }
        self
    }

    /// Attaches a [`ConcurrentSubgraphCache`] shared across queries and
    /// batch workers: every ball extraction goes through `cache`, so hot
    /// balls recurring across a skewed batch are extracted once and
    /// served zero-copy everywhere else. Replaces any cache configured
    /// earlier; like [`Meloppr::with_cache`], it takes precedence over
    /// [`Meloppr::with_threads`] for intra-query scheduling (the
    /// cross-query parallelism belongs to the
    /// [`BatchExecutor`](super::BatchExecutor)).
    ///
    /// The backend registers its own [`CacheConsumer`] handle, so its
    /// lookups stay attributed to it even when other backends, routers
    /// or executors share the same `Arc` — read the per-backend counters
    /// via [`PprBackend::cache_consumer`](super::PprBackend::cache_consumer)
    /// or per batch from [`BatchStats::cache`](super::BatchStats::cache);
    /// the cache-global view stays available through
    /// [`ConcurrentSubgraphCache::stats`].
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<ConcurrentSubgraphCache>) -> Self {
        self.cache = CacheMode::Shared {
            cache,
            consumer: CacheConsumer::new(self.cache_window),
        };
        self
    }

    /// The backend's configured base parameters.
    pub fn params(&self) -> &MelopprParams {
        &self.params
    }

    /// Worker threads used per query (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fraction of the last [`Meloppr::with_cache_window`] cache lookups
    /// served without BFS work — 0.0 with no cache attached or before
    /// any lookup. Drives the BFS discount in [`Meloppr::estimate`];
    /// windowed (not lifetime) so the discount tracks traffic shifts.
    fn cache_hit_rate(&self) -> f64 {
        match &self.cache {
            CacheMode::None => 0.0,
            CacheMode::Owned(cache) => {
                // Recover a poisoned guard instead of panicking: this is
                // the read-only routing path, and the window counters are
                // plain integers that stay internally consistent even if
                // a worker died mid-extraction elsewhere. A panicked
                // worker must degrade one estimate, not poison routing
                // forever.
                let cache = cache
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                cache.recent_hit_rate()
            }
            CacheMode::Shared { consumer, .. } => consumer.windowed_hit_rate(),
        }
    }

    /// Fraction of this backend's lifetime cache lookups served by the
    /// cold tier (a positioned index read instead of a BFS) — 0.0 with
    /// no cache attached, no cold tier configured, or before any lookup.
    /// Lifetime rather than windowed: the cold fraction tracks what
    /// share of the key space lives on disk, which shifts with the index
    /// contents, not with short-term traffic.
    fn cold_hit_fraction(&self) -> f64 {
        let stats = match &self.cache {
            CacheMode::None => return 0.0,
            CacheMode::Owned(cache) => cache
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .consumer_stats(),
            CacheMode::Shared { consumer, .. } => consumer.stats(),
        };
        let lookups = stats.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (stats.cold_hits as f64 / lookups as f64).clamp(0.0, 1.0)
    }

    /// The modelled working set of one stage task on the average
    /// depth-`depth` probe ball — the runtime budget gate's formula
    /// (`QueryAccumulator::working_set_bound`) evaluated with an empty
    /// table and queue, i.e. the bound the first task of a query faces.
    fn stage_working_set(
        &self,
        params: &MelopprParams,
        depth: usize,
        class: PrecisionClass,
    ) -> usize {
        let ball = self.profile.ball(depth);
        let table_entries = match params.table_factor.map(|c| c * params.ppr.k) {
            Some(cap) => ball.nodes.min(cap),
            None => ball.nodes,
        };
        crate::memory::meloppr_cpu_peak(
            cpu_task_memory_width(ball.nodes, ball.edges, class.score_width_bytes()),
            table_entries,
            params.selection.upper_bound(ball.nodes),
        )
    }

    /// Plans the starting ball depth per stage under a byte budget: the
    /// largest depth whose modelled working set fits, per the probe
    /// profile. Returns the full stage lengths (and `false`) without a
    /// budget. Shared by `estimate()` and the budgeted execution path
    /// (`run_staged`), so prediction and enforcement start from the same
    /// plan — execution then measures each concrete ball and can only
    /// shrink further.
    fn plan_ball_depths(
        &self,
        params: &MelopprParams,
        budget_bytes: Option<usize>,
        class: PrecisionClass,
    ) -> (Vec<usize>, bool) {
        let Some(limit) = budget_bytes else {
            return (params.stages.clone(), false);
        };
        let mut degraded = false;
        let depths = params
            .stages
            .iter()
            .map(|&l| {
                let mut depth = l;
                while depth > 0 && self.stage_working_set(params, depth, class) > limit {
                    depth -= 1;
                    degraded = true;
                }
                depth
            })
            .collect();
        (depths, degraded)
    }

    /// The precision ladder's **width-before-depth** rule under a byte
    /// budget: if the plan at `requested` would have to shrink any
    /// stage's ball depth, first step the precision rung down (halving
    /// the modelled score-vector width) and re-plan — a narrower rung
    /// often readmits the full depth, and a truncated diffusion loses
    /// strictly more ranking signal than half-width arithmetic does.
    /// Stops as soon as depth fits, or narrowing stops shrinking the
    /// working set (the `Fast32 → Fixed` step keeps the same width).
    /// Without a budget the requested rung passes through untouched.
    fn plan_precision(
        &self,
        params: &MelopprParams,
        budget_bytes: Option<usize>,
        requested: PrecisionClass,
    ) -> (PrecisionClass, Vec<usize>, bool) {
        let (mut depths, mut degraded) = self.plan_ball_depths(params, budget_bytes, requested);
        let mut class = requested;
        while degraded {
            let Some(next) = class.degraded() else { break };
            if next.score_width_bytes() >= class.score_width_bytes() {
                break;
            }
            let (next_depths, next_degraded) = self.plan_ball_depths(params, budget_bytes, next);
            class = next;
            depths = next_depths;
            degraded = next_degraded;
        }
        (class, depths, degraded)
    }

    /// The effective staged parameters for a request: overrides merged,
    /// and a `length` override redistributed over the configured stage
    /// count, front-loading depth as the planner does (stage-one output
    /// is exact, so deeper early stages help precision).
    fn effective_meloppr(&self, req: &QueryRequest) -> Result<MelopprParams> {
        let ppr = req.effective_params(&self.params.ppr)?;
        let stages = if ppr.length == self.params.ppr.length {
            self.params.stages.clone()
        } else {
            restage(self.params.stages.len(), ppr.length)
        };
        let params = MelopprParams {
            ppr,
            stages,
            ..self.params.clone()
        };
        params.validate()?;
        Ok(params)
    }
}

/// Distributes `length` over at most `parts` stages, all ≥ 1, larger
/// stages first.
///
/// Never panics: `length == 0` (a request override that fails parameter
/// validation downstream) yields `vec![0]`, which `MelopprParams::validate`
/// rejects with a proper error — `clamp(1, length)` would panic instead
/// (min > max), turning an invalid request into a crash.
fn restage(parts: usize, length: usize) -> Vec<usize> {
    let parts = parts.min(length.max(1)).max(1);
    let base = length / parts;
    let extra = length % parts;
    (0..parts)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

impl<G: GraphView + Sync + ?Sized> PprBackend for Meloppr<'_, G> {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::Meloppr,
            exact: matches!(self.params.selection, SelectionStrategy::All)
                && self.params.table_factor.is_none(),
            deterministic: true,
            accelerated: false,
            // Batches reuse pooled workspaces across queries (and scale
            // across BatchExecutor workers), beating a naive query loop.
            batch_aware: true,
        }
    }

    fn prepare(&mut self) -> Result<()> {
        // Re-probe with the current stage horizon (idempotent) and, when
        // caching, pre-extract the probe seeds' stage-one balls through
        // the non-counting warm path: warm-up is not demand, so it must
        // not register as misses that permanently deflate the hit rate
        // `estimate()` feeds the router.
        self.profile = WorkProfile::probe_default(self.graph, self.params.ppr.length as u32)?;
        let depth = self.params.stages[0] as u32;
        let n = self.graph.num_nodes();
        match &self.cache {
            CacheMode::None => {}
            CacheMode::Owned(cache) => {
                let mut cache = cache
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                for seed in super::model::default_probe_seeds(n) {
                    cache.warm(self.graph, seed, depth)?;
                }
            }
            CacheMode::Shared { cache, .. } => {
                // Extract through a pooled workspace so the warm-up BFS
                // reuses the same scratch buffers as the serving path.
                let mut ws = self.pool.acquire();
                let result = super::model::default_probe_seeds(n)
                    .into_iter()
                    .try_for_each(|seed| cache.warm_with(self.graph, seed, depth, &mut ws.extract));
                self.pool.release(ws);
                result?;
            }
        }
        Ok(())
    }

    fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate> {
        let params = self.effective_meloppr(req)?;
        let requested = req.budget.precision.unwrap_or_default();
        requested.validate()?;
        // A memory budget is *enforced* at run time: the staged loop
        // starts every stage at the profile-planned precision rung and
        // ball depth below (the same `plan_precision` the runtime uses)
        // and shrinks further if a concrete ball still exceeds the
        // bound. The estimate therefore models the *identical* starting
        // plan with the identical byte model; the runtime can only
        // degrade further as the aggregation state grows, which the
        // outcome reports via `memory_limited`.
        let (class, ball_depths, degraded) =
            self.plan_precision(&params, req.budget.max_memory_bytes, requested);
        let work = estimate_staged_work_with_depths(&self.profile, &params, &ball_depths);
        let m = self.latency;
        // Budgeted queries always run the sequential workspace loop (see
        // `run_staged`), so they must not be priced as if stage-level
        // threads applied.
        let threads = if req.budget.max_memory_bytes.is_some() {
            1.0
        } else {
            self.threads.max(1) as f64
        };
        // Cache hits skip ball extraction entirely, so only the expected
        // miss fraction of the BFS work is charged: a warmed cache makes
        // the budget router prefer this backend for repeat-heavy traffic.
        // The rate is *windowed* over this backend's own recent lookups
        // (not the lifetime average, which stays optimistic long after
        // traffic shifts to cold seeds; not the cache-global rate, which
        // mixes other consumers' traffic in). Warm-up extractions never
        // enter the window.
        let bfs_miss_fraction = 1.0 - self.cache_hit_rate();
        // A cold-tier hit avoids the BFS entirely (the window above
        // records it as a hit because no extraction ran) but still pays
        // a positioned index read and compact decode; charge the
        // observed cold fraction of lookups at a flat factor of the BFS
        // cost, so a tiered cache prices strictly between all-RAM hits
        // and all-misses. With no cold tier the fraction is 0 and the
        // pricing is unchanged.
        let bfs_miss_fraction =
            (bfs_miss_fraction + COLD_HIT_COST_FACTOR * self.cold_hit_fraction()).min(1.0);
        // Reduced-width rungs run the dense vectorizable diffusion
        // kernel; charge their per-edge cost at the class's documented
        // discount so a deadline router learns that narrower is faster.
        let ns_per_diffusion_edge = m.ns_per_diffusion_edge * class.diffusion_cost_factor();
        let cost_of = |bfs: f64, diffusion_edges: f64, nodes: f64| {
            bfs * bfs_miss_fraction * m.ns_per_bfs_edge
                + diffusion_edges * ns_per_diffusion_edge
                + nodes * m.ns_per_node
        };
        let compute_ns = cost_of(work.bfs_edges, work.diffusion_edges, work.nodes_touched);
        // Stage one is a single serial task; worker threads only spread
        // the later stages' diffusions.
        let stage1 = self.profile.ball(ball_depths[0]);
        let l1 = params.stages[0] as f64;
        let stage1_ns = cost_of(
            2.0 * stage1.edges as f64,
            l1 * 2.0 * stage1.edges as f64,
            stage1.nodes as f64,
        )
        .min(compute_ns);
        // Shrunk balls truncate the diffusion's reach: charge the lost
        // depth fraction against the precision heuristic (documented
        // heuristic, like the base curve itself).
        let mut precision = staged_precision_heuristic(&params);
        if degraded {
            let full: usize = params.stages.iter().sum::<usize>().max(1);
            let kept: usize = ball_depths.iter().sum();
            precision *= 0.7 + 0.3 * kept as f64 / full as f64;
        }
        // Reduced-precision arithmetic costs ranking fidelity; the
        // per-class penalty is deliberately conservative (never above
        // the measured precision@k floors — see the precision_ladder
        // test suite).
        precision *= class.precision_factor();
        // Predicted peak: the largest per-stage working set under the
        // same model the degradation loop (and the runtime gate) uses —
        // by construction ≤ the budget whenever degradation can achieve
        // it, so routing admits exactly the queries enforcement can
        // serve within bound.
        let peak_memory_bytes = ball_depths
            .iter()
            .map(|&depth| self.stage_working_set(&params, depth, class))
            .max()
            .unwrap_or(0);
        Ok(CostEstimate {
            latency_ns: m.fixed_overhead_ns + stage1_ns + (compute_ns - stage1_ns) / threads,
            peak_memory_bytes,
            expected_precision: precision.clamp(0.0, 1.0),
        })
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        Some(&self.pool)
    }

    fn shared_cache(&self) -> Option<&ConcurrentSubgraphCache> {
        match &self.cache {
            CacheMode::Shared { cache, .. } => Some(cache),
            _ => None,
        }
    }

    fn cache_consumer(&self) -> Option<&CacheConsumer> {
        match &self.cache {
            CacheMode::Shared { consumer, .. } => Some(consumer),
            _ => None,
        }
    }

    fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome> {
        let budget = req.budget.max_memory_bytes;
        let requested = req.budget.precision.unwrap_or_default();
        requested.validate()?;
        // The common no-override case borrows the configured parameters;
        // only overridden requests pay a parameter clone.
        let outcome = if req.k.is_none() && req.overrides == ParamOverrides::default() {
            self.run_staged(&self.params, req.seed, requested, budget, ws)?
        } else {
            let params = self.effective_meloppr(req)?;
            self.run_staged(&params, req.seed, requested, budget, ws)?
        };
        Ok(QueryOutcome {
            stats: QueryStats::from_meloppr(&outcome.stats),
            ranking: outcome.ranking,
        })
    }
}

impl<G: GraphView + Sync + ?Sized> Meloppr<'_, G> {
    fn run_staged(
        &self,
        params: &MelopprParams,
        seed: NodeId,
        requested: PrecisionClass,
        budget_bytes: Option<usize>,
        ws: &mut QueryWorkspace,
    ) -> Result<MelopprOutcome> {
        // Plan the starting precision rung and ball depths from the
        // probe profile (the same plan `estimate()` prices), so the
        // budget gate does not have to materialize predictably
        // over-budget balls only to discard them. Under a byte budget
        // the rung degrades *before* depth (`plan_precision`); the
        // executed class is reported in the outcome's stats.
        let (class, budget) = match budget_bytes {
            Some(limit) => {
                let (class, depths, _) = self.plan_precision(params, Some(limit), requested);
                let budget = MemoryBudget {
                    limit,
                    ball_depths: depths.iter().map(|&d| d as u32).collect(),
                };
                (class, Some(budget))
            }
            None => (requested, None),
        };
        let budget = budget.as_ref();
        match &self.cache {
            CacheMode::Owned(cache) => {
                // The owned cache's invariants hold between lookups, so
                // a poisoned lock (a co-tenant query panicked, e.g. an
                // injected fault) is recovered, not cascaded.
                let mut cache = cache
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                staged_query_impl(
                    self.graph,
                    params,
                    seed,
                    class,
                    BallSource::Owned(&mut cache),
                    budget,
                    ws,
                )
            }
            CacheMode::Shared { cache, consumer } => staged_query_impl(
                self.graph,
                params,
                seed,
                class,
                BallSource::Shared { cache, consumer },
                budget,
                ws,
            ),
            // Budgeted queries always run the workspace loop: the budget
            // gate needs the instantaneous table/queue state, which the
            // stage-parallel executor only has at stage barriers.
            CacheMode::None if self.threads > 1 && budget_bytes.is_none() => {
                parallel_query_impl(self.graph, params, seed, class, self.threads)
            }
            CacheMode::None => staged_query_impl(
                self.graph,
                params,
                seed,
                class,
                BallSource::Fresh,
                budget,
                ws,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meloppr::MelopprEngine;
    use crate::params::PprParams;

    use meloppr_graph::generators;

    fn params() -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, 6, 20).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.1),
            ..MelopprParams::paper_defaults()
        }
    }

    #[test]
    fn matches_direct_engine_bit_for_bit() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 5)
            .unwrap();
        let backend = Meloppr::new(&g, params()).unwrap();
        let direct = MelopprEngine::new(&g, params()).unwrap().query(7).unwrap();
        let via_trait = backend.query(&QueryRequest::new(7)).unwrap();
        assert_eq!(via_trait.ranking, direct.ranking);
        assert_eq!(via_trait.stats.stages, direct.stats.stages);
        assert_eq!(
            via_trait.stats.peak_memory_bytes,
            direct.stats.peak_cpu_bytes
        );
    }

    #[test]
    fn all_execution_modes_agree() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 6)
            .unwrap();
        let sequential = Meloppr::new(&g, params()).unwrap();
        let threaded = Meloppr::new(&g, params()).unwrap().with_threads(4).unwrap();
        let cached = Meloppr::new(&g, params()).unwrap().with_cache(64);
        let req = QueryRequest::new(3);
        let a = sequential.query(&req).unwrap();
        let b = threaded.query(&req).unwrap();
        let c = cached.query(&req).unwrap();
        assert_eq!(a.ranking, b.ranking);
        assert_eq!(a.ranking, c.ranking);
        // The cache changes only BFS accounting, never the answer; a
        // repeat query hits the cache and charges less BFS.
        let c2 = cached.query(&req).unwrap();
        assert_eq!(c2.ranking, c.ranking);
        assert!(c2.stats.bfs_edges_scanned < c.stats.bfs_edges_scanned);
    }

    #[test]
    fn shared_cache_mode_agrees_and_shares_extractions() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 6)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(256));
        let plain = Meloppr::new(&g, params()).unwrap();
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        assert!(shared.shared_cache().is_some());
        assert!(plain.shared_cache().is_none());

        let req = QueryRequest::new(3);
        let a = plain.query(&req).unwrap();
        let b = shared.query(&req).unwrap();
        assert_eq!(a.ranking, b.ranking);
        let cold_extractions = cache.stats().extractions;
        assert!(cold_extractions > 0);

        // A repeat query is served entirely from the cache: zero BFS,
        // zero new extractions.
        let c = shared.query(&req).unwrap();
        assert_eq!(c.ranking, a.ranking);
        assert_eq!(c.stats.bfs_edges_scanned, 0);
        assert_eq!(cache.stats().extractions, cold_extractions);
    }

    #[test]
    fn estimate_discounts_bfs_by_observed_hit_rate() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 9)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(512));
        let plain = Meloppr::new(&g, params()).unwrap();
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let req = QueryRequest::new(5);
        // Cold cache: no observations, no discount.
        assert_eq!(
            plain.estimate(&req).unwrap().latency_ns,
            shared.estimate(&req).unwrap().latency_ns
        );
        // Warm the cache until the hit rate is high, then the estimate
        // must drop below the uncached backend's.
        for _ in 0..4 {
            shared.query(&req).unwrap();
        }
        assert!(cache.stats().hit_rate() > 0.5);
        assert!(
            shared.estimate(&req).unwrap().latency_ns < plain.estimate(&req).unwrap().latency_ns
        );
    }

    #[test]
    fn estimate_prices_cold_hits_between_ram_hits_and_misses() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 9)
            .unwrap();
        let dir = std::env::temp_dir().join(format!("meloppr-staged-cold-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("balls.idx");
        crate::ballindex::build_index(&g, 3, &path).unwrap();
        let index = Arc::new(crate::ballindex::BallIndex::open(&path).unwrap());
        let seeds: Vec<u32> = (0..24).collect();
        let window = 16;

        // All-miss reference: distinct cold seeds through a RAM-only
        // cache leave the window dominated by misses.
        let miss = Meloppr::new(&g, params())
            .unwrap()
            .with_cache_window(window)
            .with_shared_cache(Arc::new(ConcurrentSubgraphCache::new(4096)));
        for &s in &seeds {
            miss.query(&QueryRequest::new(s)).unwrap();
        }

        // Cold tier: the same distinct seeds are first touches too, but
        // the index (built at the stage depth) serves them from disk —
        // windowed as hits, priced via the cold fraction.
        let cold = Meloppr::new(&g, params())
            .unwrap()
            .with_cache_window(window)
            .with_shared_cache(Arc::new(
                ConcurrentSubgraphCache::new(4096).with_cold_tier(Arc::clone(&index)),
            ));
        for &s in &seeds {
            cold.query(&QueryRequest::new(s)).unwrap();
        }
        let cold_stats = cold.cache_consumer().unwrap().stats();
        assert!(cold_stats.cold_hits > 0, "the index must actually serve");

        // All-RAM reference: one seed repeated until the window holds
        // only resident hits.
        let ram = Meloppr::new(&g, params())
            .unwrap()
            .with_cache_window(window)
            .with_shared_cache(Arc::new(ConcurrentSubgraphCache::new(4096)));
        for _ in 0..40 {
            ram.query(&QueryRequest::new(5)).unwrap();
        }

        let req = QueryRequest::new(5);
        let ram_ns = ram.estimate(&req).unwrap().latency_ns;
        let cold_ns = cold.estimate(&req).unwrap().latency_ns;
        let miss_ns = miss.estimate(&req).unwrap().latency_ns;
        assert!(
            ram_ns < cold_ns,
            "cold-tier serving must price above all-RAM hits: {ram_ns} vs {cold_ns}"
        );
        assert!(
            cold_ns < miss_ns,
            "cold-tier serving must price below all-miss BFS: {cold_ns} vs {miss_ns}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn length_override_restages() {
        let g = generators::karate_club();
        let backend = Meloppr::new(&g, params()).unwrap();
        let outcome = backend
            .query(&QueryRequest::new(0).with_length(4).with_k(5))
            .unwrap();
        assert_eq!(outcome.stats.stages.len(), 2); // 4 = 2 + 2
        assert_eq!(outcome.ranking.len(), 5);
    }

    #[test]
    fn restage_distributions() {
        assert_eq!(restage(2, 6), vec![3, 3]);
        assert_eq!(restage(2, 5), vec![3, 2]);
        assert_eq!(restage(3, 7), vec![3, 2, 2]);
        assert_eq!(restage(3, 2), vec![1, 1]); // clamped to length
        assert_eq!(restage(1, 4), vec![4]);
        // Regression: length 0 must not panic (`clamp(1, 0)` did); the
        // degenerate split is rejected by parameter validation instead.
        assert_eq!(restage(2, 0), vec![0]);
    }

    #[test]
    fn zero_length_override_errors_instead_of_panicking() {
        let g = generators::karate_club();
        let backend = Meloppr::new(&g, params()).unwrap();
        let req = QueryRequest::new(0).with_length(0);
        // Both the query and the routing estimate must surface the
        // validation error, never a clamp panic.
        assert!(backend.query(&req).is_err());
        assert!(backend.estimate(&req).is_err());
    }

    #[test]
    fn zero_threads_rejected() {
        let g = generators::karate_club();
        assert!(Meloppr::new(&g, params()).unwrap().with_threads(0).is_err());
    }

    #[test]
    fn exactness_capability_tracks_selection() {
        let g = generators::karate_club();
        let approx = Meloppr::new(&g, params()).unwrap();
        assert!(!approx.capabilities().exact);
        let exact_params = MelopprParams {
            selection: SelectionStrategy::All,
            ..params()
        };
        let exact = Meloppr::new(&g, exact_params).unwrap();
        assert!(exact.capabilities().exact);
    }

    #[test]
    fn estimate_scales_with_selection_and_threads() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.15, 9)
            .unwrap();
        let narrow = Meloppr::new(&g, params()).unwrap();
        let wide_params = MelopprParams {
            selection: SelectionStrategy::TopFraction(0.8),
            ..params()
        };
        let wide = Meloppr::new(&g, wide_params).unwrap();
        let req = QueryRequest::new(0);
        assert!(
            wide.estimate(&req).unwrap().latency_ns > narrow.estimate(&req).unwrap().latency_ns
        );
        let threaded = Meloppr::new(&g, params()).unwrap().with_threads(8).unwrap();
        assert!(
            threaded.estimate(&req).unwrap().latency_ns < narrow.estimate(&req).unwrap().latency_ns
        );
    }

    #[test]
    fn prepare_probes_and_warms() {
        let g = generators::karate_club();
        let mut backend = Meloppr::new(&g, params()).unwrap().with_cache(8);
        backend.prepare().unwrap();
        backend.prepare().unwrap(); // idempotent
        assert!(backend.query(&QueryRequest::new(0)).is_ok());
    }

    #[test]
    fn prepare_warming_does_not_deflate_hit_rate() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 9)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(512));
        let mut shared = Meloppr::new(&g, params())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        shared.prepare().unwrap();
        assert!(cache.stats().extractions > 0, "prepare pre-extracts balls");
        let consumer = shared.cache_consumer().expect("shared mode has a consumer");
        assert_eq!(
            consumer.stats().lookups(),
            0,
            "warm-up must not count as this backend's lookups"
        );
        assert_eq!(consumer.windowed_hit_rate(), 0.0);
        // An estimate right after warming carries no discount yet (no
        // observed demand) and, crucially, no warm-up *deflation* either:
        // the first real queries hit the warmed balls and push the rate
        // up from a clean slate.
        let req = QueryRequest::new(5);
        for _ in 0..3 {
            shared.query(&req).unwrap();
        }
        assert!(consumer.windowed_hit_rate() > 0.5);
    }

    #[test]
    fn estimate_recovers_when_owned_cache_lock_poisoned() {
        let g = generators::karate_club();
        let backend = Meloppr::new(&g, params()).unwrap().with_cache(8);
        backend.query(&QueryRequest::new(0)).unwrap();
        let before = backend.estimate(&QueryRequest::new(0)).unwrap();
        // Poison the owned cache's mutex: a worker panicking while
        // holding the guard must not take routing down with it.
        std::thread::scope(|scope| {
            let _ = scope
                .spawn(|| {
                    let CacheMode::Owned(cache) = &backend.cache else {
                        unreachable!("with_cache configures the owned mode");
                    };
                    let _guard = cache.lock().unwrap();
                    panic!("poison the cache lock");
                })
                .join();
        });
        let CacheMode::Owned(cache) = &backend.cache else {
            unreachable!();
        };
        assert!(cache.lock().is_err(), "lock must actually be poisoned");
        // The read-only estimate path recovers the guard instead of
        // panicking, and still produces the same discounted estimate.
        let after = backend.estimate(&QueryRequest::new(0)).unwrap();
        assert_eq!(after.latency_ns, before.latency_ns);
    }

    #[test]
    fn windowed_estimate_discount_decays_after_traffic_shift() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.25, 9)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(2048));
        // A small window so one burst of cold seeds flushes it.
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_cache_window(32)
            .with_shared_cache(Arc::clone(&cache));
        let hot = QueryRequest::new(5);
        for _ in 0..8 {
            shared.query(&hot).unwrap();
        }
        let consumer = shared.cache_consumer().unwrap();
        assert!(consumer.windowed_hit_rate() > 0.5);
        let warmed_estimate = shared.estimate(&hot).unwrap().latency_ns;
        // Traffic shifts to never-seen seeds: ≥ one window of cold
        // lookups. The windowed rate collapses — and the estimate rises
        // back towards the undiscounted cost — while the cumulative
        // lifetime rate stays stale and optimistic.
        let base_misses = consumer.stats().misses;
        let mut seed = 100u32;
        while consumer.stats().misses - base_misses < consumer.window_len() as u64 * 2 {
            shared.query(&QueryRequest::new(seed)).unwrap();
            seed += 1;
        }
        let windowed = consumer.windowed_hit_rate();
        let cumulative = consumer.stats().hit_rate();
        assert!(
            windowed < cumulative,
            "windowed rate {windowed} must drop below the stale cumulative {cumulative}"
        );
        assert!(
            shared.estimate(&hot).unwrap().latency_ns > warmed_estimate,
            "the BFS discount must shrink once the window sees cold traffic"
        );
    }

    #[test]
    fn cache_window_builder_applies_to_both_modes() {
        let g = generators::karate_club();
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_shared_cache(Arc::new(ConcurrentSubgraphCache::new(8)))
            .with_cache_window(7);
        assert_eq!(shared.cache_consumer().unwrap().window_len(), 7);
        // Order-independent: window-first works too.
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_cache_window(9)
            .with_shared_cache(Arc::new(ConcurrentSubgraphCache::new(8)));
        assert_eq!(shared.cache_consumer().unwrap().window_len(), 9);
        let owned = Meloppr::new(&g, params())
            .unwrap()
            .with_cache(8)
            .with_cache_window(5);
        assert!(owned.cache_consumer().is_none());
        assert!(owned.query(&QueryRequest::new(0)).is_ok());
    }
}
