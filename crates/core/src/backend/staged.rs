//! The staged MeLoPPR engine behind the unified API.

use std::sync::{Arc, Mutex};

use meloppr_graph::{GraphView, NodeId};

use super::{
    estimate_staged_work, staged_precision_heuristic, BackendCaps, BackendKind, CostEstimate,
    LatencyModel, ParamOverrides, PprBackend, QueryOutcome, QueryRequest, QueryStats, WorkProfile,
};
use crate::cache::{ConcurrentSubgraphCache, SubgraphCache};
use crate::error::{PprError, Result};
use crate::meloppr::{
    staged_query_cached_with, staged_query_shared_with, staged_query_with, MelopprOutcome,
};
use crate::memory::{cpu_task_memory, fpga_global_table_bytes};
use crate::parallel::parallel_query_impl;
use crate::params::MelopprParams;
use crate::selection::SelectionStrategy;
use crate::workspace::{QueryWorkspace, WorkspacePool};

/// Multi-stage MeLoPPR (§IV) as a backend.
///
/// Execution variants are constructor options:
///
/// * [`Meloppr::with_threads`] — stage-level parallelism inside one
///   query (bit-identical to sequential);
/// * [`Meloppr::with_cache`] — a private LRU sub-graph cache reused
///   across this backend's queries (hits charge zero BFS work);
/// * [`Meloppr::with_shared_cache`] — the serving topology: an
///   `Arc<ConcurrentSubgraphCache>` shared across queries, across
///   [`BatchExecutor`](super::BatchExecutor) workers, and (if desired)
///   across several backends over the same graph. Hot balls are
///   extracted once (singleflight); every other query reuses the
///   `Arc<Subgraph>` zero-copy.
///
/// All modes return identical rankings for identical requests; they
/// differ only in wall-clock and BFS work accounting (cache hits charge
/// zero BFS). With a cache attached, [`Meloppr::estimate`] discounts the
/// predicted BFS latency by the cache's observed hit rate, so a
/// budget-driven [`Router`](super::Router) learns that warmed caches
/// make staged queries cheaper.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{Meloppr, PprBackend, QueryRequest};
/// use meloppr_core::MelopprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let mut params = MelopprParams::paper_defaults();
/// params.ppr.k = 5;
/// let backend = Meloppr::new(&g, params)?.with_threads(4)?;
/// let outcome = backend.query(&QueryRequest::new(0))?;
/// assert_eq!(outcome.ranking.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Meloppr<'g, G: GraphView + Sync + ?Sized> {
    graph: &'g G,
    params: MelopprParams,
    threads: usize,
    cache: CacheMode,
    profile: WorkProfile,
    latency: LatencyModel,
    pool: WorkspacePool,
}

/// Which sub-graph cache (if any) the staged backend extracts through.
#[derive(Debug, Default)]
enum CacheMode {
    /// Extract every ball fresh.
    #[default]
    None,
    /// A private single-threaded LRU, serialized behind a mutex.
    Owned(Mutex<SubgraphCache>),
    /// A concurrent cache shared across workers/backends (no serialization
    /// on the query path).
    Shared(Arc<ConcurrentSubgraphCache>),
}

impl<'g, G: GraphView + Sync + ?Sized> Meloppr<'g, G> {
    /// Creates a sequential staged backend, validating `params` and
    /// probing ball growth for cost estimation.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] on invalid parameters.
    pub fn new(graph: &'g G, params: MelopprParams) -> Result<Self> {
        params.validate()?;
        let profile = WorkProfile::probe_default(graph, params.ppr.length as u32)?;
        Ok(Meloppr {
            graph,
            params,
            threads: 1,
            cache: CacheMode::None,
            profile,
            latency: LatencyModel::default(),
            pool: WorkspacePool::new(),
        })
    }

    /// Enables stage-level parallelism with `threads` workers inside
    /// each query. `1` keeps the sequential schedule.
    ///
    /// Threaded execution allocates per-task state instead of borrowing
    /// the query workspace (each stage worker needs its own scratch), so
    /// the zero-allocation steady state applies only to the sequential
    /// and cached modes. For cross-query parallelism with full workspace
    /// reuse, keep the backend sequential and drive it through a
    /// [`BatchExecutor`](super::BatchExecutor) instead.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(PprError::InvalidParams {
                reason: "thread count must be >= 1".into(),
            });
        }
        self.threads = threads;
        Ok(self)
    }

    /// Enables a private LRU sub-graph cache with `capacity` entries.
    /// Cached execution is sequential; it takes precedence over
    /// [`Meloppr::with_threads`]. For multi-worker serving use
    /// [`Meloppr::with_shared_cache`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (as [`SubgraphCache::new`] does).
    #[must_use]
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = CacheMode::Owned(Mutex::new(SubgraphCache::new(capacity)));
        self
    }

    /// Attaches a [`ConcurrentSubgraphCache`] shared across queries and
    /// batch workers: every ball extraction goes through `cache`, so hot
    /// balls recurring across a skewed batch are extracted once and
    /// served zero-copy everywhere else. Replaces any cache configured
    /// earlier; like [`Meloppr::with_cache`], it takes precedence over
    /// [`Meloppr::with_threads`] for intra-query scheduling (the
    /// cross-query parallelism belongs to the
    /// [`BatchExecutor`](super::BatchExecutor)).
    ///
    /// Keep a clone of the `Arc` to read [`ConcurrentSubgraphCache::stats`]
    /// — or read them per batch from
    /// [`BatchStats::cache`](super::BatchStats::cache).
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<ConcurrentSubgraphCache>) -> Self {
        self.cache = CacheMode::Shared(cache);
        self
    }

    /// The backend's configured base parameters.
    pub fn params(&self) -> &MelopprParams {
        &self.params
    }

    /// Worker threads used per query (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fraction of recent cache lookups served without BFS work — 0.0
    /// with no cache attached or before any lookup. Drives the BFS
    /// discount in [`Meloppr::estimate`].
    fn cache_hit_rate(&self) -> f64 {
        match &self.cache {
            CacheMode::None => 0.0,
            CacheMode::Owned(cache) => {
                let cache = cache.lock().expect("cache poisoned");
                let lookups = cache.hits() + cache.misses();
                if lookups == 0 {
                    0.0
                } else {
                    cache.hits() as f64 / lookups as f64
                }
            }
            CacheMode::Shared(cache) => cache.stats().hit_rate(),
        }
    }

    /// The effective staged parameters for a request: overrides merged,
    /// and a `length` override redistributed over the configured stage
    /// count, front-loading depth as the planner does (stage-one output
    /// is exact, so deeper early stages help precision).
    fn effective_meloppr(&self, req: &QueryRequest) -> Result<MelopprParams> {
        let ppr = req.effective_params(&self.params.ppr)?;
        let stages = if ppr.length == self.params.ppr.length {
            self.params.stages.clone()
        } else {
            restage(self.params.stages.len(), ppr.length)
        };
        let params = MelopprParams {
            ppr,
            stages,
            ..self.params.clone()
        };
        params.validate()?;
        Ok(params)
    }
}

/// Distributes `length` over at most `parts` stages, all ≥ 1, larger
/// stages first.
fn restage(parts: usize, length: usize) -> Vec<usize> {
    let parts = parts.clamp(1, length);
    let base = length / parts;
    let extra = length % parts;
    (0..parts)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

impl<G: GraphView + Sync + ?Sized> PprBackend for Meloppr<'_, G> {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::Meloppr,
            exact: matches!(self.params.selection, SelectionStrategy::All)
                && self.params.table_factor.is_none(),
            deterministic: true,
            accelerated: false,
            // Batches reuse pooled workspaces across queries (and scale
            // across BatchExecutor workers), beating a naive query loop.
            batch_aware: true,
        }
    }

    fn prepare(&mut self) -> Result<()> {
        // Re-probe with the current stage horizon (idempotent) and, when
        // caching, pre-extract the probe seeds' stage-one balls.
        self.profile = WorkProfile::probe_default(self.graph, self.params.ppr.length as u32)?;
        let depth = self.params.stages[0] as u32;
        let n = self.graph.num_nodes();
        match &self.cache {
            CacheMode::None => {}
            CacheMode::Owned(cache) => {
                let mut cache = cache.lock().expect("cache poisoned");
                for seed in super::model::default_probe_seeds(n) {
                    cache.get_or_extract(self.graph, seed, depth)?;
                }
            }
            CacheMode::Shared(cache) => {
                for seed in super::model::default_probe_seeds(n) {
                    cache.get_or_extract(self.graph, seed, depth)?;
                }
            }
        }
        Ok(())
    }

    fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate> {
        let params = self.effective_meloppr(req)?;
        let work = estimate_staged_work(&self.profile, &params);
        let m = self.latency;
        let threads = self.threads.max(1) as f64;
        // Cache hits skip ball extraction entirely, so only the expected
        // miss fraction of the BFS work is charged: a warmed cache makes
        // the budget router prefer this backend for repeat-heavy traffic.
        // The rate is the cache's cumulative average — an expectation
        // under stationary traffic, optimistic for a never-seen seed
        // (though even cold seeds hit warmed stage-two hub balls, which
        // dominate lookups). A decayed/windowed rate is a noted
        // follow-up.
        let bfs_miss_fraction = 1.0 - self.cache_hit_rate();
        let cost_of = |bfs: f64, diffusion_edges: f64, nodes: f64| {
            bfs * bfs_miss_fraction * m.ns_per_bfs_edge
                + diffusion_edges * m.ns_per_diffusion_edge
                + nodes * m.ns_per_node
        };
        let compute_ns = cost_of(work.bfs_edges, work.diffusion_edges, work.nodes_touched);
        // Stage one is a single serial task; worker threads only spread
        // the later stages' diffusions.
        let stage1 = self.profile.ball(params.stages[0]);
        let l1 = params.stages[0] as f64;
        let stage1_ns = cost_of(
            2.0 * stage1.edges as f64,
            l1 * 2.0 * stage1.edges as f64,
            stage1.nodes as f64,
        )
        .min(compute_ns);
        let table_bytes = fpga_global_table_bytes(params.table_factor.unwrap_or(10), params.ppr.k);
        Ok(CostEstimate {
            latency_ns: m.fixed_overhead_ns + stage1_ns + (compute_ns - stage1_ns) / threads,
            peak_memory_bytes: cpu_task_memory(work.peak_ball.nodes, work.peak_ball.edges).total()
                + table_bytes,
            expected_precision: staged_precision_heuristic(&params),
        })
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        Some(&self.pool)
    }

    fn shared_cache(&self) -> Option<&ConcurrentSubgraphCache> {
        match &self.cache {
            CacheMode::Shared(cache) => Some(cache),
            _ => None,
        }
    }

    fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome> {
        // The common no-override case borrows the configured parameters;
        // only overridden requests pay a parameter clone.
        let outcome = if req.k.is_none() && req.overrides == ParamOverrides::default() {
            self.run_staged(&self.params, req.seed, ws)?
        } else {
            let params = self.effective_meloppr(req)?;
            self.run_staged(&params, req.seed, ws)?
        };
        Ok(QueryOutcome {
            stats: QueryStats::from_meloppr(&outcome.stats),
            ranking: outcome.ranking,
        })
    }
}

impl<G: GraphView + Sync + ?Sized> Meloppr<'_, G> {
    fn run_staged(
        &self,
        params: &MelopprParams,
        seed: NodeId,
        ws: &mut QueryWorkspace,
    ) -> Result<MelopprOutcome> {
        match &self.cache {
            CacheMode::Owned(cache) => {
                let mut cache = cache.lock().expect("cache poisoned");
                staged_query_cached_with(self.graph, params, seed, &mut cache, ws)
            }
            CacheMode::Shared(cache) => {
                staged_query_shared_with(self.graph, params, seed, cache, ws)
            }
            CacheMode::None if self.threads > 1 => {
                parallel_query_impl(self.graph, params, seed, self.threads)
            }
            CacheMode::None => staged_query_with(self.graph, params, seed, ws),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meloppr::MelopprEngine;
    use crate::params::PprParams;

    use meloppr_graph::generators;

    fn params() -> MelopprParams {
        MelopprParams {
            ppr: PprParams::new(0.85, 6, 20).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.1),
            ..MelopprParams::paper_defaults()
        }
    }

    #[test]
    fn matches_direct_engine_bit_for_bit() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 5)
            .unwrap();
        let backend = Meloppr::new(&g, params()).unwrap();
        let direct = MelopprEngine::new(&g, params()).unwrap().query(7).unwrap();
        let via_trait = backend.query(&QueryRequest::new(7)).unwrap();
        assert_eq!(via_trait.ranking, direct.ranking);
        assert_eq!(via_trait.stats.stages, direct.stats.stages);
        assert_eq!(
            via_trait.stats.peak_memory_bytes,
            direct.stats.peak_cpu_bytes
        );
    }

    #[test]
    fn all_execution_modes_agree() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 6)
            .unwrap();
        let sequential = Meloppr::new(&g, params()).unwrap();
        let threaded = Meloppr::new(&g, params()).unwrap().with_threads(4).unwrap();
        let cached = Meloppr::new(&g, params()).unwrap().with_cache(64);
        let req = QueryRequest::new(3);
        let a = sequential.query(&req).unwrap();
        let b = threaded.query(&req).unwrap();
        let c = cached.query(&req).unwrap();
        assert_eq!(a.ranking, b.ranking);
        assert_eq!(a.ranking, c.ranking);
        // The cache changes only BFS accounting, never the answer; a
        // repeat query hits the cache and charges less BFS.
        let c2 = cached.query(&req).unwrap();
        assert_eq!(c2.ranking, c.ranking);
        assert!(c2.stats.bfs_edges_scanned < c.stats.bfs_edges_scanned);
    }

    #[test]
    fn shared_cache_mode_agrees_and_shares_extractions() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 6)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(256));
        let plain = Meloppr::new(&g, params()).unwrap();
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        assert!(shared.shared_cache().is_some());
        assert!(plain.shared_cache().is_none());

        let req = QueryRequest::new(3);
        let a = plain.query(&req).unwrap();
        let b = shared.query(&req).unwrap();
        assert_eq!(a.ranking, b.ranking);
        let cold_extractions = cache.stats().extractions;
        assert!(cold_extractions > 0);

        // A repeat query is served entirely from the cache: zero BFS,
        // zero new extractions.
        let c = shared.query(&req).unwrap();
        assert_eq!(c.ranking, a.ranking);
        assert_eq!(c.stats.bfs_edges_scanned, 0);
        assert_eq!(cache.stats().extractions, cold_extractions);
    }

    #[test]
    fn estimate_discounts_bfs_by_observed_hit_rate() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 9)
            .unwrap();
        let cache = Arc::new(ConcurrentSubgraphCache::new(512));
        let plain = Meloppr::new(&g, params()).unwrap();
        let shared = Meloppr::new(&g, params())
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        let req = QueryRequest::new(5);
        // Cold cache: no observations, no discount.
        assert_eq!(
            plain.estimate(&req).unwrap().latency_ns,
            shared.estimate(&req).unwrap().latency_ns
        );
        // Warm the cache until the hit rate is high, then the estimate
        // must drop below the uncached backend's.
        for _ in 0..4 {
            shared.query(&req).unwrap();
        }
        assert!(cache.stats().hit_rate() > 0.5);
        assert!(
            shared.estimate(&req).unwrap().latency_ns < plain.estimate(&req).unwrap().latency_ns
        );
    }

    #[test]
    fn length_override_restages() {
        let g = generators::karate_club();
        let backend = Meloppr::new(&g, params()).unwrap();
        let outcome = backend
            .query(&QueryRequest::new(0).with_length(4).with_k(5))
            .unwrap();
        assert_eq!(outcome.stats.stages.len(), 2); // 4 = 2 + 2
        assert_eq!(outcome.ranking.len(), 5);
    }

    #[test]
    fn restage_distributions() {
        assert_eq!(restage(2, 6), vec![3, 3]);
        assert_eq!(restage(2, 5), vec![3, 2]);
        assert_eq!(restage(3, 7), vec![3, 2, 2]);
        assert_eq!(restage(3, 2), vec![1, 1]); // clamped to length
        assert_eq!(restage(1, 4), vec![4]);
    }

    #[test]
    fn zero_threads_rejected() {
        let g = generators::karate_club();
        assert!(Meloppr::new(&g, params()).unwrap().with_threads(0).is_err());
    }

    #[test]
    fn exactness_capability_tracks_selection() {
        let g = generators::karate_club();
        let approx = Meloppr::new(&g, params()).unwrap();
        assert!(!approx.capabilities().exact);
        let exact_params = MelopprParams {
            selection: SelectionStrategy::All,
            ..params()
        };
        let exact = Meloppr::new(&g, exact_params).unwrap();
        assert!(exact.capabilities().exact);
    }

    #[test]
    fn estimate_scales_with_selection_and_threads() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.15, 9)
            .unwrap();
        let narrow = Meloppr::new(&g, params()).unwrap();
        let wide_params = MelopprParams {
            selection: SelectionStrategy::TopFraction(0.8),
            ..params()
        };
        let wide = Meloppr::new(&g, wide_params).unwrap();
        let req = QueryRequest::new(0);
        assert!(
            wide.estimate(&req).unwrap().latency_ns > narrow.estimate(&req).unwrap().latency_ns
        );
        let threaded = Meloppr::new(&g, params()).unwrap().with_threads(8).unwrap();
        assert!(
            threaded.estimate(&req).unwrap().latency_ns < narrow.estimate(&req).unwrap().latency_ns
        );
    }

    #[test]
    fn prepare_probes_and_warms() {
        let g = generators::karate_club();
        let mut backend = Meloppr::new(&g, params()).unwrap().with_cache(8);
        backend.prepare().unwrap();
        backend.prepare().unwrap(); // idempotent
        assert!(backend.query(&QueryRequest::new(0)).is_ok());
    }
}
