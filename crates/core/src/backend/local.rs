//! The `LocalPPR-CPU` baseline behind the unified API.

use meloppr_graph::{GraphView, NodeId};

use super::{
    BackendCaps, BackendKind, CostEstimate, LatencyModel, PprBackend, QueryOutcome, QueryRequest,
    QueryStats, WorkProfile,
};
use crate::diffusion::{diffuse_into, DiffusionConfig};
use crate::error::Result;
use crate::local_ppr::LocalPprStats;
use crate::memory::cpu_task_memory;
use crate::params::PprParams;
use crate::score_vec::top_k_in_place;
use crate::workspace::{QueryWorkspace, WorkspacePool};

/// Single-stage diffusion on the whole depth-`L` ball (Fig. 2(b)).
///
/// Exact (ball exactness) but memory-proportional to the
/// exponentially-growing `G_L(s)` — the solver MeLoPPR's stage
/// decomposition exists to beat. Routing picks it when exactness is
/// required and the ball fits the memory budget.
///
/// # Examples
///
/// ```
/// use meloppr_core::backend::{LocalPpr, PprBackend, QueryRequest};
/// use meloppr_core::PprParams;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let backend = LocalPpr::new(&g, PprParams::new(0.85, 4, 5)?)?;
/// let outcome = backend.query(&QueryRequest::new(0))?;
/// assert_eq!(outcome.ranking.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LocalPpr<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    params: PprParams,
    profile: WorkProfile,
    latency: LatencyModel,
    pool: WorkspacePool,
}

impl<'g, G: GraphView + ?Sized> LocalPpr<'g, G> {
    /// Creates the backend, validating `params` and probing the graph's
    /// ball growth for cost estimation.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`](crate::PprError::InvalidParams)
    /// on invalid parameters.
    pub fn new(graph: &'g G, params: PprParams) -> Result<Self> {
        params.validate()?;
        let profile = WorkProfile::probe_default(graph, params.length as u32)?;
        Ok(LocalPpr {
            graph,
            params,
            profile,
            latency: LatencyModel::default(),
            pool: WorkspacePool::new(),
        })
    }

    /// The backend's configured base parameters.
    pub fn params(&self) -> &PprParams {
        &self.params
    }
}

impl<G: GraphView + ?Sized> PprBackend for LocalPpr<'_, G> {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::LocalPpr,
            exact: true,
            deterministic: true,
            accelerated: false,
            batch_aware: true,
        }
    }

    fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate> {
        let params = req.effective_params(&self.params)?;
        let ball = self.profile.ball(params.length);
        let m = self.latency;
        let directed = 2.0 * ball.edges as f64;
        Ok(CostEstimate {
            latency_ns: m.fixed_overhead_ns
                + directed * m.ns_per_bfs_edge
                + params.length as f64 * directed * m.ns_per_diffusion_edge
                + ball.nodes as f64 * m.ns_per_node,
            peak_memory_bytes: cpu_task_memory(ball.nodes, ball.edges).total(),
            expected_precision: 1.0,
        })
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool> {
        Some(&self.pool)
    }

    fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome> {
        let params = req.effective_params(&self.params)?;
        let QueryWorkspace {
            extract,
            diffusion,
            sparse,
            ..
        } = ws;
        let (sub, bfs_edges_scanned) =
            extract.extract(self.graph, req.seed, params.length as u32)?;
        let config = DiffusionConfig::new(params.alpha, params.length)?;
        let work = diffuse_into(sub, &[(sub.seed_local(), 1.0)], config, diffusion)?;

        sparse.clear();
        sparse.extend(
            diffusion
                .accumulated()
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s > 0.0)
                .map(|(local, &s)| (sub.to_global(local as NodeId), s)),
        );
        top_k_in_place(sparse, params.k);
        let ranking = sparse.clone();

        let stats = LocalPprStats {
            ball_nodes: sub.num_nodes(),
            ball_edges: sub.num_edges(),
            bfs_edges_scanned,
            diffusion_edge_updates: work.edge_updates,
            memory: cpu_task_memory(sub.num_nodes(), sub.num_edges()),
        };
        Ok(QueryOutcome {
            stats: QueryStats::from_local(&stats),
            ranking,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_ppr::local_ppr_impl;
    use meloppr_graph::generators;

    #[test]
    fn matches_direct_call_bit_for_bit() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 10).unwrap();
        let backend = LocalPpr::new(&g, params).unwrap();
        for seed in [0u32, 5, 33] {
            let via_trait = backend.query(&QueryRequest::new(seed)).unwrap();
            let direct = local_ppr_impl(&g, seed, &params).unwrap();
            assert_eq!(via_trait.ranking, direct.ranking);
            assert_eq!(
                via_trait.stats.peak_memory_bytes,
                direct.stats.memory.total()
            );
        }
    }

    #[test]
    fn stats_normalize_to_one_stage() {
        let g = generators::karate_club();
        let backend = LocalPpr::new(&g, PprParams::new(0.85, 4, 5).unwrap()).unwrap();
        let outcome = backend.query(&QueryRequest::new(0)).unwrap();
        assert_eq!(outcome.stats.stages.len(), 1);
        assert_eq!(outcome.stats.total_diffusions, 1);
        assert!(outcome.stats.bfs_edges_scanned > 0);
        assert_eq!(outcome.stats.backend, BackendKind::LocalPpr);
    }

    #[test]
    fn estimate_grows_with_length() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.2, 3)
            .unwrap();
        let backend = LocalPpr::new(&g, PprParams::new(0.85, 6, 20).unwrap()).unwrap();
        let short = backend
            .estimate(&QueryRequest::new(0).with_length(2))
            .unwrap();
        let long = backend.estimate(&QueryRequest::new(0)).unwrap();
        assert!(long.latency_ns > short.latency_ns);
        assert!(long.peak_memory_bytes >= short.peak_memory_bytes);
    }
}
