//! Exact PPR ground truth `T(s, k)` via full-graph diffusion (Eq. 2).
//!
//! Precision in the paper is always measured against the exact top-`k` set
//! of the length-`L` diffusion on the whole graph. This module computes it
//! with the same frontier-sparse kernel used everywhere else, but without
//! any ball restriction — an intentionally independent code path from the
//! [`LocalPpr`](crate::backend::LocalPpr) ball-restricted baseline, which
//! the test suite cross-validates against (ball exactness).

use meloppr_graph::{GraphView, NodeId};

use crate::diffusion::{diffuse_from_seed, DiffusionConfig, DiffusionOutput};
use crate::error::Result;
use crate::params::PprParams;
use crate::score_vec::{top_k_dense, Ranking};

/// Runs the exact full-graph diffusion `GD(L)(e_s)`.
///
/// # Errors
///
/// Returns [`PprError`](crate::PprError) variants for invalid parameters or
/// an out-of-bounds seed.
pub fn exact_ppr<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    params: &PprParams,
) -> Result<DiffusionOutput> {
    params.validate()?;
    let config = DiffusionConfig::new(params.alpha, params.length)?;
    diffuse_from_seed(g, seed, config)
}

/// The exact top-`k` set `T(s, k)` (Eq. 2): full-graph diffusion followed
/// by the ranking operator `R`.
///
/// # Errors
///
/// As [`exact_ppr`].
///
/// # Examples
///
/// ```
/// use meloppr_core::{exact_top_k, PprParams};
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let params = PprParams::new(0.85, 4, 5)?;
/// let top = exact_top_k(&g, 0, &params)?;
/// assert_eq!(top.len(), 5);
/// // The seed itself carries the most probability mass.
/// assert_eq!(top[0].0, 0);
/// # Ok(())
/// # }
/// ```
pub fn exact_top_k<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    params: &PprParams,
) -> Result<Ranking> {
    let out = exact_ppr(g, seed, params)?;
    Ok(top_k_dense(&out.accumulated, params.k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn seed_ranks_first() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 6, 10).unwrap();
        let top = exact_top_k(&g, 0, &params).unwrap();
        assert_eq!(top[0].0, 0);
    }

    #[test]
    fn neighbors_outrank_distant_nodes_on_path() {
        let g = generators::path(9).unwrap();
        let params = PprParams::new(0.85, 4, 9).unwrap();
        let out = exact_ppr(&g, 4, &params).unwrap();
        let s = &out.accumulated;
        // A path is bipartite, so scores alternate by distance parity
        // (mass at even-distance nodes only on even steps, etc.).
        // Monotonicity therefore holds within each parity class.
        assert!(s[4] > s[2] && s[2] > s[0]); // even distances 0 < 2 < 4
        assert!(s[3] > s[1]); // odd distances 1 < 3
                              // Symmetry of the path around the seed.
        assert!((s[3] - s[5]).abs() < 1e-12);
        assert!((s[2] - s[6]).abs() < 1e-12);
        assert!((s[1] - s[7]).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_rejected() {
        let g = generators::path(3).unwrap();
        let bad = PprParams {
            alpha: 2.0,
            length: 4,
            k: 5,
        };
        assert!(exact_top_k(&g, 0, &bad).is_err());
    }

    #[test]
    fn out_of_bounds_seed_rejected() {
        let g = generators::path(3).unwrap();
        let params = PprParams::new(0.85, 2, 2).unwrap();
        assert!(exact_top_k(&g, 42, &params).is_err());
    }

    #[test]
    fn karate_instructor_faction_ranks_high() {
        // Node 0 (instructor) should rank its close allies 1, 2, 3 within
        // the top few positions.
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 6, 6).unwrap();
        let top = exact_top_k(&g, 0, &params).unwrap();
        let ids: Vec<NodeId> = top.iter().map(|&(v, _)| v).collect();
        for ally in [1, 2, 3] {
            assert!(ids.contains(&ally), "ally {ally} missing from {ids:?}");
        }
    }
}
