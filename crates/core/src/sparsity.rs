//! PPR-vector sparsity analysis (Fig. 6, bottom).
//!
//! The foundation of MeLoPPR's latency–precision trade-off is that after a
//! stage diffusion "only less than 1 % of the total nodes inside `G_{l1}(s)`
//! have relatively large PPR scores, while more than 90 % of the nodes have
//! close-to-zero scores" (§IV-D). This module quantifies that claim: scores
//! are normalized by the maximum and bucketed on a log10 scale, and summary
//! fractions (`near-zero`, `large`) are reported.

/// One bucket of a log-scale score histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogBucket {
    /// Inclusive lower bound of `log10(score / max_score)` for this bucket.
    pub log10_lo: f64,
    /// Exclusive upper bound (the last bucket includes 0.0, i.e. the max).
    pub log10_hi: f64,
    /// Number of scores falling in the bucket.
    pub count: usize,
}

/// Summary sparsity statistics of a non-negative score vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Nodes with a strictly positive score.
    pub nonzero: usize,
    /// Fraction of *positive-score* nodes whose normalized score is below
    /// `1e-3` (the paper's "close-to-zero", > 90 % in Fig. 6).
    pub near_zero_fraction: f64,
    /// Fraction of positive-score nodes whose normalized score is above
    /// `1e-1` (the paper's "relatively large", < 1 % in Fig. 6).
    pub large_fraction: f64,
    /// The largest score (the normalization constant).
    pub max_score: f64,
}

/// Normalized-score threshold under which a node counts as "close to
/// zero".
pub const NEAR_ZERO_THRESHOLD: f64 = 1e-3;

/// Normalized-score threshold above which a node counts as "relatively
/// large".
pub const LARGE_THRESHOLD: f64 = 1e-1;

/// Computes [`SparsityStats`] over a dense score vector. Zero entries are
/// ignored (they are nodes the diffusion never touched).
pub fn sparsity_stats(scores: &[f64]) -> SparsityStats {
    let max_score = scores.iter().copied().fold(0.0f64, f64::max);
    let mut nonzero = 0usize;
    let mut near_zero = 0usize;
    let mut large = 0usize;
    if max_score > 0.0 {
        for &s in scores {
            if s <= 0.0 {
                continue;
            }
            nonzero += 1;
            let norm = s / max_score;
            if norm < NEAR_ZERO_THRESHOLD {
                near_zero += 1;
            }
            if norm > LARGE_THRESHOLD {
                large += 1;
            }
        }
    }
    let denom = nonzero.max(1) as f64;
    SparsityStats {
        nonzero,
        near_zero_fraction: near_zero as f64 / denom,
        large_fraction: large as f64 / denom,
        max_score,
    }
}

/// Buckets positive scores by `log10(score / max)` into `buckets` bins
/// spanning `[-range_decades, 0]`; scores below the range land in the first
/// bucket.
///
/// # Panics
///
/// Panics if `buckets == 0` or `range_decades <= 0.0`.
pub fn log_histogram(scores: &[f64], buckets: usize, range_decades: f64) -> Vec<LogBucket> {
    assert!(buckets > 0, "histogram needs at least one bucket");
    assert!(range_decades > 0.0, "range must be positive");
    let max_score = scores.iter().copied().fold(0.0f64, f64::max);
    let width = range_decades / buckets as f64;
    let mut out: Vec<LogBucket> = (0..buckets)
        .map(|i| LogBucket {
            log10_lo: -range_decades + i as f64 * width,
            log10_hi: -range_decades + (i + 1) as f64 * width,
            count: 0,
        })
        .collect();
    if max_score <= 0.0 {
        return out;
    }
    for &s in scores {
        if s <= 0.0 {
            continue;
        }
        let log = (s / max_score).log10();
        let idx = if log <= -range_decades {
            0
        } else {
            (((log + range_decades) / width) as usize).min(buckets - 1)
        };
        out[idx].count += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_peaked_vector() {
        // One dominant score, many tiny ones: high near-zero fraction.
        let mut scores = vec![1e-6; 99];
        scores.push(1.0);
        let s = sparsity_stats(&scores);
        assert_eq!(s.nonzero, 100);
        assert_eq!(s.max_score, 1.0);
        assert!((s.near_zero_fraction - 0.99).abs() < 1e-12);
        assert!((s.large_fraction - 0.01).abs() < 1e-12);
    }

    #[test]
    fn stats_ignore_zero_entries() {
        let scores = vec![0.0, 0.5, 0.0];
        let s = sparsity_stats(&scores);
        assert_eq!(s.nonzero, 1);
        assert_eq!(s.large_fraction, 1.0);
    }

    #[test]
    fn stats_on_all_zero() {
        let s = sparsity_stats(&[0.0, 0.0]);
        assert_eq!(s.nonzero, 0);
        assert_eq!(s.max_score, 0.0);
        assert_eq!(s.near_zero_fraction, 0.0);
    }

    #[test]
    fn log_histogram_buckets_correctly() {
        // Scores at 1, 0.1, 0.01 of max over 3 decades with 3 buckets.
        let scores = vec![1.0, 0.1, 0.01];
        let h = log_histogram(&scores, 3, 3.0);
        // log10: 0 -> last bucket; -1 -> last bucket boundary... -1 falls in
        // bucket [-1, 0); -2 in [-2, -1).
        assert_eq!(h[2].count, 2); // 1.0 (log 0) clamps into last, 0.1 at -1
        assert_eq!(h[1].count, 1); // 0.01 at -2
        assert_eq!(h.iter().map(|b| b.count).sum::<usize>(), 3);
    }

    #[test]
    fn log_histogram_underflow_goes_first_bucket() {
        let scores = vec![1.0, 1e-9];
        let h = log_histogram(&scores, 4, 4.0);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[3].count, 1);
    }

    #[test]
    fn bucket_bounds_cover_range() {
        let h = log_histogram(&[1.0], 5, 5.0);
        assert_eq!(h[0].log10_lo, -5.0);
        assert_eq!(h[4].log10_hi, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = log_histogram(&[1.0], 0, 3.0);
    }

    #[test]
    fn real_diffusion_is_sparse() {
        // The claim of §IV-D on a synthetic citation graph: diffusion from
        // a seed leaves most touched nodes with near-zero normalized
        // scores.
        use crate::diffusion::{diffuse_from_seed, DiffusionConfig};
        use meloppr_graph::generators::corpus::PaperGraph;
        let g = PaperGraph::G1Citeseer.generate_scaled(0.3, 2).unwrap();
        let out = diffuse_from_seed(&g, 17, DiffusionConfig::new(0.85, 3).unwrap()).unwrap();
        let s = sparsity_stats(&out.residual);
        assert!(
            s.nonzero > 20,
            "ball too small for the claim: {}",
            s.nonzero
        );
        assert!(
            s.large_fraction < 0.25,
            "large fraction unexpectedly high: {}",
            s.large_fraction
        );
    }
}
