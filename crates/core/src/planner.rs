//! Memory-budget stage planning — "adaptively breaks the large graph"
//! (§IV-A).
//!
//! The paper fixes `L = 6 = 3 + 3` for its evaluation, but motivates
//! MeLoPPR as *adaptive*: pick sub-graphs that "can entirely fit into the
//! on-chip memory". This module makes that concrete: probe the ball growth
//! around sample seeds, then choose the stage split of `L` whose largest
//! per-stage ball fits a byte budget with as few stages as possible
//! (fewer stages → fewer approximation points → better precision).
//! The `ablation_stages` experiment quantifies the trade-off.

use meloppr_graph::{ball_growth, BallSize, GraphView, NodeId};

use crate::error::{PprError, Result};
use crate::memory::cpu_task_memory;
use crate::params::PprParams;

/// A stage split chosen by [`plan_stages`].
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// The chosen stage lengths (sum = `L`).
    pub stages: Vec<usize>,
    /// Expected peak bytes of a single stage diffusion under the CPU
    /// memory model, from the probed average ball sizes.
    pub expected_peak_bytes: usize,
    /// Whether the plan fits the requested budget ( [`plan_stages`] still
    /// returns the minimal-peak plan when nothing fits).
    pub fits_budget: bool,
    /// Probed average ball size per depth `0..=L` (over the sample seeds).
    pub probed_growth: Vec<BallSize>,
}

/// Probes ball growth from `sample_seeds` and picks the best stage split
/// of `params.length` under `budget_bytes`.
///
/// Preference order: fits budget → fewest stages → largest first stage →
/// lexicographically largest split (front-loading depth helps precision
/// because stage-one output is exact).
///
/// # Errors
///
/// Returns [`PprError::InvalidParams`] if `sample_seeds` is empty, plus
/// graph errors for out-of-bounds seeds.
pub fn plan_stages<G: GraphView + ?Sized>(
    g: &G,
    params: &PprParams,
    budget_bytes: usize,
    sample_seeds: &[NodeId],
) -> Result<StagePlan> {
    params.validate()?;
    if sample_seeds.is_empty() {
        return Err(PprError::InvalidParams {
            reason: "stage planning needs at least one sample seed".into(),
        });
    }
    let depth = params.length as u32;
    let mut sums: Vec<(usize, usize)> = vec![(0, 0); params.length + 1];
    for &seed in sample_seeds {
        let growth = ball_growth(g, seed, depth)?;
        for (i, b) in growth.iter().enumerate() {
            sums[i].0 += b.nodes;
            sums[i].1 += b.edges;
        }
    }
    let n = sample_seeds.len();
    let probed_growth: Vec<BallSize> = sums
        .iter()
        .enumerate()
        .map(|(d, &(nodes, edges))| BallSize {
            depth: d as u32,
            nodes: nodes / n,
            edges: edges / n,
        })
        .collect();

    let peak_of = |stages: &[usize]| -> usize {
        stages
            .iter()
            .map(|&l| {
                let b = probed_growth[l];
                cpu_task_memory(b.nodes, b.edges).total()
            })
            .max()
            .unwrap_or(0)
    };

    let mut best: Option<(Vec<usize>, usize, bool)> = None;
    for split in compositions(params.length) {
        let peak = peak_of(&split);
        let fits = peak <= budget_bytes;
        let better = match &best {
            None => true,
            Some((b_split, b_peak, b_fits)) => {
                // Prefer fitting; then fewer stages; then larger first
                // stage; then lexicographically larger split; when nothing
                // fits, prefer the smallest peak.
                match (fits, *b_fits) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => {
                        (split.len(), std::cmp::Reverse(split.clone()))
                            < (b_split.len(), std::cmp::Reverse(b_split.clone()))
                    }
                    (false, false) => peak < *b_peak,
                }
            }
        };
        if better {
            best = Some((split, peak, fits));
        }
    }
    let (stages, expected_peak_bytes, fits_budget) =
        best.expect("length >= 1 has at least one composition");
    Ok(StagePlan {
        stages,
        expected_peak_bytes,
        fits_budget,
        probed_growth,
    })
}

/// All compositions (ordered integer partitions) of `n` into parts ≥ 1.
/// `n = 6` has 32 compositions — trivially enumerable for realistic `L`.
fn compositions(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![];
    }
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn rec(remaining: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining == 0 {
            out.push(current.clone());
            return;
        }
        for part in 1..=remaining {
            current.push(part);
            rec(remaining - part, current, out);
            current.pop();
        }
    }
    rec(n, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn compositions_count_is_2_pow_n_minus_1() {
        for n in 1..=7 {
            assert_eq!(compositions(n).len(), 1 << (n - 1), "n = {n}");
        }
        assert!(compositions(0).is_empty());
    }

    #[test]
    fn generous_budget_keeps_single_stage() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let plan = plan_stages(&g, &params, usize::MAX, &[0]).unwrap();
        assert_eq!(plan.stages, vec![4]);
        assert!(plan.fits_budget);
    }

    #[test]
    fn tight_budget_splits_stages() {
        let g = generators::corpus::PaperGraph::G3Pubmed
            .generate_scaled(0.05, 4)
            .unwrap();
        let params = PprParams::new(0.85, 6, 20).unwrap();
        // Budget chosen between the depth-3 ball and the depth-6 ball.
        let generous = plan_stages(&g, &params, usize::MAX, &[10, 20, 30]).unwrap();
        let depth6 = generous.expected_peak_bytes;
        let plan = plan_stages(&g, &params, depth6 / 4, &[10, 20, 30]).unwrap();
        assert!(plan.stages.len() >= 2, "plan = {:?}", plan.stages);
        assert!(plan.expected_peak_bytes <= depth6 / 4 || !plan.fits_budget);
        let total: usize = plan.stages.iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn impossible_budget_returns_minimal_peak() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.1, 9)
            .unwrap();
        let params = PprParams::new(0.85, 6, 20).unwrap();
        let plan = plan_stages(&g, &params, 1, &[5]).unwrap();
        assert!(!plan.fits_budget);
        // The minimal peak is the all-ones split (smallest balls).
        assert_eq!(plan.stages, vec![1; 6]);
    }

    #[test]
    fn front_loads_depth_on_ties() {
        // On a path every split has identical tiny peaks, so the planner
        // should pick the single-stage split.
        let g = generators::path(64).unwrap();
        let params = PprParams::new(0.85, 4, 3).unwrap();
        let plan = plan_stages(&g, &params, usize::MAX, &[32]).unwrap();
        assert_eq!(plan.stages, vec![4]);
    }

    #[test]
    fn empty_seed_sample_rejected() {
        let g = generators::path(4).unwrap();
        let params = PprParams::new(0.85, 2, 2).unwrap();
        assert!(plan_stages(&g, &params, 1000, &[]).is_err());
    }

    #[test]
    fn probed_growth_is_monotone() {
        let g = generators::grid(10, 10).unwrap();
        let params = PprParams::new(0.85, 5, 5).unwrap();
        let plan = plan_stages(&g, &params, usize::MAX, &[44, 55]).unwrap();
        for w in plan.probed_growth.windows(2) {
            assert!(w[1].nodes >= w[0].nodes);
            assert!(w[1].edges >= w[0].edges);
        }
    }
}
