//! The persisted ball index — the disk half of the two-tier ball store.
//!
//! MeLoPPR's cache trades RAM for BFS work: a ball that falls out of the
//! byte-budgeted [`ConcurrentSubgraphCache`](crate::ConcurrentSubgraphCache)
//! must be re-extracted from the full graph, and on skewed traffic that
//! re-extraction dominates the miss cost. PowerWalk-style precomputation
//! moves that work offline: [`build_index`] BFS-extracts **every** node's
//! ball at one configured depth, encodes each in the
//! [`CompactBall`] wire layout, and writes one versioned, checksummed
//! index file. Online, a [`BallIndex`] serves any RAM miss with a single
//! positioned read (`read_exact_at` into a pooled caller-owned buffer —
//! no `unsafe`, no mmap) that decodes the compact wire form; the cache
//! re-represents it per its configured ball store (inflating to a full
//! sub-graph under the default store so disk-served answers stay
//! bit-identical to BFS-served ones), falling back to live BFS only when
//! the index lacks the node or was built at a different depth.
//!
//! # File format (`meloppr-ballindex v1`)
//!
//! All integers are little-endian; the layout is position-independent so
//! a record is one `read_exact_at` away:
//!
//! ```text
//! "meloppr-ballindex v1\n"           ASCII header line (21 bytes)
//! depth      u32                     ball depth every record was built at
//! num_nodes  u32                     node count of the indexed graph
//! table      (num_nodes + 1) × u64   absolute file offset of each record;
//!                                    table[i] == table[i+1] ⇒ node i has
//!                                    no record (ball exceeded u16 ids)
//! records    …                       per-node, at their table offsets:
//!     n           u32                nodes in the ball
//!     m           u32                directed adjacency entries
//!     global_ids  n × u32            local → parent-graph id map
//!     offsets     (n + 1) × u32      CSR prefix sums into `neighbors`
//!     neighbors   m × u16            packed local adjacency
//!     degrees     n × u32            parent-graph walk degrees
//! footer     u64 body_len + u32 crc32   integrity trailer over every
//!                                       byte before it (same CRC-32 as
//!                                       the `meloppr-state` footer)
//! ```
//!
//! A missing file is a silent cold boot; a corrupt, truncated or
//! version-mismatched file **warns and boots cold** via
//! [`BallIndex::load`], exactly like calibration state — a stale index
//! must never keep a server from starting. Every decoded record passes
//! [`CompactBall::from_raw_parts`] validation, so a torn write can
//! produce an error but never an out-of-bounds panic.
//!
//! Reads pass the `index.read` failpoint, so chaos tests can inject
//! mid-burst cold-tier failures and assert the BFS fallback keeps
//! rankings bit-identical.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

use meloppr_graph::{ExtractScratch, GraphView, NodeId};

use crate::backend::persist::crc32_update;
use crate::quantized::CompactBall;

/// First bytes of every index file; the version suffix gates decoding.
const HEADER: &[u8] = b"meloppr-ballindex v1\n";

/// Trailing integrity footer: `u64` body length + `u32` CRC-32.
const FOOTER_LEN: u64 = 12;

/// Fixed header fields after the magic line: `u32` depth + `u32` nodes.
const FIXED_FIELDS: u64 = 8;

/// Chunk size for streaming the checksum; bounds loader memory at open.
const CRC_CHUNK: usize = 64 * 1024;

/// A loaded ball index: the backing file plus the in-RAM `u64` offset
/// table (16 bytes per graph node — the only part of the index that
/// stays resident).
///
/// Shared read-only across threads; positioned reads need no seek state,
/// so concurrent cold-tier lookups never contend on the index itself.
#[derive(Debug)]
pub struct BallIndex {
    file: File,
    depth: u32,
    offsets: Vec<u64>,
}

/// What [`build_index`] did, for operator logs and bench sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexBuildReport {
    /// Nodes whose ball was encoded into the index.
    pub nodes_indexed: usize,
    /// Nodes skipped because their ball exceeds `u16` local ids
    /// (they will always fall back to live BFS).
    pub nodes_skipped: usize,
    /// Summed in-RAM [`CompactBall`] bytes of every indexed ball — the
    /// denominator of the "cache budget ≤ ¼ of resident ball bytes"
    /// beyond-RAM benchmark configuration.
    pub ball_bytes: usize,
    /// Total bytes of the written index file.
    pub file_bytes: u64,
}

impl BallIndex {
    /// Opens and fully validates an index file: header, version, footer
    /// checksum (streamed in fixed chunks) and offset-table invariants.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] with a human-readable reason for
    /// any corruption or version mismatch; other kinds for real I/O
    /// failures.
    pub fn open(path: &Path) -> io::Result<BallIndex> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let min_len = HEADER.len() as u64 + FIXED_FIELDS + 8 + FOOTER_LEN;
        if file_len < min_len {
            return Err(invalid(format!(
                "index file is {file_len} bytes; even an empty-graph index needs {min_len}"
            )));
        }

        // Footer first: a truncated file should say "truncated", not
        // fail half-way through a short offset table.
        let body_len = file_len - FOOTER_LEN;
        let mut footer = [0u8; FOOTER_LEN as usize];
        file.read_exact_at(&mut footer, body_len)?;
        let recorded_len = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let recorded_crc = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes"));
        if recorded_len != body_len {
            return Err(invalid(format!(
                "index truncated: footer recorded {recorded_len} body bytes, found {body_len}"
            )));
        }
        let actual_crc = stream_crc32(&mut file, body_len)?;
        if actual_crc != recorded_crc {
            return Err(invalid(format!(
                "index crc32 mismatch: footer recorded {recorded_crc:08x}, \
                 content hashes to {actual_crc:08x}"
            )));
        }

        let mut header = vec![0u8; HEADER.len()];
        file.read_exact_at(&mut header, 0)?;
        if header != HEADER {
            return Err(invalid(format!(
                "unsupported index header {:?} (want {:?})",
                String::from_utf8_lossy(&header),
                String::from_utf8_lossy(HEADER),
            )));
        }
        let mut fixed = [0u8; FIXED_FIELDS as usize];
        file.read_exact_at(&mut fixed, HEADER.len() as u64)?;
        let depth = u32::from_le_bytes(fixed[0..4].try_into().expect("4 bytes"));
        let num_nodes = u32::from_le_bytes(fixed[4..8].try_into().expect("4 bytes")) as usize;

        let table_pos = HEADER.len() as u64 + FIXED_FIELDS;
        let table_bytes = (num_nodes as u64 + 1)
            .checked_mul(8)
            .filter(|bytes| table_pos + bytes <= body_len)
            .ok_or_else(|| {
                invalid(format!(
                    "offset table for {num_nodes} nodes does not fit the file body"
                ))
            })?;
        let mut raw = vec![0u8; table_bytes as usize];
        file.read_exact_at(&mut raw, table_pos)?;
        let offsets: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let data_start = table_pos + table_bytes;
        if offsets[0] != data_start {
            return Err(invalid(format!(
                "offset table starts at {} (want {data_start})",
                offsets[0]
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("offset table is not monotone".into()));
        }
        if offsets[num_nodes] != body_len {
            return Err(invalid(format!(
                "offset table ends at {} (want body length {body_len})",
                offsets[num_nodes]
            )));
        }
        Ok(BallIndex {
            file,
            depth,
            offsets,
        })
    }

    /// As [`BallIndex::open`], with the calibration-state boot policy: a
    /// missing file is a silent `Ok(None)` (first boot), a corrupt,
    /// truncated or version-mismatched file prints a warning to stderr
    /// and returns `Ok(None)` — the server boots cold on live BFS either
    /// way. Only real I/O failures are errors.
    pub fn load(path: &Path) -> io::Result<Option<BallIndex>> {
        match BallIndex::open(path) {
            Ok(index) => Ok(Some(index)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                eprintln!("warning: ignoring ball index {}: {e}", path.display());
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// The ball depth every record was built at; only lookups for
    /// exactly this depth are served from disk.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Node count of the graph this index was built over.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether `node` has a record at `depth`.
    pub fn contains(&self, node: NodeId, depth: u32) -> bool {
        depth == self.depth
            && (node as usize + 1) < self.offsets.len()
            && self.offsets[node as usize] != self.offsets[node as usize + 1]
    }

    /// Reads and decodes one ball with a single positioned read into
    /// `buf` (cleared and reused — the caller owns it, typically pooled
    /// in a query workspace, so the steady-state cold path allocates
    /// only the decoded ball that the cache will retain).
    ///
    /// Returns `Ok(None)` when the index cannot serve this `(node,
    /// depth)` — wrong depth, out-of-range node, or a ball that was too
    /// large to encode — which is the caller's cue to fall back to live
    /// BFS. Passes the `index.read` failpoint before touching the file.
    ///
    /// # Errors
    ///
    /// Read failures, or [`io::ErrorKind::InvalidData`] when the record
    /// fails structural validation.
    pub fn read_ball(
        &self,
        node: NodeId,
        depth: u32,
        buf: &mut Vec<u8>,
    ) -> io::Result<Option<CompactBall>> {
        crate::failpoint::check("index.read")?;
        if !self.contains(node, depth) {
            return Ok(None);
        }
        let start = self.offsets[node as usize];
        let len = (self.offsets[node as usize + 1] - start) as usize;
        buf.clear();
        buf.resize(len, 0);
        self.file.read_exact_at(buf, start)?;
        decode_record(buf).map(Some)
    }
}

fn invalid(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}

/// CRC-32 over the first `body_len` bytes of `file`, streamed in
/// [`CRC_CHUNK`]-sized reads.
fn stream_crc32(file: &mut File, body_len: u64) -> io::Result<u32> {
    file.seek(SeekFrom::Start(0))?;
    let mut state = 0xFFFF_FFFF_u32;
    let mut remaining = body_len;
    let mut chunk = vec![0u8; CRC_CHUNK.min(body_len as usize).max(1)];
    while remaining > 0 {
        let take = chunk.len().min(remaining as usize);
        file.read_exact(&mut chunk[..take])?;
        state = crc32_update(state, &chunk[..take]);
        remaining -= take as u64;
    }
    Ok(!state)
}

/// Appends the wire encoding of one ball to `out` (not cleared): the
/// `n`/`m` counts followed by the four raw arrays. The inverse of
/// [`decode_record`].
pub fn encode_record(ball: &CompactBall, out: &mut Vec<u8>) {
    let n = ball.global_ids().len() as u32;
    let m = ball.num_directed_edges() as u32;
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&m.to_le_bytes());
    for &id in ball.global_ids() {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for &off in ball.offsets_raw() {
        out.extend_from_slice(&off.to_le_bytes());
    }
    for &nbr in ball.neighbors_raw() {
        out.extend_from_slice(&nbr.to_le_bytes());
    }
    for &deg in ball.walk_degrees_raw() {
        out.extend_from_slice(&deg.to_le_bytes());
    }
}

/// Decodes one ball record, validating every structural invariant via
/// [`CompactBall::from_raw_parts`] — corrupt bytes produce a typed
/// error, never a panic. The inverse of [`encode_record`].
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] describing the first violation.
pub fn decode_record(bytes: &[u8]) -> io::Result<CompactBall> {
    if bytes.len() < 8 {
        return Err(invalid(format!(
            "ball record of {} bytes is shorter than its counts",
            bytes.len()
        )));
    }
    let n = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let m = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let expect = record_len(n, m);
    if bytes.len() != expect {
        return Err(invalid(format!(
            "ball record with n={n} m={m} must be {expect} bytes, got {}",
            bytes.len()
        )));
    }
    let mut at = 8usize;
    let mut take_u32s = |count: usize| -> Vec<u32> {
        let out = bytes[at..at + 4 * count]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        at += 4 * count;
        out
    };
    let global_ids: Vec<NodeId> = take_u32s(n);
    let offsets = take_u32s(n + 1);
    let neighbors: Vec<u16> = bytes[at..at + 2 * m]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
        .collect();
    at += 2 * m;
    let take_u32s = |count: usize| -> Vec<u32> {
        bytes[at..at + 4 * count]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    };
    let walk_degrees = take_u32s(n);
    CompactBall::from_raw_parts(global_ids, offsets, neighbors, walk_degrees)
        .map_err(|e| invalid(e.to_string()))
}

/// Exact wire size of a record with `n` nodes and `m` adjacency entries.
fn record_len(n: usize, m: usize) -> usize {
    8 + 4 * n + 4 * (n + 1) + 2 * m + 4 * n
}

/// Builds a full ball index for `graph` at `depth` and writes it to
/// `path` (via a pid-suffixed sibling temp file + rename, so a crash
/// mid-build never leaves a torn index to be mistaken for a real one).
///
/// Every node is BFS-extracted once through one reused
/// [`ExtractScratch`]; balls larger than `u16` local ids are recorded as
/// absent (they fall back to live BFS online, exactly as they bypass
/// [`BallStore::Compact`](crate::BallStore) in RAM).
///
/// # Errors
///
/// Filesystem failures, or extraction errors rendered as
/// [`io::ErrorKind::InvalidData`] (only possible if `graph` is
/// internally inconsistent).
pub fn build_index<G: GraphView + ?Sized>(
    graph: &G,
    depth: u32,
    path: &Path,
) -> io::Result<IndexBuildReport> {
    let n = graph.num_nodes();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = write_index(graph, n, depth, &tmp).and_then(|report| {
        std::fs::rename(&tmp, path)?;
        Ok(report)
    });
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_index<G: GraphView + ?Sized>(
    graph: &G,
    n: usize,
    depth: u32,
    tmp: &Path,
) -> io::Result<IndexBuildReport> {
    // Read+write: the checksum pass streams the body back in after the
    // records are written.
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    let mut out = io::BufWriter::new(file);
    out.write_all(HEADER)?;
    out.write_all(&depth.to_le_bytes())?;
    out.write_all(&(n as u32).to_le_bytes())?;

    // Reserve the offset table; the real offsets are patched in after
    // the records are streamed out.
    let table_pos = HEADER.len() as u64 + FIXED_FIELDS;
    let table_bytes = (n as u64 + 1) * 8;
    out.write_all(&vec![0u8; table_bytes as usize])?;

    let mut offsets = Vec::with_capacity(n + 1);
    let mut cursor = table_pos + table_bytes;
    offsets.push(cursor);
    let mut scratch = ExtractScratch::new();
    let mut record = Vec::new();
    let mut report = IndexBuildReport::default();
    for node in 0..n as NodeId {
        let (sub, _) = scratch
            .extract(graph, node, depth)
            .map_err(|e| invalid(format!("extracting ball of node {node}: {e}")))?;
        match CompactBall::from_subgraph(sub) {
            Some(ball) => {
                record.clear();
                encode_record(&ball, &mut record);
                out.write_all(&record)?;
                cursor += record.len() as u64;
                report.nodes_indexed += 1;
                report.ball_bytes += ball.memory_bytes_total();
            }
            None => report.nodes_skipped += 1,
        }
        offsets.push(cursor);
    }

    // Patch the table, then checksum the whole body with streamed reads
    // and append the footer.
    let mut file = out.into_inner().map_err(|e| e.into_error())?;
    let mut table = Vec::with_capacity(table_bytes as usize);
    for &off in &offsets {
        table.extend_from_slice(&off.to_le_bytes());
    }
    file.write_all_at(&table, table_pos)?;
    let body_len = cursor;
    let crc = stream_crc32(&mut file, body_len)?;
    file.seek(SeekFrom::Start(body_len))?;
    file.write_all(&body_len.to_le_bytes())?;
    file.write_all(&crc.to_le_bytes())?;
    file.sync_all()?;
    report.file_bytes = body_len + FOOTER_LEN;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "meloppr-ballindex-{tag}-{}.idx",
            std::process::id()
        ))
    }

    #[test]
    fn build_and_read_matches_fresh_extraction() {
        let g = generators::grid(8, 6).unwrap();
        let path = tmp_path("roundtrip");
        let report = build_index(&g, 2, &path).unwrap();
        assert_eq!(report.nodes_indexed, g.num_nodes());
        assert_eq!(report.nodes_skipped, 0);
        assert!(report.ball_bytes > 0);
        assert_eq!(report.file_bytes, std::fs::metadata(&path).unwrap().len());

        let index = BallIndex::open(&path).unwrap();
        assert_eq!(index.depth(), 2);
        assert_eq!(index.num_nodes(), g.num_nodes());
        let mut scratch = ExtractScratch::new();
        let mut buf = Vec::new();
        for node in [0u32, 7, 23, 47] {
            let from_disk = index.read_ball(node, 2, &mut buf).unwrap().unwrap();
            let (sub, _) = scratch.extract(&g, node, 2).unwrap();
            let fresh = CompactBall::from_subgraph(sub).unwrap();
            assert_eq!(from_disk, fresh, "node {node}");
        }
        // Wrong depth and out-of-range nodes miss rather than error.
        assert!(index.read_ball(0, 3, &mut buf).unwrap().is_none());
        assert!(index.read_ball(9999, 2, &mut buf).unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_codec_roundtrips_and_rejects_corruption() {
        let g = generators::karate_club();
        let mut scratch = ExtractScratch::new();
        let (sub, _) = scratch.extract(&g, 0, 2).unwrap();
        let ball = CompactBall::from_subgraph(sub).unwrap();
        let mut bytes = Vec::new();
        encode_record(&ball, &mut bytes);
        assert_eq!(decode_record(&bytes).unwrap(), ball);

        // Truncation and count corruption are typed errors, not panics.
        assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_record(&bytes[..4]).is_err());
        let mut huge_n = bytes.clone();
        huge_n[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_record(&huge_n).is_err());
    }

    #[test]
    fn corrupt_files_warn_and_boot_cold() {
        let g = generators::path(16).unwrap();
        let path = tmp_path("corrupt");
        build_index(&g, 1, &path).unwrap();
        assert!(BallIndex::load(&path).unwrap().is_some());

        // A flipped bit fails the checksum; load downgrades to None.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let opened = BallIndex::open(&path);
        assert!(opened.is_err());
        assert!(BallIndex::load(&path).unwrap().is_none());

        // Truncation is caught by the footer length.
        bytes[mid] ^= 0x01; // restore
        bytes.truncate(bytes.len() - 20);
        std::fs::write(&path, &bytes).unwrap();
        let err = BallIndex::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A version bump (with a *valid* checksum, as a real v2 writer
        // would produce) is rejected by name.
        let mut other_version = {
            build_index(&g, 1, &path).unwrap();
            std::fs::read(&path).unwrap()
        };
        other_version[HEADER.len() - 2] = b'9';
        let body_end = other_version.len() - FOOTER_LEN as usize;
        let crc = crate::backend::persist::crc32(&other_version[..body_end]);
        let crc_at = body_end + 8;
        other_version[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &other_version).unwrap();
        let err = BallIndex::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("unsupported index header"),
            "{err}"
        );
        assert!(BallIndex::load(&path).unwrap().is_none());

        // A missing file is silent.
        let _ = std::fs::remove_file(&path);
        assert!(BallIndex::load(&path).unwrap().is_none());
    }

    #[test]
    fn oversized_balls_are_skipped_not_fatal() {
        // A complete graph ball at depth 1 is the whole graph; force the
        // skip path with a graph larger than u16 local ids by checking
        // the report wiring on a small graph instead (a real > 65536
        // ball would dominate test time), plus the contains() contract.
        let g = generators::complete(8).unwrap();
        let path = tmp_path("skip");
        let report = build_index(&g, 1, &path).unwrap();
        assert_eq!(report.nodes_indexed + report.nodes_skipped, 8);
        let index = BallIndex::open(&path).unwrap();
        for node in 0..8u32 {
            assert_eq!(
                index.contains(node, 1),
                index.offsets[node as usize] != index.offsets[node as usize + 1]
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
