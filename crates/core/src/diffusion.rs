//! The graph-diffusion kernel `GD(l)` (Eq. 1, Fig. 3(b)).
//!
//! One diffusion of length `l` starting from an initial vector `S0`
//! computes
//!
//! ```text
//! S_l = (1 - α)·Σ_{k=0}^{l-1} αᵏ·Wᵏ·S0  +  α^l·W^l·S0
//! ```
//!
//! by iterating the propagation `p_{k+1} = W·p_k` once per step and folding
//! each power into the accumulator — exactly the dataflow of Fig. 3(b).
//! Alongside the **accumulated scores** `πa = S_l`, the kernel returns the
//! **residual scores** `πr = W^l·S0`, which MeLoPPR's linear decomposition
//! feeds into the next stage (§IV-C).
//!
//! The kernel is *frontier-sparse*: each step touches only nodes with
//! non-zero mass, so early iterations on large graphs cost `O(ball)` rather
//! than `O(|V|)`.
//!
//! It has a *dense* twin,
//! [`diffuse_quantized`](crate::quantized::diffuse_quantized), generic
//! over score width ([`f64`]/[`f32`]/Q-format `u32`), which the
//! precision ladder executes for reduced-precision queries and for
//! every diffusion over the compact ball store; its `f64`
//! instantiation keeps this kernel's semantics (same `πa`/`πr`,
//! leakage, and isolated-node rules, asserted by the quantized unit
//! tests).
//!
//! # Degree semantics and leakage
//!
//! The random-walk divisor is [`GraphView::walk_degree`], which for
//! [`Subgraph`](meloppr_graph::Subgraph)s is the *parent-graph* degree.
//! When a node propagates but some of its parent-graph neighbors are
//! missing from the view (a truncated frontier node), the missing share of
//! mass *leaks* out of the computation; [`DiffusionWork::leaked_mass`]
//! reports the total. Diffusing `l ≤ ball depth` iterations from the ball
//! seed never leaks — the ball-exactness property MeLoPPR relies on — and
//! the integration tests assert it.
//!
//! Nodes with `walk_degree == 0` (isolated nodes) retain their mass, which
//! keeps `W` stochastic and diffusion mass-conserving.

use meloppr_graph::{GraphView, NodeId};

use crate::error::{PprError, Result};

/// Configuration of one diffusion: the decay factor and iteration count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionConfig {
    /// Decay factor α ∈ (0, 1).
    pub alpha: f64,
    /// Number of propagation iterations `l` (0 is allowed: `GD(0)` is the
    /// identity).
    pub iterations: usize,
}

impl DiffusionConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if `alpha ∉ (0, 1)`.
    pub fn new(alpha: f64, iterations: usize) -> Result<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(PprError::InvalidParams {
                reason: format!("alpha must be in (0, 1), got {alpha}"),
            });
        }
        Ok(DiffusionConfig { alpha, iterations })
    }
}

/// Work counters of one diffusion, consumed by the latency cost models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiffusionWork {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Adjacency entries processed across all iterations (the unit of
    /// diffusion work in both the CPU and FPGA cost models).
    pub edge_updates: usize,
    /// Mass lost through truncated frontier nodes (see module docs).
    pub leaked_mass: f64,
}

/// Result of one diffusion `GD(l)(S0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionOutput {
    /// Accumulated scores `πa = S_l` (dense over the view's local ids).
    pub accumulated: Vec<f64>,
    /// Residual scores `πr = W^l·S0` (dense over the view's local ids).
    pub residual: Vec<f64>,
    /// Work counters.
    pub work: DiffusionWork,
}

/// Reusable dense working memory for [`diffuse_into`]: the power/next
/// propagation buffers, the accumulator, and the frontier stacks.
///
/// One scratch serves diffusions over views of any size — buffers are
/// re-zeroed (not re-allocated) per call, so steady-state diffusion
/// performs no heap allocation once capacities have warmed up to the
/// largest view seen.
#[derive(Debug, Default)]
pub struct DiffusionScratch {
    /// `p_k = W^k·S0`; holds the residual `πr` after a diffusion.
    pub(crate) power: Vec<f64>,
    next: Vec<f64>,
    /// Holds the accumulated scores `πa` after a diffusion.
    pub(crate) accumulated: Vec<f64>,
    frontier: Vec<NodeId>,
    next_frontier: Vec<NodeId>,
}

impl DiffusionScratch {
    /// An empty scratch; capacities grow on first use and are retained.
    pub fn new() -> Self {
        DiffusionScratch::default()
    }

    /// Accumulated scores `πa` of the most recent [`diffuse_into`] call
    /// (dense over the view's local ids).
    pub fn accumulated(&self) -> &[f64] {
        &self.accumulated
    }

    /// Residual scores `πr = W^l·S0` of the most recent [`diffuse_into`]
    /// call (dense over the view's local ids).
    pub fn residual(&self) -> &[f64] {
        &self.power
    }

    /// Mutable accumulated scores alongside the (read-only) residual —
    /// the borrow split MeLoPPR's in-place Eq. 8 adjustment needs.
    pub(crate) fn accumulated_mut_residual(&mut self) -> (&mut [f64], &[f64]) {
        (&mut self.accumulated, &self.power)
    }
}

/// Runs `GD(l)` on any graph view from a sparse initial vector.
///
/// `init` entries must reference nodes of `g` and should be non-negative;
/// duplicate node entries are summed.
///
/// # Errors
///
/// Returns [`PprError::InvalidParams`] for an invalid `config` (via
/// [`DiffusionConfig::new`]) and
/// [`PprError::Graph`] if an `init` node is out of bounds.
///
/// # Examples
///
/// ```
/// use meloppr_core::diffusion::{diffuse, DiffusionConfig};
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::star(4)?;
/// let config = DiffusionConfig::new(0.85, 2)?;
/// let out = diffuse(&g, &[(0, 1.0)], config)?;
/// // Mass is conserved.
/// let total: f64 = out.accumulated.iter().sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn diffuse<G: GraphView + ?Sized>(
    g: &G,
    init: &[(NodeId, f64)],
    config: DiffusionConfig,
) -> Result<DiffusionOutput> {
    let mut scratch = DiffusionScratch::new();
    let work = diffuse_into(g, init, config, &mut scratch)?;
    Ok(DiffusionOutput {
        accumulated: scratch.accumulated,
        residual: scratch.power,
        work,
    })
}

/// As [`diffuse`], but computes into caller-owned scratch storage instead
/// of allocating the dense output vectors.
///
/// On success the accumulated scores are in
/// [`DiffusionScratch::accumulated`] and the residual in
/// [`DiffusionScratch::residual`]; both are bit-identical to the vectors
/// [`diffuse`] would return.
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_into<G: GraphView + ?Sized>(
    g: &G,
    init: &[(NodeId, f64)],
    config: DiffusionConfig,
    s: &mut DiffusionScratch,
) -> Result<DiffusionWork> {
    let config = DiffusionConfig::new(config.alpha, config.iterations)?;
    let n = g.num_nodes();
    s.power.clear();
    s.power.resize(n, 0.0); // p_k = W^k S0
    s.next.clear();
    s.next.resize(n, 0.0);
    s.accumulated.clear();
    s.accumulated.resize(n, 0.0);
    s.frontier.clear();
    s.next_frontier.clear();
    let DiffusionScratch {
        power,
        next,
        accumulated,
        frontier,
        next_frontier,
    } = s;

    for &(v, mass) in init {
        if v as usize >= n {
            return Err(PprError::Graph(
                meloppr_graph::GraphError::NodeOutOfBounds {
                    node: v,
                    num_nodes: n,
                },
            ));
        }
        if power[v as usize] == 0.0 && mass != 0.0 {
            frontier.push(v);
        }
        power[v as usize] += mass;
    }

    let alpha = config.alpha;
    let l = config.iterations;
    let mut work = DiffusionWork::default();
    let mut alpha_k = 1.0f64; // α^k

    for _ in 0..l {
        // Fold (1 - α)·α^k·p_k into the accumulator.
        for &u in frontier.iter() {
            accumulated[u as usize] += (1.0 - alpha) * alpha_k * power[u as usize];
        }
        // Propagate: p_{k+1} = W·p_k over the frontier only.
        for &u in frontier.iter() {
            let mass = power[u as usize];
            let deg = g.walk_degree(u);
            if deg == 0 {
                // Isolated node: self-retain to keep W stochastic.
                if next[u as usize] == 0.0 {
                    next_frontier.push(u);
                }
                next[u as usize] += mass;
                continue;
            }
            let share = mass / deg as f64;
            let nbrs = g.neighbors(u);
            work.edge_updates += nbrs.len();
            for &v in nbrs {
                if next[v as usize] == 0.0 {
                    next_frontier.push(v);
                }
                next[v as usize] += share;
            }
            work.leaked_mass += share * (deg as usize - nbrs.len()) as f64;
        }
        // Swap buffers and clear the old one sparsely.
        for &u in frontier.iter() {
            power[u as usize] = 0.0;
        }
        std::mem::swap(power, next);
        std::mem::swap(frontier, next_frontier);
        next_frontier.clear();
        alpha_k *= alpha;
        work.iterations += 1;
    }

    // Final term: α^l·p_l. For l == 0 this makes GD(0) the identity.
    for &u in frontier.iter() {
        accumulated[u as usize] += alpha_k * power[u as usize];
    }

    Ok(work)
}

/// Convenience wrapper: runs `GD(l)` from a unit vector at `seed`.
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_from_seed<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    config: DiffusionConfig,
) -> Result<DiffusionOutput> {
    diffuse(g, &[(seed, 1.0)], config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::{generators, CsrGraph};

    const ALPHA: f64 = 0.85;

    fn cfg(l: usize) -> DiffusionConfig {
        DiffusionConfig::new(ALPHA, l).unwrap()
    }

    /// Naive dense reference: explicit S_l recursion of Eq. 1.
    fn reference_gd(g: &CsrGraph, init: &[f64], l: usize, alpha: f64) -> (Vec<f64>, Vec<f64>) {
        let n = g.num_nodes();
        let w_mul = |x: &[f64]| -> Vec<f64> {
            let mut y = vec![0.0; n];
            for u in 0..n as NodeId {
                let deg = g.degree(u);
                if deg == 0 {
                    y[u as usize] += x[u as usize];
                    continue;
                }
                let share = x[u as usize] / deg as f64;
                for &v in g.neighbors(u) {
                    y[v as usize] += share;
                }
            }
            y
        };
        let mut s = init.to_vec();
        let mut power = init.to_vec(); // W^k S0
        for _ in 0..l {
            power = w_mul(&power);
        }
        for _ in 0..l {
            let wp = w_mul(&s);
            for i in 0..n {
                s[i] = (1.0 - alpha) * init[i] + alpha * wp[i];
            }
        }
        (s, power)
    }

    #[test]
    fn matches_recursive_definition_on_cycle() {
        let g = generators::cycle(7).unwrap();
        let mut init = vec![0.0; 7];
        init[2] = 1.0;
        for l in 0..6 {
            let out = diffuse(&g, &[(2, 1.0)], cfg(l)).unwrap();
            let (s_ref, r_ref) = reference_gd(&g, &init, l, ALPHA);
            for i in 0..7 {
                assert!((out.accumulated[i] - s_ref[i]).abs() < 1e-12, "l={l} i={i}");
                assert!((out.residual[i] - r_ref[i]).abs() < 1e-12, "l={l} i={i}");
            }
        }
    }

    #[test]
    fn matches_recursive_definition_on_karate() {
        let g = generators::karate_club();
        let mut init = vec![0.0; 34];
        init[0] = 1.0;
        let out = diffuse(&g, &[(0, 1.0)], cfg(4)).unwrap();
        let (s_ref, r_ref) = reference_gd(&g, &init, 4, ALPHA);
        for i in 0..34 {
            assert!((out.accumulated[i] - s_ref[i]).abs() < 1e-12);
            assert!((out.residual[i] - r_ref[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gd_zero_is_identity() {
        let g = generators::path(5).unwrap();
        let out = diffuse(&g, &[(3, 0.7)], cfg(0)).unwrap();
        assert_eq!(out.accumulated[3], 0.7);
        assert_eq!(out.residual[3], 0.7);
        assert_eq!(out.work.iterations, 0);
        assert_eq!(out.work.edge_updates, 0);
    }

    #[test]
    fn mass_conservation_on_connected_graph() {
        let g = generators::karate_club();
        for l in [1, 3, 6] {
            let out = diffuse_from_seed(&g, 0, cfg(l)).unwrap();
            let acc: f64 = out.accumulated.iter().sum();
            let res: f64 = out.residual.iter().sum();
            assert!((acc - 1.0).abs() < 1e-12, "acc mass at l={l}: {acc}");
            assert!((res - 1.0).abs() < 1e-12, "res mass at l={l}: {res}");
            assert_eq!(out.work.leaked_mass, 0.0);
        }
    }

    #[test]
    fn isolated_seed_retains_everything() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let out = diffuse_from_seed(&g, 2, cfg(4)).unwrap();
        assert!((out.accumulated[2] - 1.0).abs() < 1e-12);
        assert!((out.residual[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linearity_of_gd() {
        let g = generators::grid(4, 4).unwrap();
        let (a, b) = (0.3, 0.7);
        let combined = diffuse(&g, &[(0, a), (5, b)], cfg(3)).unwrap();
        let x = diffuse(&g, &[(0, 1.0)], cfg(3)).unwrap();
        let y = diffuse(&g, &[(5, 1.0)], cfg(3)).unwrap();
        for i in 0..16 {
            let expect = a * x.accumulated[i] + b * y.accumulated[i];
            assert!((combined.accumulated[i] - expect).abs() < 1e-12);
            let expect_r = a * x.residual[i] + b * y.residual[i];
            assert!((combined.residual[i] - expect_r).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_init_entries_are_summed() {
        let g = generators::path(4).unwrap();
        let a = diffuse(&g, &[(1, 0.5), (1, 0.5)], cfg(2)).unwrap();
        let b = diffuse(&g, &[(1, 1.0)], cfg(2)).unwrap();
        assert_eq!(a.accumulated, b.accumulated);
    }

    #[test]
    fn out_of_bounds_init_rejected() {
        let g = generators::path(3).unwrap();
        assert!(diffuse(&g, &[(9, 1.0)], cfg(1)).is_err());
    }

    #[test]
    fn invalid_alpha_rejected() {
        let g = generators::path(3).unwrap();
        let bad = DiffusionConfig {
            alpha: 1.0,
            iterations: 1,
        };
        assert!(diffuse(&g, &[(0, 1.0)], bad).is_err());
    }

    #[test]
    fn edge_updates_counted() {
        let g = generators::star(5).unwrap();
        // Step 1 expands the center (deg 4); step 2 expands 4 leaves (deg 1
        // each).
        let out = diffuse_from_seed(&g, 0, cfg(2)).unwrap();
        assert_eq!(out.work.edge_updates, 4 + 4);
    }

    #[test]
    fn leakage_on_truncated_ball() {
        use meloppr_graph::{bfs_ball, Subgraph};
        let g = generators::path(10).unwrap();
        let ball = bfs_ball(&g, 0, 2).unwrap(); // nodes 0,1,2
        let sub = Subgraph::extract(&g, &ball).unwrap();
        // Within depth, no leak.
        let ok = diffuse_from_seed(&sub, sub.seed_local(), cfg(2)).unwrap();
        assert_eq!(ok.work.leaked_mass, 0.0);
        // One iteration beyond the ball depth leaks through node 2.
        let over = diffuse_from_seed(&sub, sub.seed_local(), cfg(3)).unwrap();
        assert!(over.work.leaked_mass > 0.0);
        let total: f64 = over.residual.iter().sum();
        assert!(total < 1.0);
    }

    #[test]
    fn diffuse_into_reuse_matches_fresh() {
        let g = generators::karate_club();
        let h = generators::grid(4, 4).unwrap(); // smaller view, same scratch
        let mut scratch = DiffusionScratch::new();
        for (l, seed) in [(4usize, 0u32), (2, 5), (6, 33)] {
            let fresh = diffuse_from_seed(&g, seed, cfg(l)).unwrap();
            let work = diffuse_into(&g, &[(seed, 1.0)], cfg(l), &mut scratch).unwrap();
            assert_eq!(scratch.accumulated(), &fresh.accumulated[..]);
            assert_eq!(scratch.residual(), &fresh.residual[..]);
            assert_eq!(work, fresh.work);
            // Interleave a diffusion on a smaller graph to exercise the
            // shrink-then-grow resize path.
            diffuse_into(&h, &[(3, 1.0)], cfg(2), &mut scratch).unwrap();
            assert_eq!(scratch.accumulated().len(), 16);
        }
    }

    #[test]
    fn residual_support_is_reachable_set() {
        let g = generators::path(8).unwrap();
        let out = diffuse_from_seed(&g, 0, cfg(3)).unwrap();
        // After 3 steps on a path, residual mass lives within distance 3.
        for (i, &r) in out.residual.iter().enumerate() {
            if i > 3 {
                assert_eq!(r, 0.0, "node {i} unexpectedly has residual {r}");
            }
        }
    }
}
