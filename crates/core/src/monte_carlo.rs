//! Monte-Carlo α-decay random-walk PPR — the Fig. 2(a) comparator.
//!
//! The classic MC estimator runs many α-decay random walks from the seed
//! and counts terminal nodes. Its *on-chip* space is essentially zero (the
//! paper quotes TopPPR's observation), but every step is a random probe
//! into the full adjacency — the "low space, high accesses" corner of the
//! design space that MeLoPPR's Fig. 2 motivates against. The estimator
//! counts those off-chip accesses so the cost models can price them.

use meloppr_graph::{FastHashMap, GraphView, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::{PprError, Result};
use crate::params::PprParams;
use crate::score_vec::{top_k_sparse, Ranking};

/// Result of a Monte-Carlo PPR estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated top-`k` ranking (estimated probabilities as scores).
    pub ranking: Ranking,
    /// Sparse estimated score vector (terminal frequency / walks).
    pub scores: Vec<(NodeId, f64)>,
    /// Total random-walk steps taken — each one is an off-chip neighbor
    /// lookup in the Fig. 2(a) cost model.
    pub steps: usize,
    /// Number of walks run.
    pub walks: usize,
}

/// Estimates PPR scores with `walks` α-decay random walks of maximum
/// length `params.length` (the allocating reference path the test suite
/// pins the workspace-backed
/// [`backend::MonteCarlo`](crate::backend::MonteCarlo) against).
///
/// Each walk terminates early with probability `1 - α` per step (the
/// α-decay), or when the length budget is exhausted; walks stuck on an
/// isolated node stay there, matching the self-retaining `W` used by the
/// diffusion kernel.
#[cfg(test)]
pub(crate) fn monte_carlo_ppr_impl<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    params: &PprParams,
    walks: usize,
    rng_seed: u64,
) -> Result<MonteCarloResult> {
    let mut counts = FastHashMap::default();
    let mut scores = Vec::new();
    let (ranking, steps) =
        monte_carlo_ppr_with(g, seed, params, walks, rng_seed, &mut counts, &mut scores)?;
    Ok(MonteCarloResult {
        ranking,
        scores,
        steps,
        walks,
    })
}

/// The workspace form of the estimator: terminal counts land in `counts`
/// and the sparse estimated scores (sorted by node id) in `scores`, both
/// overwritten. Returns the ranking and the step count. Bit-identical to
/// [`monte_carlo_ppr_impl`].
pub(crate) fn monte_carlo_ppr_with<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    params: &PprParams,
    walks: usize,
    rng_seed: u64,
    counts: &mut FastHashMap<NodeId, usize>,
    scores: &mut Vec<(NodeId, f64)>,
) -> Result<(Ranking, usize)> {
    params.validate()?;
    if walks == 0 {
        return Err(PprError::InvalidParams {
            reason: "Monte-Carlo estimation needs at least one walk".into(),
        });
    }
    if seed as usize >= g.num_nodes() {
        return Err(PprError::Graph(
            meloppr_graph::GraphError::NodeOutOfBounds {
                node: seed,
                num_nodes: g.num_nodes(),
            },
        ));
    }
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    // FastHashMap (not std's randomly-seeded SipHash) keeps iteration
    // effects off the query path; the sort below pins the output order.
    counts.clear();
    let mut steps = 0usize;
    for _ in 0..walks {
        let mut node = seed;
        for _ in 0..params.length {
            // Terminate with probability 1 - α (the α-decay).
            if !rng.gen_bool(params.alpha) {
                break;
            }
            let nbrs = g.neighbors(node);
            if nbrs.is_empty() {
                // Isolated: self-retain, no adjacency access needed.
                continue;
            }
            node = nbrs[rng.gen_range(0..nbrs.len())];
            steps += 1;
        }
        *counts.entry(node).or_insert(0) += 1;
    }
    scores.clear();
    scores.extend(counts.iter().map(|(&v, &c)| (v, c as f64 / walks as f64)));
    scores.sort_unstable_by_key(|&(v, _)| v);
    let ranking = top_k_sparse(scores, params.k);
    Ok((ranking, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_top_k;
    use crate::precision::precision_at_k;
    use meloppr_graph::generators;

    #[test]
    fn estimates_converge_to_exact_topk() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 6, 5).unwrap();
        let exact = exact_top_k(&g, 0, &params).unwrap();
        let mc = monte_carlo_ppr_impl(&g, 0, &params, 20_000, 42).unwrap();
        let prec = precision_at_k(&mc.ranking, &exact, 5);
        assert!(prec >= 0.6, "MC precision too low: {prec}");
    }

    #[test]
    fn scores_sum_to_one() {
        let g = generators::cycle(6).unwrap();
        let params = PprParams::new(0.85, 4, 6).unwrap();
        let mc = monte_carlo_ppr_impl(&g, 0, &params, 1000, 7).unwrap();
        let total: f64 = mc.scores.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::karate_club();
        let params = PprParams::new(0.85, 4, 5).unwrap();
        let a = monte_carlo_ppr_impl(&g, 3, &params, 500, 9).unwrap();
        let b = monte_carlo_ppr_impl(&g, 3, &params, 500, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn steps_bounded_by_walks_times_length() {
        let g = generators::complete(8).unwrap();
        let params = PprParams::new(0.85, 5, 3).unwrap();
        let mc = monte_carlo_ppr_impl(&g, 0, &params, 200, 3).unwrap();
        assert!(mc.steps <= 200 * 5);
        assert!(mc.steps > 0);
    }

    #[test]
    fn isolated_seed_all_mass_at_seed() {
        let g = meloppr_graph::CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let params = PprParams::new(0.85, 4, 2).unwrap();
        let mc = monte_carlo_ppr_impl(&g, 2, &params, 100, 1).unwrap();
        assert_eq!(mc.ranking, vec![(2, 1.0)]);
        assert_eq!(mc.steps, 0);
    }

    #[test]
    fn zero_walks_rejected() {
        let g = generators::path(3).unwrap();
        let params = PprParams::new(0.85, 2, 2).unwrap();
        assert!(monte_carlo_ppr_impl(&g, 0, &params, 0, 0).is_err());
    }

    #[test]
    fn bad_seed_rejected() {
        let g = generators::path(3).unwrap();
        let params = PprParams::new(0.85, 2, 2).unwrap();
        assert!(monte_carlo_ppr_impl(&g, 30, &params, 10, 0).is_err());
    }
}
