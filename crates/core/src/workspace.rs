//! The reusable per-query scratch arena — the heart of the
//! zero-allocation query path.
//!
//! Every PPR query needs the same transient storage: BFS frontiers and
//! visited maps, an extracted [`Subgraph`](meloppr_graph::Subgraph),
//! dense `f64` score vectors, candidate/selection buffers, a task queue
//! and an aggregation table. Allocating them per query caps serving
//! throughput at the allocator, not the graph — precisely the failure
//! mode MeLoPPR's small staged working sets are meant to avoid (§IV-A).
//!
//! [`QueryWorkspace`] owns all of it. Each
//! [`PprBackend`](crate::backend::PprBackend) borrows a workspace for
//! the duration of a query (`query_with`) and leaves its buffers warm
//! for the next one; after a warm-up query, the steady-state hot path
//! performs no heap allocation beyond the returned
//! [`QueryOutcome`](crate::backend::QueryOutcome) itself (asserted by
//! the `alloc_smoke` integration test).
//!
//! [`WorkspacePool`] shares workspaces across calls on a `&self` backend:
//! `query` checks one out and returns it, and the batched executor
//! ([`BatchExecutor`](crate::backend::BatchExecutor)) keeps one workspace
//! per worker thread.

use std::collections::VecDeque;
use std::sync::Mutex;

use meloppr_graph::{ExtractScratch, FastHashMap, NodeId};

use crate::diffusion::DiffusionScratch;
use crate::global_table::GlobalScoreTable;
use crate::meloppr::TaskSpec;
use crate::quantized::QuantScratchSet;

/// Scratch arena holding every reusable buffer of the query hot path.
///
/// Create one with [`QueryWorkspace::new`] and thread it through
/// [`PprBackend::query_with`](crate::backend::PprBackend::query_with);
/// buffers grow to the largest query seen and are then reused as-is.
/// A workspace is cheap when idle (empty vectors) and holds no
/// query-visible state: reusing one is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    /// Ball extraction storage (BFS visited map/queue + subgraph buffers).
    pub extract: ExtractScratch,
    /// Dense diffusion vectors and frontier stacks.
    pub diffusion: DiffusionScratch,
    /// Reduced-precision dense buffers, one per ladder width; only the
    /// widths a query actually uses ever grow, so the default `f64`
    /// path pays nothing for the ladder.
    pub(crate) quant: QuantScratchSet,
    /// Next-stage candidate buffer (residual support before selection).
    pub(crate) candidates: Vec<(NodeId, f64)>,
    /// Weighted global-id contribution buffer of one task.
    pub(crate) contributions: Vec<(NodeId, f64)>,
    /// Children spawned by one task, in selection order.
    pub(crate) children: Vec<TaskSpec>,
    /// The staged engine's pending-task queue.
    pub(crate) queue: VecDeque<TaskSpec>,
    /// Reused aggregation table (reset per query).
    pub(crate) table: GlobalScoreTable,
    /// General sparse `(node, score)` buffer: ranking extraction,
    /// Monte-Carlo score lists, dense-to-sparse conversions.
    pub(crate) sparse: Vec<(NodeId, f64)>,
    /// Monte-Carlo terminal counts.
    pub(crate) mc_counts: FastHashMap<NodeId, usize>,
    /// Cold-tier read buffer: one positioned index read lands here
    /// before decoding, sized to the largest cold record this workspace
    /// has served (so steady-state cold hits allocate nothing).
    pub(crate) cold_buf: Vec<u8>,
    /// Pending segment pieces of the ball currently being diffused under
    /// a byte budget (see the staged engine's segmentation).
    pub(crate) segments: Vec<crate::meloppr::SegmentPiece>,
}

impl QueryWorkspace {
    /// An empty workspace; every buffer grows on first use and is
    /// retained across queries.
    pub fn new() -> Self {
        QueryWorkspace::default()
    }
}

/// A lock-protected stack of idle [`QueryWorkspace`]s.
///
/// Backends keep one pool so `query(&self)` can reuse scratch storage
/// without exclusive access to the backend: a query checks a workspace
/// out, runs, and returns it. Under a concurrent batch the pool holds at
/// most one workspace per worker that ever ran (bounded by
/// [`WorkspacePool::MAX_IDLE`]).
#[derive(Debug, Default)]
pub struct WorkspacePool {
    idle: Mutex<Vec<QueryWorkspace>>,
}

impl WorkspacePool {
    /// Idle workspaces retained beyond this are dropped on release, so a
    /// burst of concurrency cannot pin memory forever.
    pub const MAX_IDLE: usize = 32;

    /// An empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// The pool holds only *idle* workspaces, which are always in a
    /// valid (if dirty) state — a panic while the lock was held cannot
    /// break an invariant, so recover from poisoning instead of taking
    /// every future query down with the first panicking one. A query
    /// that panicked mid-execution simply never returns its checked-out
    /// workspace; the pool hands out a fresh one on demand.
    fn idle(&self) -> std::sync::MutexGuard<'_, Vec<QueryWorkspace>> {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Checks out an idle workspace, creating a fresh one if none is
    /// available.
    pub fn acquire(&self) -> QueryWorkspace {
        self.idle().pop().unwrap_or_default()
    }

    /// Returns a workspace to the pool for the next query.
    pub fn release(&self, ws: QueryWorkspace) {
        let mut idle = self.idle();
        if idle.len() < Self::MAX_IDLE {
            idle.push(ws);
        }
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle_len(&self) -> usize {
        self.idle().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_released_workspaces() {
        let pool = WorkspacePool::new();
        let mut ws = pool.acquire();
        ws.sparse.push((7, 0.5));
        pool.release(ws);
        assert_eq!(pool.idle_len(), 1);
        let ws = pool.acquire();
        assert_eq!(pool.idle_len(), 0);
        // Buffer capacity survives the round trip (contents are cleared
        // by each consumer before use, not by the pool).
        assert!(ws.sparse.capacity() >= 1);
    }

    #[test]
    fn pool_caps_idle_workspaces() {
        let pool = WorkspacePool::new();
        let many: Vec<QueryWorkspace> = (0..WorkspacePool::MAX_IDLE + 5)
            .map(|_| QueryWorkspace::new())
            .collect();
        for ws in many {
            pool.release(ws);
        }
        assert_eq!(pool.idle_len(), WorkspacePool::MAX_IDLE);
    }
}
