//! The bounded global score table of §V-B.
//!
//! After every sub-graph diffusion the scores must be aggregated into the
//! global PPR vector. Keeping the full vector costs `O(G_L(s))` memory and
//! (on the accelerator) a transfer per diffusion, so MeLoPPR instead keeps
//! a fixed-capacity table of the `c·k` highest-scoring nodes seen so far
//! (the paper uses `c = 10`). The table is exact while fewer than `c·k`
//! distinct nodes are touched; beyond that, low scorers are evicted and any
//! mass they would later accumulate is lost — the source of the small
//! precision loss the paper reports for `c < 4`.
//!
//! [`GlobalScoreTable`] implements this with a hash map plus an ordered
//! index, giving `O(log n)` adds and exact minimum eviction.

use std::collections::BTreeSet;

use meloppr_graph::{FastHashMap, NodeId};

use crate::score_vec::Ranking;

/// Orders non-negative `f64` scores inside the [`BTreeSet`] index.
///
/// Positive IEEE-754 doubles compare correctly as their bit patterns, so
/// the key is just `to_bits` (scores in this crate are probabilities,
/// always `>= 0`).
fn score_key(score: f64) -> u64 {
    debug_assert!(score >= 0.0 && score.is_finite());
    score.to_bits()
}

/// A fixed-capacity accumulate-and-rank table (the FPGA's global score
/// table, §V-B).
///
/// # Examples
///
/// ```
/// use meloppr_core::GlobalScoreTable;
///
/// let mut table = GlobalScoreTable::bounded(2);
/// table.add(7, 0.5);
/// table.add(3, 0.2);
/// table.add(9, 0.4); // evicts node 3 (current minimum)
/// let top = table.ranking(2);
/// assert_eq!(top, vec![(7, 0.5), (9, 0.4)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalScoreTable {
    capacity: Option<usize>,
    scores: FastHashMap<NodeId, f64>,
    index: BTreeSet<(u64, NodeId)>,
    evictions: usize,
    lost_mass: f64,
}

impl GlobalScoreTable {
    /// An unbounded table: exact aggregation, the CPU reference behaviour.
    pub fn unbounded() -> Self {
        GlobalScoreTable::default()
    }

    /// A table bounded to `capacity` entries (the paper's `c·k`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "table capacity must be positive");
        GlobalScoreTable {
            capacity: Some(capacity),
            ..GlobalScoreTable::default()
        }
    }

    /// Empties the table and reconfigures its capacity, retaining the
    /// underlying hash-map storage so a reused table allocates nothing in
    /// steady state. `None` means unbounded.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == Some(0)`.
    pub fn reset(&mut self, capacity: Option<usize>) {
        assert!(capacity != Some(0), "table capacity must be positive");
        self.capacity = capacity;
        self.scores.clear();
        self.index.clear();
        self.evictions = 0;
        self.lost_mass = 0.0;
    }

    /// Adds `score` to the node's accumulated total, inserting or evicting
    /// as necessary.
    ///
    /// Non-positive scores are ignored (diffusion never produces them).
    /// The ordered index is only maintained in bounded mode (eviction
    /// needs the minimum); unbounded accumulation is a plain hash-map add,
    /// keeping the aggregation hot path cheap.
    pub fn add(&mut self, node: NodeId, score: f64) {
        if score <= 0.0 {
            return;
        }
        let Some(cap) = self.capacity else {
            *self.scores.entry(node).or_insert(0.0) += score;
            return;
        };
        if let Some(&old) = self.scores.get(&node) {
            self.index.remove(&(score_key(old), node));
            let new = old + score;
            self.scores.insert(node, new);
            self.index.insert((score_key(new), node));
            return;
        }
        if self.scores.len() >= cap {
            // Compete with the current minimum.
            let &(min_key, min_node) = self.index.iter().next().expect("non-empty at cap");
            let min_score = f64::from_bits(min_key);
            if score <= min_score {
                self.evictions += 1;
                self.lost_mass += score;
                return;
            }
            self.index.remove(&(min_key, min_node));
            self.scores.remove(&min_node);
            self.evictions += 1;
            self.lost_mass += min_score;
        }
        self.scores.insert(node, score);
        self.index.insert((score_key(score), node));
    }

    /// Merges a sparse score list (e.g. one diffusion's output) into the
    /// table.
    pub fn add_all<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (NodeId, f64)>,
    {
        for (node, score) in entries {
            self.add(node, score);
        }
    }

    /// Current accumulated score of a node, if it is resident.
    pub fn get(&self, node: NodeId) -> Option<f64> {
        self.scores.get(&node).copied()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Number of evictions (and rejected inserts) so far — a diagnostic for
    /// choosing `c`.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Total score mass dropped by evictions/rejections so far.
    pub fn lost_mass(&self) -> f64 {
        self.lost_mass
    }

    /// The top-`k` ranking currently held, ordered like
    /// [`top_k_dense`](crate::score_vec::top_k_dense).
    pub fn ranking(&self, k: usize) -> Ranking {
        self.ranking_with(k, &mut Vec::new())
    }

    /// As [`GlobalScoreTable::ranking`], but routes the unbounded-mode
    /// entry collection through a caller-owned scratch buffer so repeated
    /// rankings only allocate the returned `Ranking` itself.
    pub fn ranking_with(&self, k: usize, scratch: &mut Vec<(NodeId, f64)>) -> Ranking {
        if k == 0 {
            return Vec::new();
        }
        if self.capacity.is_none() {
            // Unbounded mode keeps no ordered index; select from the map.
            scratch.clear();
            scratch.extend(self.scores.iter().map(|(&v, &s)| (v, s)));
            crate::score_vec::top_k_in_place(scratch, k);
            return scratch.clone();
        }
        // BTreeSet orders ascending by (score, id); reversed iteration
        // gives descending score but descending id on ties. Collect the top
        // k scores plus every entry tied with the k-th score, then re-sort
        // so ties break by ascending id.
        let mut out: Ranking = Vec::with_capacity(k);
        let mut boundary_key: Option<u64> = None;
        for &(key, node) in self.index.iter().rev() {
            if out.len() >= k && boundary_key != Some(key) {
                break;
            }
            out.push((node, f64::from_bits(key)));
            if out.len() == k {
                boundary_key = Some(key);
            }
        }
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// All resident entries in arbitrary order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.scores.iter().map(|(&v, &s)| (v, s))
    }

    /// Model bytes for a table of this capacity on the FPGA: each entry is
    /// a 32-bit node id + 32-bit score (§V-A uses 32-bit integer scores).
    pub fn fpga_bytes(capacity: usize) -> usize {
        capacity * (4 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_accumulates_exactly() {
        let mut t = GlobalScoreTable::unbounded();
        t.add(1, 0.5);
        t.add(1, 0.25);
        t.add(2, 0.1);
        assert_eq!(t.get(1), Some(0.75));
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn bounded_evicts_minimum() {
        let mut t = GlobalScoreTable::bounded(2);
        t.add(1, 0.5);
        t.add(2, 0.3);
        t.add(3, 0.4); // evicts 2
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 1);
        assert!((t.lost_mass() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bounded_rejects_smaller_than_min() {
        let mut t = GlobalScoreTable::bounded(2);
        t.add(1, 0.5);
        t.add(2, 0.3);
        t.add(3, 0.1); // rejected
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(2), Some(0.3));
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn resident_nodes_can_always_accumulate() {
        let mut t = GlobalScoreTable::bounded(1);
        t.add(1, 0.5);
        t.add(1, 0.5);
        assert_eq!(t.get(1), Some(1.0));
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn ranking_orders_and_breaks_ties() {
        let mut t = GlobalScoreTable::unbounded();
        t.add(5, 0.3);
        t.add(1, 0.3);
        t.add(2, 0.9);
        assert_eq!(t.ranking(3), vec![(2, 0.9), (1, 0.3), (5, 0.3)]);
        assert_eq!(t.ranking(1), vec![(2, 0.9)]);
    }

    #[test]
    fn add_all_merges() {
        let mut t = GlobalScoreTable::unbounded();
        t.add_all(vec![(0, 0.1), (1, 0.2), (0, 0.3)]);
        assert!((t.get(0).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_scores_ignored() {
        let mut t = GlobalScoreTable::unbounded();
        t.add(0, 0.0);
        t.add(1, -0.5);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = GlobalScoreTable::bounded(0);
    }

    #[test]
    fn accumulation_reorders_index() {
        let mut t = GlobalScoreTable::bounded(2);
        t.add(1, 0.2);
        t.add(2, 0.3);
        t.add(1, 0.5); // node 1 now 0.7, so node 2 is the minimum
        t.add(3, 0.4); // evicts 2, not 1
        assert_eq!(t.get(1), Some(0.7));
        assert_eq!(t.get(2), None);
        assert_eq!(t.get(3), Some(0.4));
    }

    #[test]
    fn reset_empties_and_reconfigures() {
        let mut t = GlobalScoreTable::bounded(2);
        t.add(1, 0.5);
        t.add(2, 0.3);
        t.add(3, 0.1);
        assert_eq!(t.evictions(), 1);
        t.reset(None);
        assert!(t.is_empty());
        assert_eq!(t.evictions(), 0);
        assert_eq!(t.lost_mass(), 0.0);
        // Now unbounded: nothing is evicted.
        for i in 0..10u32 {
            t.add(i, 0.1);
        }
        assert_eq!(t.len(), 10);
        t.reset(Some(1));
        t.add(1, 0.5);
        t.add(2, 0.9);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ranking_with_reuses_scratch() {
        let mut t = GlobalScoreTable::unbounded();
        t.add(5, 0.3);
        t.add(1, 0.3);
        t.add(2, 0.9);
        let mut scratch = Vec::new();
        assert_eq!(t.ranking_with(3, &mut scratch), t.ranking(3));
        assert_eq!(t.ranking_with(1, &mut scratch), t.ranking(1));
    }

    #[test]
    fn fpga_bytes_model() {
        // c = 10, k = 200 -> 2000 entries x 8 bytes.
        assert_eq!(GlobalScoreTable::fpga_bytes(2000), 16_000);
    }

    #[test]
    fn large_workload_consistency() {
        let mut bounded = GlobalScoreTable::bounded(50);
        let mut exact = GlobalScoreTable::unbounded();
        // Scores arriving in descending order never trigger wrong
        // evictions, so the two agree on the top 50.
        for i in 0..500u32 {
            let s = 1.0 / (1.0 + i as f64);
            bounded.add(i, s);
            exact.add(i, s);
        }
        assert_eq!(bounded.ranking(50), exact.ranking(50));
    }
}
