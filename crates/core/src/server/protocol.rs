//! The serving wire protocol: length-prefixed UTF-8 text frames.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian length prefix followed by that many bytes of UTF-8
//! payload. The payload is a single line of space-separated tokens,
//! mostly `key=value` pairs, chosen so a session is debuggable with a
//! few lines of any language's socket library (or `xxd`). Frames are
//! capped at [`MAX_FRAME`] bytes; violations poison the connection, not
//! the server.
//!
//! Requests ([`Request`]):
//!
//! ```text
//! QUERY id=7 seed=42 deadline_ms=25 k=10 alpha=0.85 length=6 max_memory=65536 min_precision=0.9 precision=f32
//! STATS
//! PING
//! SHUTDOWN
//! ```
//!
//! Only `seed` is mandatory on `QUERY`; `id` (default 0) is echoed on
//! the response so clients may pipeline — under deadline scheduling
//! responses complete **out of order**. `deadline_ms` defaults to the
//! server's configured deadline and must be finite, non-negative, and
//! at most [`MAX_DEADLINE_MS`].
//!
//! Responses ([`Response`]):
//!
//! ```text
//! OK id=7 backend=meloppr latency_us=1234 degraded=0 precision=exact ranking=3:0.0625,9:0.03125
//! REJECTED id=7 reason=queue-full predicted_us=- remaining_us=190
//! ERR id=7 message=no backend available: ...
//! STATS accepted=100 completed=97 ...
//! PONG
//! ```
//!
//! `precision=` on `QUERY` requests a score-arithmetic rung
//! (`exact` / `f32` / `q<N>`, see [`PrecisionClass`]); on `OK` it
//! reports the rung the query **executed** at — the admission ladder may
//! have degraded the requested one to make a tight deadline.
//!
//! Scores are rendered with Rust's shortest-roundtrip `f64` formatting,
//! so a parsed ranking is **bit-identical** to the server's (the
//! loopback integration test relies on this). The three
//! [`RejectReason`]s are the typed outcomes of deadline scheduling:
//! `queue-full` (load shed), `deadline-unmeetable` (fast-fail at
//! admission: even the cheapest calibrated backend cannot make it) and
//! `deadline-exceeded` (the deadline expired while queued).

use std::io::{self, Read, Write};

use meloppr_graph::NodeId;

use crate::backend::{BackendKind, QueryRequest};
use crate::quantized::PrecisionClass;
use crate::score_vec::Ranking;

/// Maximum frame payload size in bytes. Large enough for any sane
/// ranking, small enough that a garbage length prefix cannot make the
/// server buffer gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Largest accepted `deadline_ms` (one hour). A deadline is untrusted
/// client input that feeds straight into `Duration` arithmetic, where
/// `inf`/`NaN`/astronomical values panic — so anything non-finite,
/// negative, or beyond this cap is a protocol error at parse time, not
/// a panic in a connection thread.
pub const MAX_DEADLINE_MS: f64 = 3_600_000.0;

/// Writes one frame: 4-byte big-endian payload length, then the payload.
///
/// # Errors
///
/// Propagates I/O errors; oversized payloads are `InvalidInput`.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// One observed event on a framed connection.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame arrived.
    Frame(String),
    /// The read timed out mid-wait (tick: check shutdown, flush
    /// responses, try again). Any partial frame stays buffered.
    Idle,
    /// The peer closed the connection.
    Eof,
}

/// Incremental frame decoder that survives read timeouts.
///
/// Server connection threads read with a short [`read
/// timeout`](std::net::TcpStream::set_read_timeout) so they can notice
/// shutdown and flush out-of-order responses; a timeout can split a
/// frame across reads, so the decoder buffers partial input between
/// [`FrameReader::read_event`] calls.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads until one complete frame, a timeout tick, or EOF.
    ///
    /// # Errors
    ///
    /// Non-timeout I/O errors, oversized frames and invalid UTF-8 (all
    /// of which should poison the connection).
    pub fn read_event<R: Read>(&mut self, stream: &mut R) -> io::Result<FrameEvent> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(FrameEvent::Frame(frame));
            }
            match stream.read(&mut chunk) {
                // EOF: a partial buffered frame is abandoned with the
                // connection.
                Ok(0) => return Ok(FrameEvent::Eof),
                // lint:allow(panic-freedom) -- Read's contract bounds n by chunk.len()
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(FrameEvent::Idle)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether the decoder holds a partially received frame. After
    /// [`FrameEvent::Eof`] this distinguishes a clean close (frame
    /// boundary) from a peer that died mid-frame — the server counts
    /// the latter as an aborted connection.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pops one complete frame off the buffer, if present.
    fn take_frame(&mut self) -> io::Result<Option<String>> {
        let Some(&len_bytes) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds MAX_FRAME"),
            ));
        }
        let Some(body) = self.buf.get(4..4 + len) else {
            return Ok(None);
        };
        let payload = body.to_vec();
        self.buf.drain(..4 + len);
        String::from_utf8(payload)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// One `QUERY` request: the seed plus optional per-query overrides and
/// the deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Client-chosen correlation id, echoed on the response (responses
    /// complete out of order under deadline scheduling).
    pub id: u64,
    /// The personalization seed node.
    pub seed: NodeId,
    /// Optional top-`k` override.
    pub k: Option<usize>,
    /// Optional decay-factor override.
    pub alpha: Option<f64>,
    /// Optional diffusion-length override.
    pub length: Option<usize>,
    /// Per-request deadline in milliseconds (`None` = server default).
    pub deadline_ms: Option<f64>,
    /// Optional enforced working-set bound, bytes.
    pub max_memory_bytes: Option<usize>,
    /// Optional expected-precision floor for routing.
    pub min_precision: Option<f64>,
    /// Optional requested score-arithmetic rung (the admission ladder
    /// may degrade it further under a tight deadline).
    pub precision: Option<PrecisionClass>,
}

impl QuerySpec {
    /// A request for `seed` with correlation id `id`, inheriting every
    /// server default.
    pub fn new(id: u64, seed: NodeId) -> Self {
        QuerySpec {
            id,
            seed,
            k: None,
            alpha: None,
            length: None,
            deadline_ms: None,
            max_memory_bytes: None,
            min_precision: None,
            precision: None,
        }
    }

    /// Sets the per-request deadline (builder style).
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// The unified-API request this spec describes (without the latency
    /// budget, which the scheduler derives from the *remaining* deadline
    /// at admission and again at execution).
    pub fn to_query_request(&self) -> QueryRequest {
        let mut req = QueryRequest::new(self.seed);
        if let Some(k) = self.k {
            req = req.with_k(k);
        }
        if let Some(alpha) = self.alpha {
            req = req.with_alpha(alpha);
        }
        if let Some(length) = self.length {
            req = req.with_length(length);
        }
        if let Some(bytes) = self.max_memory_bytes {
            req = req.with_max_memory_bytes(bytes);
        }
        if let Some(precision) = self.min_precision {
            req = req.with_min_precision(precision);
        }
        if let Some(class) = self.precision {
            req = req.with_precision(class);
        }
        req
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Serve one PPR query under a deadline.
    Query(QuerySpec),
    /// Return a telemetry snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down (responds with final stats first).
    Shutdown,
}

impl Request {
    /// Renders the wire form.
    pub fn encode(&self) -> String {
        match self {
            Request::Stats => "STATS".into(),
            Request::Ping => "PING".into(),
            Request::Shutdown => "SHUTDOWN".into(),
            Request::Query(q) => {
                let mut out = format!("QUERY id={} seed={}", q.id, q.seed);
                append_optional(&mut out, "deadline_ms", q.deadline_ms);
                append_optional(&mut out, "k", q.k);
                append_optional(&mut out, "alpha", q.alpha);
                append_optional(&mut out, "length", q.length);
                append_optional(&mut out, "max_memory", q.max_memory_bytes);
                append_optional(&mut out, "min_precision", q.min_precision);
                append_optional(&mut out, "precision", q.precision);
                out
            }
        }
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// A human-readable reason (sent back as an `ERR` response).
    pub fn parse(payload: &str) -> Result<Request, String> {
        crate::failpoint::check("frame.parse").map_err(|f| f.to_string())?;
        let mut tokens = payload.split_whitespace();
        match tokens.next() {
            Some("STATS") => Ok(Request::Stats),
            Some("PING") => Ok(Request::Ping),
            Some("SHUTDOWN") => Ok(Request::Shutdown),
            Some("QUERY") => {
                let mut spec = QuerySpec::new(0, 0);
                let mut have_seed = false;
                for token in tokens {
                    let (key, value) = token
                        .split_once('=')
                        .ok_or_else(|| format!("malformed token {token:?} (want key=value)"))?;
                    match key {
                        "id" => spec.id = parse_value(key, value)?,
                        "seed" => {
                            spec.seed = parse_value(key, value)?;
                            have_seed = true;
                        }
                        "deadline_ms" => {
                            let ms: f64 = parse_value(key, value)?;
                            if !ms.is_finite() || !(0.0..=MAX_DEADLINE_MS).contains(&ms) {
                                return Err(format!(
                                    "deadline_ms {value:?} out of range \
                                     (want finite 0..={MAX_DEADLINE_MS})"
                                ));
                            }
                            spec.deadline_ms = Some(ms);
                        }
                        "k" => spec.k = Some(parse_value(key, value)?),
                        "alpha" => spec.alpha = Some(parse_value(key, value)?),
                        "length" => spec.length = Some(parse_value(key, value)?),
                        "max_memory" => spec.max_memory_bytes = Some(parse_value(key, value)?),
                        "min_precision" => spec.min_precision = Some(parse_value(key, value)?),
                        "precision" => {
                            let class: PrecisionClass = parse_value(key, value)?;
                            class.validate().map_err(|e| e.to_string())?;
                            spec.precision = Some(class);
                        }
                        other => return Err(format!("unknown QUERY key {other:?}")),
                    }
                }
                if !have_seed {
                    return Err("QUERY needs seed=<node>".into());
                }
                Ok(Request::Query(spec))
            }
            Some(other) => Err(format!("unknown command {other:?}")),
            None => Err("empty request".into()),
        }
    }
}

fn append_optional<T: std::fmt::Display>(out: &mut String, key: &str, value: Option<T>) {
    if let Some(value) = value {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        out.push_str(&value.to_string());
    }
}

fn parse_value<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("bad {key} {value:?}: {e}"))
}

/// Why a query was refused without being served — the typed half of
/// deadline scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was saturated and this request held the most
    /// distant deadline (load shedding keeps the oldest deadlines).
    QueueFull,
    /// At admission, even the cheapest calibrated backend's estimate
    /// exceeded the remaining deadline — fail fast instead of queueing
    /// doomed work.
    DeadlineUnmeetable,
    /// The deadline expired while the request waited in the queue.
    DeadlineExceeded,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::DeadlineUnmeetable => "deadline-unmeetable",
            RejectReason::DeadlineExceeded => "deadline-exceeded",
        })
    }
}

impl std::str::FromStr for RejectReason {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "queue-full" => Ok(RejectReason::QueueFull),
            "deadline-unmeetable" => Ok(RejectReason::DeadlineUnmeetable),
            "deadline-exceeded" => Ok(RejectReason::DeadlineExceeded),
            other => Err(format!("unknown reject reason {other:?}")),
        }
    }
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query was served.
    Ranking {
        /// Echo of the request's correlation id.
        id: u64,
        /// Which solver served it.
        backend: BackendKind,
        /// End-to-end latency (arrival → completion), microseconds.
        latency_us: u64,
        /// Whether the answer is a degraded plan: the route did not fit
        /// every budget constraint, or the backend had to shrink its
        /// working set (`memory_limited`) to fit a byte budget.
        degraded: bool,
        /// The score-arithmetic rung the query **executed** at — may be
        /// lower than the requested rung when admission walked the
        /// precision ladder to make a tight deadline.
        precision: PrecisionClass,
        /// The top-`k` ranking, scores in shortest-roundtrip form (a
        /// parsed ranking is bit-identical to the server's).
        ranking: Ranking,
    },
    /// The query was refused with a typed reason.
    Rejected {
        /// Echo of the request's correlation id.
        id: u64,
        /// Why it was refused.
        reason: RejectReason,
        /// The estimate that doomed it (admission rejections only),
        /// microseconds.
        predicted_us: Option<u64>,
        /// Deadline budget remaining when the decision was made,
        /// microseconds (0 when already expired).
        remaining_us: u64,
    },
    /// The request failed (parse error, backend error, routing error).
    Error {
        /// Echo of the request's correlation id (0 when unparseable).
        id: u64,
        /// What went wrong.
        message: String,
    },
    /// A rendered telemetry snapshot (see
    /// [`TelemetrySnapshot::render_compact`](super::TelemetrySnapshot::render_compact)).
    Stats(String),
    /// Liveness reply.
    Pong,
}

impl Response {
    /// Renders the wire form.
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Stats(rendered) => format!("STATS {rendered}"),
            Response::Error { id, message } => format!("ERR id={id} message={message}"),
            Response::Rejected {
                id,
                reason,
                predicted_us,
                remaining_us,
            } => {
                let predicted = predicted_us
                    .map(|us| us.to_string())
                    .unwrap_or_else(|| "-".into());
                format!(
                    "REJECTED id={id} reason={reason} predicted_us={predicted} \
                     remaining_us={remaining_us}"
                )
            }
            Response::Ranking {
                id,
                backend,
                latency_us,
                degraded,
                precision,
                ranking,
            } => {
                let rendered: String = if ranking.is_empty() {
                    "-".into()
                } else {
                    ranking
                        .iter()
                        .map(|(node, score)| format!("{node}:{score}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "OK id={id} backend={backend} latency_us={latency_us} \
                     degraded={} precision={precision} ranking={rendered}",
                    *degraded as u8
                )
            }
        }
    }

    /// Parses the wire form (the client half; servers only encode).
    ///
    /// # Errors
    ///
    /// A human-readable reason.
    pub fn parse(payload: &str) -> Result<Response, String> {
        if payload == "PONG" {
            return Ok(Response::Pong);
        }
        if let Some(rest) = payload.strip_prefix("STATS ") {
            return Ok(Response::Stats(rest.to_string()));
        }
        if let Some(rest) = payload.strip_prefix("ERR ") {
            let rest = rest
                .strip_prefix("id=")
                .ok_or_else(|| "ERR without id".to_string())?;
            let (id, rest) = rest
                .split_once(' ')
                .ok_or_else(|| "ERR without message".to_string())?;
            let id = parse_value("id", id)?;
            let message = rest
                .strip_prefix("message=")
                .ok_or_else(|| "ERR without message".to_string())?
                .to_string();
            return Ok(Response::Error { id, message });
        }
        let mut tokens = payload.split_whitespace();
        match tokens.next() {
            Some("REJECTED") => {
                let id = parse_value("id", take_kv(&mut tokens, "id")?)?;
                let reason = parse_value("reason", take_kv(&mut tokens, "reason")?)?;
                let predicted = take_kv(&mut tokens, "predicted_us")?;
                let predicted_us = if predicted == "-" {
                    None
                } else {
                    Some(parse_value("predicted_us", predicted)?)
                };
                let remaining_us =
                    parse_value("remaining_us", take_kv(&mut tokens, "remaining_us")?)?;
                Ok(Response::Rejected {
                    id,
                    reason,
                    predicted_us,
                    remaining_us,
                })
            }
            Some("OK") => {
                let id = parse_value("id", take_kv(&mut tokens, "id")?)?;
                let backend = parse_value("backend", take_kv(&mut tokens, "backend")?)?;
                let latency_us = parse_value("latency_us", take_kv(&mut tokens, "latency_us")?)?;
                let degraded = take_kv(&mut tokens, "degraded")? == "1";
                let precision = parse_value("precision", take_kv(&mut tokens, "precision")?)?;
                let rendered = take_kv(&mut tokens, "ranking")?;
                let ranking = if rendered == "-" {
                    Vec::new()
                } else {
                    rendered
                        .split(',')
                        .map(|pair| {
                            let (node, score) = pair
                                .split_once(':')
                                .ok_or_else(|| format!("malformed ranking entry {pair:?}"))?;
                            Ok((parse_value("node", node)?, parse_value("score", score)?))
                        })
                        .collect::<Result<Ranking, String>>()?
                };
                Ok(Response::Ranking {
                    id,
                    backend,
                    latency_us,
                    degraded,
                    precision,
                    ranking,
                })
            }
            Some(other) => Err(format!("unknown response {other:?}")),
            None => Err("empty response".into()),
        }
    }
}

/// Pops the next `key=value` token, returning the value.
fn take_kv<'a>(tokens: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<&'a str, String> {
    let token = tokens
        .next()
        .ok_or_else(|| format!("missing {key}=<value>"))?;
    let (actual, value) = token
        .split_once('=')
        .ok_or_else(|| format!("malformed token {token:?}"))?;
    if actual != key {
        return Err(format!("expected key {key:?}, found {actual:?}"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_split_reads_reassemble() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello").unwrap();
        write_frame(&mut wire, "").unwrap();
        write_frame(&mut wire, "world").unwrap();

        // Feed the stream one byte at a time through a reader that times
        // out between bytes: every frame must still come out intact.
        struct Trickle<'a> {
            data: &'a [u8],
            pos: usize,
            parity: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.parity = !self.parity;
                if self.parity {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
                }
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut stream = Trickle {
            data: &wire,
            pos: 0,
            parity: false,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.read_event(&mut stream).unwrap() {
                FrameEvent::Frame(f) => frames.push(f),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => break,
            }
        }
        assert_eq!(
            frames,
            vec!["hello".to_string(), String::new(), "world".into()]
        );
    }

    #[test]
    fn oversized_frames_are_refused_both_ways() {
        let huge = "x".repeat(MAX_FRAME + 1);
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
        let mut wire = Vec::from(u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"junk");
        let mut reader = FrameReader::new();
        assert!(reader.read_event(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn requests_roundtrip() {
        let specs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query(QuerySpec::new(9, 42)),
            Request::Query(QuerySpec {
                k: Some(5),
                alpha: Some(0.5),
                length: Some(4),
                deadline_ms: Some(12.5),
                max_memory_bytes: Some(1 << 16),
                min_precision: Some(0.9),
                ..QuerySpec::new(1, 7)
            }),
            Request::Query(QuerySpec {
                precision: Some(PrecisionClass::Fast32),
                ..QuerySpec::new(2, 8)
            }),
            Request::Query(QuerySpec {
                precision: Some(PrecisionClass::Fixed(12)),
                ..QuerySpec::new(3, 9)
            }),
        ];
        for req in specs {
            assert_eq!(Request::parse(&req.encode()).unwrap(), req, "{req:?}");
        }
        for bad in [
            "",
            "FROBNICATE",
            "QUERY",
            "QUERY id=1",
            "QUERY seed=x",
            "QUERY seed=1 unknown=2",
            "QUERY seed=1 naked-token",
            // Hostile deadlines must die at parse, not as a Duration
            // panic in a connection thread.
            "QUERY seed=1 deadline_ms=inf",
            "QUERY seed=1 deadline_ms=NaN",
            "QUERY seed=1 deadline_ms=1e25",
            "QUERY seed=1 deadline_ms=-5",
            // Out-of-range Q formats must die at parse too.
            "QUERY seed=1 precision=q0",
            "QUERY seed=1 precision=q99",
            "QUERY seed=1 precision=double",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn query_spec_maps_onto_query_request() {
        let spec = QuerySpec {
            k: Some(5),
            alpha: Some(0.5),
            length: Some(4),
            deadline_ms: Some(12.5),
            max_memory_bytes: Some(1 << 16),
            min_precision: Some(0.9),
            precision: Some(PrecisionClass::Fast32),
            ..QuerySpec::new(1, 7)
        };
        let req = spec.to_query_request();
        assert_eq!(req.seed, 7);
        assert_eq!(req.k, Some(5));
        assert_eq!(req.overrides.alpha, Some(0.5));
        assert_eq!(req.overrides.length, Some(4));
        assert_eq!(req.budget.max_memory_bytes, Some(1 << 16));
        assert_eq!(req.budget.min_precision, Some(0.9));
        assert_eq!(req.budget.precision, Some(PrecisionClass::Fast32));
        // The latency budget is the scheduler's to set from the live
        // remaining deadline.
        assert_eq!(req.budget.max_latency_ms, None);
    }

    #[test]
    fn responses_roundtrip_with_bit_identical_scores() {
        let cases = [
            Response::Pong,
            Response::Stats("accepted=3 completed=3".into()),
            Response::Error {
                id: 4,
                message: "no backend available: woe is me".into(),
            },
            Response::Rejected {
                id: 5,
                reason: RejectReason::QueueFull,
                predicted_us: None,
                remaining_us: 17,
            },
            Response::Rejected {
                id: 6,
                reason: RejectReason::DeadlineUnmeetable,
                predicted_us: Some(12345),
                remaining_us: 0,
            },
            Response::Ranking {
                id: 7,
                backend: BackendKind::Meloppr,
                latency_us: 991,
                degraded: true,
                precision: PrecisionClass::Fast32,
                ranking: vec![(3, 0.1_f64), (9, 1.0 / 3.0), (1, f64::MIN_POSITIVE)],
            },
            Response::Ranking {
                id: 8,
                backend: BackendKind::LocalPpr,
                latency_us: 1,
                degraded: false,
                precision: PrecisionClass::Exact64,
                ranking: Vec::new(),
            },
            Response::Ranking {
                id: 9,
                backend: BackendKind::FpgaHybrid,
                latency_us: 77,
                degraded: false,
                precision: PrecisionClass::Fixed(14),
                ranking: vec![(0, 0.5_f64)],
            },
        ];
        for resp in cases {
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp, "{resp:?}");
        }
    }
}
