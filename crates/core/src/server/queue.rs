//! Bounded MPMC queue ordered by deadline, with latest-deadline-first
//! load shedding.
//!
//! The serving front-end needs three properties from its request queue
//! that a plain channel cannot give it at once:
//!
//! 1. **EDF service order** — workers always drain the entry whose
//!    deadline is nearest ([`DeadlineQueue::pop`] is `pop_first` on a
//!    `BTreeMap` keyed by `(deadline, seq)`), which minimises the number
//!    of missed deadlines under overload for this workload shape.
//! 2. **Bounded depth** — the queue never holds more than its capacity,
//!    so queue wait (and therefore tail latency of *accepted* work) is
//!    bounded by `capacity × service time`.
//! 3. **Deadline-aware shedding** — when a push would exceed capacity,
//!    the entry with the **latest** deadline is shed (the incoming one,
//!    or a displaced resident), keeping the oldest deadlines in service.
//!    Shedding the most-distant deadline loses the requests with the
//!    most slack, which are exactly the ones a client can cheapest
//!    retry.
//!
//! Entries with equal deadlines are served FIFO via a monotonic
//! sequence number, so two requests with the same deadline can never
//! starve each other.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// The outcome of a [`DeadlineQueue::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueued<T> {
    /// The entry was admitted within capacity.
    Admitted,
    /// The entry was admitted by shedding a resident whose deadline was
    /// later than the incoming one's.
    Displaced(T),
    /// The entry itself held the latest deadline (or the queue is
    /// closed) and was refused.
    Refused(T),
}

struct QueueState<T> {
    entries: BTreeMap<(Instant, u64), T>,
    seq: u64,
    closed: bool,
}

/// A bounded MPMC priority queue keyed by deadline. See the [module
/// docs](self) for the service and shedding policy.
pub struct DeadlineQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
    high_water: AtomicUsize,
}

impl<T> std::fmt::Debug for DeadlineQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("high_water", &self.high_water())
            .finish()
    }
}

impl<T> DeadlineQueue<T> {
    /// The queue's invariants hold at every await point, so a panic
    /// that poisoned the lock (e.g. an injected worker panic unwinding
    /// through `catch_unwind`) leaves valid state behind — recover it
    /// rather than cascading the panic into every other worker.
    fn state(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "DeadlineQueue capacity must be positive");
        DeadlineQueue {
            state: Mutex::new(QueueState {
                entries: BTreeMap::new(),
                seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            high_water: AtomicUsize::new(0),
        }
    }

    /// Offers `item` with `deadline`, shedding the latest deadline if
    /// the queue is full. Pushing to a closed queue refuses the item.
    pub fn push(&self, item: T, deadline: Instant) -> Enqueued<T> {
        let mut state = self.state();
        if state.closed {
            return Enqueued::Refused(item);
        }
        let mut displaced = None;
        // A full queue is non-empty (capacity > 0), so the last entry
        // always exists; structured as a guard anyway so an impossible
        // state admits the item rather than panic the serving thread.
        if state.entries.len() >= self.capacity {
            if let Some((&latest, _)) = state.entries.last_key_value() {
                if deadline >= latest.0 {
                    // The incoming entry has the most slack: refuse it. Ties
                    // favour residents (they have waited longer already).
                    return Enqueued::Refused(item);
                }
                displaced = state.entries.pop_last().map(|(_, shed)| shed);
            }
        }
        let seq = state.seq;
        state.seq += 1;
        state.entries.insert((deadline, seq), item);
        self.high_water
            .fetch_max(state.entries.len(), Ordering::Relaxed);
        drop(state);
        self.available.notify_one();
        match displaced {
            Some(shed) => Enqueued::Displaced(shed),
            None => Enqueued::Admitted,
        }
    }

    /// Blocks for the entry with the earliest deadline. Returns `None`
    /// once the queue is closed **and** drained — residents queued
    /// before [`DeadlineQueue::close`] are still served.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state();
        loop {
            if let Some((_, item)) = state.entries.pop_first() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes are refused, blocked poppers wake
    /// up, and `pop` returns `None` once residents drain.
    pub fn close(&self) {
        self.state().closed = true;
        self.available.notify_all();
    }

    /// Current number of queued entries.
    pub fn len(&self) -> usize {
        self.state().entries.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been (never exceeds capacity).
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// The configured depth bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn pops_in_deadline_order_fifo_on_ties() {
        let base = Instant::now();
        let q = DeadlineQueue::bounded(8);
        assert_eq!(q.push("late", at(base, 30)), Enqueued::Admitted);
        assert_eq!(q.push("early", at(base, 10)), Enqueued::Admitted);
        assert_eq!(q.push("tie-a", at(base, 20)), Enqueued::Admitted);
        assert_eq!(q.push("tie-b", at(base, 20)), Enqueued::Admitted);
        q.close();
        assert_eq!(q.pop(), Some("early"));
        assert_eq!(q.pop(), Some("tie-a"));
        assert_eq!(q.pop(), Some("tie-b"));
        assert_eq!(q.pop(), Some("late"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn saturation_sheds_the_latest_deadline() {
        let base = Instant::now();
        let q = DeadlineQueue::bounded(2);
        assert_eq!(q.push("a", at(base, 10)), Enqueued::Admitted);
        assert_eq!(q.push("b", at(base, 20)), Enqueued::Admitted);
        // Most slack incoming: refused outright (a tie also refuses).
        assert_eq!(q.push("c", at(base, 30)), Enqueued::Refused("c"));
        assert_eq!(q.push("d", at(base, 20)), Enqueued::Refused("d"));
        // Tighter deadline displaces the latest resident.
        assert_eq!(q.push("e", at(base, 15)), Enqueued::Displaced("b"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        q.close();
        assert_eq!(q.push("f", at(base, 1)), Enqueued::Refused("f"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("e"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = DeadlineQueue::<u32>::bounded(4);
        std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..3).map(|_| scope.spawn(|| q.pop())).collect();
            // Give the poppers a moment to block, then close.
            std::thread::sleep(Duration::from_millis(20));
            q.push(7, Instant::now());
            q.close();
            let drained: Vec<_> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
            assert_eq!(drained.iter().filter(|d| d.is_some()).count(), 1);
            assert_eq!(drained.iter().filter(|d| d.is_none()).count(), 2);
        });
    }
}
