//! Serving telemetry: latency quantiles, queue pressure, and typed
//! outcome counters.
//!
//! Counters are lock-free atomics bumped on the request path; the
//! latency reservoir and per-backend route counts sit behind short
//! mutexes touched once per completion. [`ServerTelemetry::snapshot`]
//! folds everything into an immutable [`TelemetrySnapshot`] that the
//! server renders over the protocol (`STATS`) and prints at shutdown.
//!
//! The latency reservoir keeps the most recent `N` completion latencies
//! in a ring, so the reported p50/p95/p99 reflect *current* behaviour
//! rather than the whole process lifetime — the standard choice for a
//! long-lived server whose load shifts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::backend::{BackendKind, BreakerState};

/// Fixed-size ring of the most recent completion latencies, in
/// milliseconds.
#[derive(Debug)]
struct LatencyReservoir {
    samples: Vec<f64>,
    cursor: usize,
    filled: usize,
}

impl LatencyReservoir {
    fn new(capacity: usize) -> Self {
        LatencyReservoir {
            samples: vec![0.0; capacity.max(1)],
            cursor: 0,
            filled: 0,
        }
    }

    fn record(&mut self, latency_ms: f64) {
        let len = self.samples.len();
        if let Some(slot) = self.samples.get_mut(self.cursor) {
            *slot = latency_ms;
        }
        self.cursor = (self.cursor + 1) % len;
        self.filled = (self.filled + 1).min(len);
    }

    /// The retained samples, sorted ascending.
    fn sorted(&self) -> Vec<f64> {
        let mut live: Vec<f64> = self.samples.iter().take(self.filled).copied().collect();
        live.sort_by(f64::total_cmp);
        live
    }
}

/// The nearest-rank `q`-quantile of an ascending-sorted sample set
/// (0.0 when empty).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0.0)
}

/// Live serving counters shared by every connection and worker thread.
#[derive(Debug)]
pub struct ServerTelemetry {
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected_unmeetable: AtomicU64,
    deadline_missed: AtomicU64,
    degraded: AtomicU64,
    precision_degraded: AtomicU64,
    errors: AtomicU64,
    worker_panics: AtomicU64,
    failovers: AtomicU64,
    aborted_connections: AtomicU64,
    routes: Mutex<Vec<(BackendKind, u64)>>,
    latencies: Mutex<LatencyReservoir>,
}

/// Telemetry mutexes guard pure accounting (a count vector, a latency
/// ring) whose every intermediate state is valid, so a panicking worker
/// must not take monitoring down with it: recover the guard instead.
fn counters<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServerTelemetry {
    /// Fresh telemetry retaining the last `reservoir` completion
    /// latencies for quantile estimates.
    pub fn new(reservoir: usize) -> Self {
        ServerTelemetry {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected_unmeetable: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            precision_degraded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            aborted_connections: AtomicU64::new(0),
            routes: Mutex::new(Vec::new()),
            latencies: Mutex::new(LatencyReservoir::new(reservoir)),
        }
    }

    /// A request passed admission and entered the queue.
    pub fn on_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was load-shed from the saturated queue.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was fast-failed at admission as deadline-unmeetable.
    pub fn on_unmeetable(&self) {
        self.rejected_unmeetable.fetch_add(1, Ordering::Relaxed);
    }

    /// A queued request's deadline expired before execution.
    pub fn on_queue_expiry(&self) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// A malformed request or a failed backend execution.
    pub fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker caught a panicking query and answered a typed internal
    /// error instead of dying (counted *in addition to* the error).
    pub fn on_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A query's first-choice backend failed and the request was
    /// re-routed; `count` is how many failovers that one query used.
    pub fn on_failover(&self, count: u64) {
        self.failovers.fetch_add(count, Ordering::Relaxed);
    }

    /// A client connection died with responses still owed (mid-frame
    /// EOF or a write to a closed socket).
    pub fn on_aborted_connection(&self) {
        self.aborted_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A query completed: record its route, end-to-end latency, and
    /// whether it was served degraded (plan, precision rung) or past
    /// its deadline.
    pub fn on_completion(
        &self,
        kind: BackendKind,
        latency: Duration,
        degraded: bool,
        precision_degraded: bool,
        missed_deadline: bool,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if precision_degraded {
            self.precision_degraded.fetch_add(1, Ordering::Relaxed);
        }
        if missed_deadline {
            self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut routes = counters(&self.routes);
            match routes.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, count)) => *count += 1,
                None => routes.push((kind, 1)),
            }
        }
        counters(&self.latencies).record(latency.as_secs_f64() * 1e3);
    }

    /// An immutable snapshot; the caller supplies queue figures (the
    /// queue owns its own depth accounting).
    pub fn snapshot(&self, queue_depth: usize, queue_high_water: usize) -> TelemetrySnapshot {
        let sorted = counters(&self.latencies).sorted();
        TelemetrySnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected_unmeetable: self.rejected_unmeetable.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            precision_degraded: self.precision_degraded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            aborted_connections: self.aborted_connections.load(Ordering::Relaxed),
            queue_depth,
            queue_high_water,
            p50_ms: quantile(&sorted, 0.50),
            p95_ms: quantile(&sorted, 0.95),
            p99_ms: quantile(&sorted, 0.99),
            max_ms: sorted.last().copied().unwrap_or(0.0),
            routes: counters(&self.routes).clone(),
            breakers: Vec::new(),
        }
    }
}

/// A point-in-time view of serving telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests load-shed from the saturated queue.
    pub shed: u64,
    /// Requests fast-failed at admission (estimate exceeded deadline).
    pub rejected_unmeetable: u64,
    /// Deadlines missed: queue expiries plus completions that finished
    /// late.
    pub deadline_missed: u64,
    /// Completions served via a degraded plan (budget-unfit route or a
    /// `memory_limited` execution).
    pub degraded: u64,
    /// Completions executed at a different score-arithmetic rung than
    /// the client requested (the admission ladder stepped the precision
    /// class down to make the deadline, or the route landed on the
    /// fixed-point accelerator).
    pub precision_degraded: u64,
    /// Protocol parse failures plus backend execution errors.
    pub errors: u64,
    /// Panicking queries caught by workers and answered as typed
    /// internal errors (a subset of `errors`).
    pub worker_panics: u64,
    /// Failover retries consumed: every time a failed backend attempt
    /// was re-routed to another backend.
    pub failovers: u64,
    /// Connections that died with responses still owed.
    pub aborted_connections: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has ever been (bounded by its capacity).
    pub queue_high_water: usize,
    /// Median completion latency over the reservoir, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile completion latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile completion latency, milliseconds.
    pub p99_ms: f64,
    /// Worst retained completion latency, milliseconds.
    pub max_ms: f64,
    /// Completions per backend, in first-served order.
    pub routes: Vec<(BackendKind, u64)>,
    /// Per-backend circuit-breaker state and lifetime trip count, in
    /// registration order. Filled in by the server (the router owns the
    /// breakers); empty from a bare [`ServerTelemetry::snapshot`].
    pub breakers: Vec<(BackendKind, BreakerState, u64)>,
}

impl TelemetrySnapshot {
    /// A single-line `key=value` rendering for the `STATS` response.
    pub fn render_compact(&self) -> String {
        let routes: String = if self.routes.is_empty() {
            "-".into()
        } else {
            self.routes
                .iter()
                .map(|(kind, count)| format!("{kind}:{count}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let breakers: String = if self.breakers.is_empty() {
            "-".into()
        } else {
            self.breakers
                .iter()
                .map(|(kind, state, trips)| format!("{kind}:{state}:{trips}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "accepted={} completed={} shed={} rejected_unmeetable={} deadline_missed={} \
             degraded={} precision_degraded={} errors={} worker_panics={} failovers={} \
             aborted_connections={} queue_depth={} queue_high_water={} \
             p50_ms={:.3} p95_ms={:.3} p99_ms={:.3} max_ms={:.3} routes={routes} \
             breakers={breakers}",
            self.accepted,
            self.completed,
            self.shed,
            self.rejected_unmeetable,
            self.deadline_missed,
            self.degraded,
            self.precision_degraded,
            self.errors,
            self.worker_panics,
            self.failovers,
            self.aborted_connections,
            self.queue_depth,
            self.queue_high_water,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
        )
    }

    /// Parses a [`TelemetrySnapshot::render_compact`] line back into
    /// the counter fields clients act on (latency quantiles included;
    /// route counts ignored).
    ///
    /// # Errors
    ///
    /// A human-readable reason.
    pub fn parse_compact(line: &str) -> Result<TelemetrySnapshot, String> {
        let mut snap = TelemetrySnapshot {
            accepted: 0,
            completed: 0,
            shed: 0,
            rejected_unmeetable: 0,
            deadline_missed: 0,
            degraded: 0,
            precision_degraded: 0,
            errors: 0,
            worker_panics: 0,
            failovers: 0,
            aborted_connections: 0,
            queue_depth: 0,
            queue_high_water: 0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
            routes: Vec::new(),
            breakers: Vec::new(),
        };
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed stats token {token:?}"))?;
            let parse_u64 = |v: &str| v.parse::<u64>().map_err(|e| format!("bad {key}: {e}"));
            let parse_f64 = |v: &str| v.parse::<f64>().map_err(|e| format!("bad {key}: {e}"));
            match key {
                "accepted" => snap.accepted = parse_u64(value)?,
                "completed" => snap.completed = parse_u64(value)?,
                "shed" => snap.shed = parse_u64(value)?,
                "rejected_unmeetable" => snap.rejected_unmeetable = parse_u64(value)?,
                "deadline_missed" => snap.deadline_missed = parse_u64(value)?,
                "degraded" => snap.degraded = parse_u64(value)?,
                "precision_degraded" => snap.precision_degraded = parse_u64(value)?,
                "errors" => snap.errors = parse_u64(value)?,
                "worker_panics" => snap.worker_panics = parse_u64(value)?,
                "failovers" => snap.failovers = parse_u64(value)?,
                "aborted_connections" => snap.aborted_connections = parse_u64(value)?,
                "queue_depth" => snap.queue_depth = parse_u64(value)? as usize,
                "queue_high_water" => snap.queue_high_water = parse_u64(value)? as usize,
                "p50_ms" => snap.p50_ms = parse_f64(value)?,
                "p95_ms" => snap.p95_ms = parse_f64(value)?,
                "p99_ms" => snap.p99_ms = parse_f64(value)?,
                "max_ms" => snap.max_ms = parse_f64(value)?,
                "routes" => {
                    if value != "-" {
                        for pair in value.split(',') {
                            let (kind, count) = pair
                                .split_once(':')
                                .ok_or_else(|| format!("malformed route {pair:?}"))?;
                            let kind = kind
                                .parse::<BackendKind>()
                                .map_err(|e| format!("bad route kind: {e}"))?;
                            let count = count
                                .parse::<u64>()
                                .map_err(|e| format!("bad route: {e}"))?;
                            snap.routes.push((kind, count));
                        }
                    }
                }
                "breakers" => {
                    if value != "-" {
                        for triple in value.split(',') {
                            let mut parts = triple.splitn(3, ':');
                            let (Some(kind), Some(state), Some(trips)) =
                                (parts.next(), parts.next(), parts.next())
                            else {
                                return Err(format!("malformed breaker {triple:?}"));
                            };
                            let kind = kind
                                .parse::<BackendKind>()
                                .map_err(|e| format!("bad breaker kind: {e}"))?;
                            let state = state
                                .parse::<BreakerState>()
                                .map_err(|e| format!("bad breaker state: {e}"))?;
                            let trips = trips
                                .parse::<u64>()
                                .map_err(|e| format!("bad breaker trips: {e}"))?;
                            snap.breakers.push((kind, state, trips));
                        }
                    }
                }
                other => return Err(format!("unknown stats key {other:?}")),
            }
        }
        Ok(snap)
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    /// A multi-line human-readable report (printed at shutdown).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "serving telemetry:")?;
        writeln!(
            f,
            "  accepted {}  completed {}  errors {}",
            self.accepted, self.completed, self.errors
        )?;
        writeln!(
            f,
            "  shed {}  unmeetable {}  deadline-missed {}  degraded {}  precision-degraded {}",
            self.shed,
            self.rejected_unmeetable,
            self.deadline_missed,
            self.degraded,
            self.precision_degraded
        )?;
        writeln!(
            f,
            "  worker-panics {}  failovers {}  aborted-connections {}",
            self.worker_panics, self.failovers, self.aborted_connections
        )?;
        writeln!(
            f,
            "  queue depth {}  high-water {}",
            self.queue_depth, self.queue_high_water
        )?;
        writeln!(
            f,
            "  latency ms  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
            self.p50_ms, self.p95_ms, self.p99_ms, self.max_ms
        )?;
        write!(f, "  routes")?;
        if self.routes.is_empty() {
            write!(f, "  (none)")?;
        }
        for (kind, count) in &self.routes {
            write!(f, "  {kind}={count}")?;
        }
        if !self.breakers.is_empty() {
            write!(f, "\n  breakers")?;
            for (kind, state, trips) in &self.breakers {
                write!(f, "  {kind}={state} (trips {trips})")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank_over_the_reservoir() {
        let telemetry = ServerTelemetry::new(128);
        for i in 1..=100u64 {
            telemetry.on_completion(
                BackendKind::Meloppr,
                Duration::from_millis(i),
                false,
                false,
                false,
            );
        }
        let snap = telemetry.snapshot(3, 7);
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.p50_ms, 50.0);
        assert_eq!(snap.p95_ms, 95.0);
        assert_eq!(snap.p99_ms, 99.0);
        assert_eq!(snap.max_ms, 100.0);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.queue_high_water, 7);
        assert_eq!(snap.routes, vec![(BackendKind::Meloppr, 100)]);
    }

    #[test]
    fn reservoir_retains_only_the_most_recent_window() {
        let telemetry = ServerTelemetry::new(4);
        for ms in [1000, 1000, 1000, 2, 4, 6, 8] {
            telemetry.on_completion(
                BackendKind::LocalPpr,
                Duration::from_millis(ms),
                false,
                false,
                false,
            );
        }
        // Only the last four samples (2, 4, 6, 8 ms) remain.
        let snap = telemetry.snapshot(0, 0);
        assert_eq!(snap.max_ms, 8.0);
        assert_eq!(snap.p50_ms, 4.0);
    }

    #[test]
    fn counters_and_flags_accumulate() {
        let telemetry = ServerTelemetry::new(8);
        telemetry.on_accept();
        telemetry.on_accept();
        telemetry.on_shed();
        telemetry.on_unmeetable();
        telemetry.on_queue_expiry();
        telemetry.on_error();
        telemetry.on_completion(
            BackendKind::ExactPower,
            Duration::from_millis(3),
            true,
            true,
            true,
        );
        let snap = telemetry.snapshot(0, 0);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected_unmeetable, 1);
        assert_eq!(snap.deadline_missed, 2); // queue expiry + late completion
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.precision_degraded, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn compact_rendering_roundtrips_counters() {
        let telemetry = ServerTelemetry::new(8);
        telemetry.on_accept();
        telemetry.on_completion(
            BackendKind::MonteCarlo,
            Duration::from_micros(1500),
            false,
            true,
            false,
        );
        let snap = telemetry.snapshot(1, 2);
        let parsed = TelemetrySnapshot::parse_compact(&snap.render_compact()).unwrap();
        assert_eq!(parsed.accepted, 1);
        assert_eq!(parsed.precision_degraded, 1);
        assert_eq!(parsed.completed, 1);
        assert_eq!(parsed.queue_depth, 1);
        assert_eq!(parsed.queue_high_water, 2);
        assert_eq!(parsed.p50_ms, 1.5);
        assert_eq!(parsed.routes, vec![(BackendKind::MonteCarlo, 1)]);
        // Display stays renderable for the shutdown report.
        assert!(snap.to_string().contains("high-water 2"));
    }

    #[test]
    fn robustness_counters_and_breakers_roundtrip() {
        let telemetry = ServerTelemetry::new(8);
        telemetry.on_worker_panic();
        telemetry.on_failover(2);
        telemetry.on_aborted_connection();
        let mut snap = telemetry.snapshot(0, 0);
        snap.breakers = vec![
            (BackendKind::Meloppr, BreakerState::Open, 3),
            (BackendKind::LocalPpr, BreakerState::Closed, 0),
        ];
        let parsed = TelemetrySnapshot::parse_compact(&snap.render_compact()).unwrap();
        assert_eq!(parsed.worker_panics, 1);
        assert_eq!(parsed.failovers, 2);
        assert_eq!(parsed.aborted_connections, 1);
        assert_eq!(parsed.breakers, snap.breakers);
        let report = snap.to_string();
        assert!(report.contains("worker-panics 1"), "{report}");
        assert!(report.contains("meloppr=open (trips 3)"), "{report}");
    }
}
