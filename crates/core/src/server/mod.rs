//! Long-lived serving front-end: deadline-aware scheduling and load
//! shedding over the unified backend [`Router`].
//!
//! This module turns the batch-oriented engine into a persistent
//! service. [`PprServer`] listens on plain `std::net` TCP (scoped
//! threads, no async runtime), speaks the length-prefixed line protocol
//! of [`protocol`], and drives every query through the same
//! [`Router`]/[`QueryWorkspace`](crate::workspace::QueryWorkspace)
//! machinery the CLI uses — one shared [`Router`] reference, so serving
//! inherits backend calibration, the shared sub-graph cache, and pooled
//! workspaces for free.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ── frame ── parse ── admit ──► DeadlineQueue ──► worker pool
//!                              │   ▲        │                  │
//!              REJECTED (unmeetable)  REJECTED (queue-full,    │
//!                                     shed latest deadline)    │
//!                                           │                  ▼
//!                 client ◄── out-of-order response frames ── router.query
//! ```
//!
//! Every request carries a **deadline** (client-supplied `deadline_ms`,
//! else the server default). Admission ([`scheduler`]) asks
//! [`Router::select`] whether any calibrated backend can finish inside
//! the *remaining* budget: late-risk queries automatically route to
//! cheaper backends or degraded (`memory_limited`) plans because their
//! tightened latency budget excludes the expensive routes. When even
//! the cheapest route cannot finish in time, admission walks the
//! request's **precision ladder** (`exact` → `f32` → `q16`; narrower
//! score arithmetic cheapens the staged diffusion estimate) before
//! giving up; queries no backend can serve at any rung are
//! **fast-failed** with a typed `deadline-unmeetable` rejection instead
//! of wasting queue capacity. `OK` responses report the rung each query
//! executed at, and `precision_degraded` in the telemetry counts
//! completions served below the requested rung.
//!
//! Admitted work enters a **bounded** MPMC [`DeadlineQueue`] drained by
//! a worker pool in earliest-deadline-first order. When the queue
//! saturates, the entry with the **latest** deadline is shed
//! (`queue-full`) — under overload the server keeps the requests with
//! the least slack and sheds the ones cheapest to retry. Workers
//! re-check the deadline at dequeue (queue waits consume budget) and
//! answer expired entries with `deadline-exceeded`.
//!
//! Because scheduling reorders requests, responses carry the client's
//! correlation `id` and may arrive out of order; clients may pipeline
//! freely.
//!
//! [`ServerTelemetry`] tracks the serving health the roadmap asks for:
//! a recent-window latency reservoir (p50/p95/p99), queue depth
//! high-water, shed / unmeetable / deadline-missed / degraded counters,
//! and per-backend route counts. Snapshots are queryable over the
//! protocol (`STATS`) and rendered on shutdown.
//!
//! # Failure model
//!
//! The server assumes *every* dependency can fail mid-request and
//! answers each failure with a typed response instead of silence:
//!
//! * **Backend errors are retried, bounded.** A failed query attempt is
//!   re-routed via [`Router::query_with_failover`] to the next-cheapest
//!   backend that still fits the *remaining* deadline, at most
//!   `MAX_FAILOVERS` (2) times. Only `Err`
//!   attempts retry — a completed query is never re-run, so
//!   non-idempotent state (calibration EWMAs, cache admissions) is
//!   never double-counted. Repeated failures trip the backend's
//!   **circuit breaker** open; routing then avoids it until a cooldown
//!   elapses and a half-open probe succeeds. Breaker state rides along
//!   in `STATS` (`breakers=`) and the shutdown report.
//! * **Panics are isolated, not retried.** A worker wraps query
//!   execution in `catch_unwind`: the panicking query answers `ERR`
//!   with an internal-error message, `worker_panics` increments, and
//!   the worker survives to drain the queue. Panic-poisoned locks
//!   (workspace pool, cache shards, calibration, telemetry) all recover
//!   rather than cascade — a poisoned cache shard is cleared and
//!   counted, never trusted.
//! * **Client failures free server resources.** A peer that disconnects
//!   with responses still owed, or dies mid-frame (length prefix
//!   without payload), is counted in `aborted_connections`; its pending
//!   completions drain into the closed channel and the connection
//!   thread exits without wedging workers or other connections.
//! * **Overload sheds, deadline pressure degrades** (see the lifecycle
//!   above): `queue-full` / `deadline-unmeetable` / `deadline-exceeded`
//!   are typed rejections, and precision-ladder degradation is counted,
//!   not hidden.
//!
//! The `failpoints` feature (off by default, zero overhead when off)
//! injects deterministic faults at the seams named above — see
//! [`crate::failpoint`] and `tests/chaos.rs`, which drives a live
//! server through scripted fault schedules and asserts exactly this
//! model.

pub mod protocol;
pub mod queue;
pub mod scheduler;
pub mod telemetry;

pub use protocol::{
    write_frame, FrameEvent, FrameReader, QuerySpec, RejectReason, Request, Response,
    MAX_DEADLINE_MS, MAX_FRAME,
};
pub use queue::{DeadlineQueue, Enqueued};
pub use scheduler::{admit, Admission};
pub use telemetry::{ServerTelemetry, TelemetrySnapshot};

use std::io::{self, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::backend::Router;
use crate::quantized::PrecisionClass;

/// Tuning for a [`PprServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it shed the latest
    /// deadline (≥ 1).
    pub queue_capacity: usize,
    /// Deadline for requests that do not carry `deadline_ms`,
    /// milliseconds (saturated to [`MAX_DEADLINE_MS`]).
    pub default_deadline_ms: f64,
    /// Completion latencies retained for quantile estimates.
    pub latency_reservoir: usize,
    /// Read-timeout tick for connection threads: how often they notice
    /// shutdown and flush out-of-order responses.
    pub poll_interval: Duration,
    /// Precision rung applied to `QUERY` frames that carry no
    /// `precision=` token (`None` keeps the `Exact64` default). Lets an
    /// operator run a whole deployment at `f32`/`q16` without touching
    /// clients; per-request tokens still win.
    pub default_precision: Option<PrecisionClass>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline_ms: 100.0,
            latency_reservoir: 4096,
            poll_interval: Duration::from_millis(5),
            default_precision: None,
        }
    }
}

/// One admitted request waiting for a worker.
struct Job {
    /// Correlation id echoed on the response.
    id: u64,
    /// The admission-tightened request (budget re-tightened at dequeue).
    req: crate::backend::QueryRequest,
    /// When the request was admitted.
    arrival: Instant,
    /// Absolute deadline.
    deadline: Instant,
    /// The score-arithmetic rung the client asked for (`Exact64` when
    /// the request carried none) — admission may execute below it.
    requested_precision: PrecisionClass,
    /// Where the response frame goes (the owning connection's channel).
    reply: mpsc::Sender<Response>,
}

/// A long-lived TCP serving front-end over a shared [`Router`].
///
/// The server borrows the router (and through it the graph), so the
/// usual pattern is: build and prepare a router, [`PprServer::bind`],
/// then [`PprServer::serve`] on the main thread while other threads (or
/// a signal handler) call [`PprServer::shutdown`]. `serve` returns once
/// every connection and worker has wound down; queued residents are
/// drained, not dropped.
pub struct PprServer<'r, 'g> {
    router: &'r Router<'g>,
    config: ServerConfig,
    listener: TcpListener,
    local_addr: SocketAddr,
    queue: DeadlineQueue<Job>,
    telemetry: ServerTelemetry,
    stop: AtomicBool,
}

impl<'r, 'g> PprServer<'r, 'g> {
    /// Binds a listener on `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral test port).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    ///
    /// # Panics
    ///
    /// If `config.workers` or `config.queue_capacity` is zero.
    pub fn bind<A: ToSocketAddrs>(
        router: &'r Router<'g>,
        config: ServerConfig,
        addr: A,
    ) -> io::Result<Self> {
        assert!(config.workers > 0, "server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(PprServer {
            router,
            queue: DeadlineQueue::bounded(config.queue_capacity),
            telemetry: ServerTelemetry::new(config.latency_reservoir),
            config,
            listener,
            local_addr,
            stop: AtomicBool::new(false),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether [`PprServer::shutdown`] has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown from any thread: closes the queue to new work
    /// and wakes the blocking accept loop. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the accept loop with a throwaway connection. A wildcard
        // bind (0.0.0.0 / [::]) is not a guaranteed-connectable
        // destination on every platform, so aim at the same-family
        // loopback with the bound port instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }

    /// A telemetry snapshot including live queue figures and the
    /// router's per-backend circuit-breaker states.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self
            .telemetry
            .snapshot(self.queue.len(), self.queue.high_water());
        snap.breakers = self
            .router
            .breaker_snapshots()
            .into_iter()
            .map(|b| (b.kind, b.state, b.trips))
            .collect();
        snap
    }

    /// Runs the accept loop and worker pool until [`PprServer::shutdown`].
    ///
    /// Blocks the calling thread. Per-connection I/O errors only drop
    /// that connection.
    ///
    /// # Errors
    ///
    /// Fatal listener errors.
    pub fn serve(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                scope.spawn(|| self.worker_loop());
            }
            let result = loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.is_shutdown() {
                            break Ok(()); // the shutdown wake-up connection
                        }
                        scope.spawn(move || {
                            let _ = self.handle_connection(stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) if self.is_shutdown() => break Ok(()),
                    Err(e) => {
                        // A fatal listener error must still wind down the
                        // workers, or the scope would never exit.
                        self.stop.store(true, Ordering::SeqCst);
                        break Err(e);
                    }
                }
            };
            self.queue.close();
            result
        })
    }

    /// Worker: drain the queue in deadline order until closed and empty.
    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            self.execute(job);
        }
    }

    /// Runs one admitted job, re-checking its deadline first.
    fn execute(&self, job: Job) {
        let now = Instant::now();
        let remaining = job.deadline.saturating_duration_since(now);
        // Re-admit against the post-queue-wait remainder: the wait may
        // have made the deadline unmeetable, and a shrunken budget may
        // re-route to a cheaper backend than admission predicted.
        let admission = match admit(self.router, &job.req, remaining) {
            Ok(admission) => admission,
            Err(e) => {
                self.telemetry.on_error();
                let _ = job.reply.send(Response::Error {
                    id: job.id,
                    message: e.to_string(),
                });
                return;
            }
        };
        let req = match admission {
            Admission::Admit { req, .. } => req,
            Admission::Reject { predicted_us } => {
                self.telemetry.on_queue_expiry();
                let _ = job.reply.send(Response::Rejected {
                    id: job.id,
                    reason: RejectReason::DeadlineExceeded,
                    predicted_us,
                    remaining_us: remaining.as_micros() as u64,
                });
                return;
            }
        };
        // A panicking backend must not take the worker (and with it the
        // whole drain) down: isolate the unwind, answer a typed internal
        // error, and keep serving. The shared state a panic can reach is
        // poison-recovering by construction (workspace pool, cache
        // shards, calibration, breakers, telemetry), so resuming after
        // the catch is sound — which is what makes the
        // `AssertUnwindSafe` honest.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.router.query_with_failover(&req)
        }));
        match attempt {
            Ok(Ok((route, outcome, failovers))) => {
                if failovers > 0 {
                    self.telemetry.on_failover(u64::from(failovers));
                }
                let completed_at = Instant::now();
                let latency = completed_at.duration_since(job.arrival);
                let missed = completed_at > job.deadline;
                let degraded = !route.fits_budget || outcome.stats.memory_limited;
                let precision = outcome.stats.precision_class;
                let precision_degraded = precision != job.requested_precision;
                self.telemetry.on_completion(
                    route.kind,
                    latency,
                    degraded,
                    precision_degraded,
                    missed,
                );
                let _ = job.reply.send(Response::Ranking {
                    id: job.id,
                    backend: route.kind,
                    latency_us: latency.as_micros() as u64,
                    degraded,
                    precision,
                    ranking: outcome.ranking,
                });
            }
            Ok(Err(e)) => {
                self.telemetry.on_error();
                let _ = job.reply.send(Response::Error {
                    id: job.id,
                    message: e.to_string(),
                });
            }
            Err(panic) => {
                self.telemetry.on_error();
                self.telemetry.on_worker_panic();
                let reason = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                let _ = job.reply.send(Response::Error {
                    id: job.id,
                    message: format!("internal error: query execution panicked: {reason}"),
                });
            }
        }
    }

    /// Serves one connection: read frames, admit queries, and interleave
    /// out-of-order worker responses, until EOF or shutdown. Counts the
    /// connection as aborted when the peer dies mid-frame or with
    /// responses still owed.
    fn handle_connection(&self, mut stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(self.config.poll_interval))?;
        // Nagle's algorithm can hold small response frames hostage to the
        // peer's delayed ACK (tens of ms) — poison for a deadline-driven
        // protocol, so write eagerly.
        stream.set_nodelay(true)?;
        let (tx, rx) = mpsc::channel::<Response>();
        let mut inflight: usize = 0;
        let mut torn_frame = false;
        let result = self
            .connection_loop(&mut stream, &tx, &rx, &mut inflight, &mut torn_frame)
            .and_then(|()| stream.flush());
        // The client failed us (not the reverse) when it cut a frame
        // mid-payload or vanished while responses were owed: count it,
        // free the thread, and let stranded completions drain into the
        // dropped receiver. Workers and other connections never notice.
        if torn_frame || result.is_err() || inflight > 0 {
            self.telemetry.on_aborted_connection();
        }
        result
    }

    /// The read/admit/respond loop of one connection. On return,
    /// `inflight` holds the number of responses still owed (non-zero
    /// only on error paths) and `torn_frame` whether the peer died
    /// mid-frame.
    fn connection_loop(
        &self,
        stream: &mut TcpStream,
        tx: &mpsc::Sender<Response>,
        rx: &mpsc::Receiver<Response>,
        inflight: &mut usize,
        torn_frame: &mut bool,
    ) -> io::Result<()> {
        let mut reader = FrameReader::new();
        let mut open = true;
        loop {
            // Shutdown stops reading new frames but does NOT abandon
            // responses already owed: the workers drain queued residents
            // after the queue closes, and every admitted request must
            // still reach its client ("drained, not dropped").
            let reading = open && !self.is_shutdown();
            if !reading && *inflight == 0 {
                break;
            }
            if reading {
                match reader.read_event(stream) {
                    Ok(FrameEvent::Frame(payload)) => {
                        self.handle_frame(&payload, stream, tx, inflight)?;
                    }
                    Ok(FrameEvent::Idle) => {}
                    Ok(FrameEvent::Eof) => {
                        open = false;
                        // Bytes buffered past the last frame boundary
                        // mean the peer died mid-frame.
                        *torn_frame = reader.has_partial();
                    }
                    Err(_) => {
                        // Unframeable input (oversized length, invalid
                        // UTF-8, transport error): the peer broke the
                        // framing contract.
                        open = false;
                        *torn_frame = true;
                    }
                }
            } else {
                // EOF, read error, or shutdown, but responses still owed
                // (the peer may have half-closed): wait out the
                // stragglers. A write failure below aborts the drain, so
                // a vanished peer cannot wedge the wind-down.
                match rx.recv_timeout(self.config.poll_interval) {
                    Ok(response) => {
                        write_frame(stream, &response.encode())?;
                        *inflight -= 1;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            // Flush any completions that arrived while we were reading.
            while let Ok(response) = rx.try_recv() {
                write_frame(stream, &response.encode())?;
                *inflight -= 1;
            }
        }
        Ok(())
    }

    /// Dispatches one parsed frame.
    fn handle_frame(
        &self,
        payload: &str,
        stream: &mut TcpStream,
        tx: &mpsc::Sender<Response>,
        inflight: &mut usize,
    ) -> io::Result<()> {
        let request = match Request::parse(payload) {
            Ok(request) => request,
            Err(message) => {
                self.telemetry.on_error();
                return write_frame(stream, &Response::Error { id: 0, message }.encode());
            }
        };
        match request {
            Request::Ping => write_frame(stream, &Response::Pong.encode()),
            Request::Stats => write_frame(
                stream,
                &Response::Stats(self.telemetry().render_compact()).encode(),
            ),
            Request::Shutdown => {
                // Answer with the final snapshot, then stop the world.
                let stats = Response::Stats(self.telemetry().render_compact());
                let result = write_frame(stream, &stats.encode());
                self.shutdown();
                result
            }
            Request::Query(spec) => {
                self.admit_query(spec, tx, inflight);
                Ok(())
            }
        }
    }

    /// Admission + enqueue for one `QUERY`. All rejections flow through
    /// the connection's response channel, like completions.
    fn admit_query(&self, spec: QuerySpec, tx: &mpsc::Sender<Response>, inflight: &mut usize) {
        let mut spec = spec;
        if spec.precision.is_none() {
            spec.precision = self.config.default_precision;
        }
        let arrival = Instant::now();
        let deadline_ms = spec.deadline_ms.unwrap_or(self.config.default_deadline_ms);
        // Parsed deadlines are range-checked at the protocol layer, so
        // only a misconfigured server default can reach here non-finite
        // or oversized — saturate rather than panic in a connection
        // thread (`max` maps NaN and negatives to zero, `try_from`
        // rejects infinities and overflow).
        let remaining = Duration::try_from_secs_f64((deadline_ms / 1e3).max(0.0))
            .unwrap_or_else(|_| Duration::from_secs_f64(MAX_DEADLINE_MS / 1e3));
        let deadline = arrival + remaining;
        *inflight += 1;
        let admission = match admit(self.router, &spec.to_query_request(), remaining) {
            Ok(admission) => admission,
            Err(e) => {
                self.telemetry.on_error();
                let _ = tx.send(Response::Error {
                    id: spec.id,
                    message: e.to_string(),
                });
                return;
            }
        };
        let req = match admission {
            Admission::Admit { req, .. } => req,
            Admission::Reject { predicted_us } => {
                self.telemetry.on_unmeetable();
                let _ = tx.send(Response::Rejected {
                    id: spec.id,
                    reason: RejectReason::DeadlineUnmeetable,
                    predicted_us,
                    remaining_us: remaining.as_micros() as u64,
                });
                return;
            }
        };
        let job = Job {
            id: spec.id,
            req,
            arrival,
            deadline,
            requested_precision: spec.precision.unwrap_or_default(),
            reply: tx.clone(),
        };
        match self.queue.push(job, deadline) {
            Enqueued::Admitted => self.telemetry.on_accept(),
            Enqueued::Displaced(shed) => {
                // The incoming request was admitted by evicting the
                // resident with the most slack; that resident may belong
                // to another connection — its rejection flows through its
                // own channel.
                self.telemetry.on_accept();
                self.reject_shed(shed);
            }
            Enqueued::Refused(shed) => self.reject_shed(shed),
        }
    }

    /// Answers a load-shed job with a typed `queue-full` rejection.
    fn reject_shed(&self, shed: Job) {
        self.telemetry.on_shed();
        let remaining = shed.deadline.saturating_duration_since(Instant::now());
        let _ = shed.reply.send(Response::Rejected {
            id: shed.id,
            reason: RejectReason::QueueFull,
            predicted_us: None,
            remaining_us: remaining.as_micros() as u64,
        });
    }
}

impl std::fmt::Debug for PprServer<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PprServer")
            .field("addr", &self.local_addr)
            .field("workers", &self.config.workers)
            .field("queue_capacity", &self.config.queue_capacity)
            .field("shutdown", &self.is_shutdown())
            .finish()
    }
}
