//! Deadline-aware admission control.
//!
//! Every query enters the server with a wall-clock deadline. Admission
//! runs the same decision twice — once at the front door, once again
//! when a worker dequeues the request (the queue wait has eaten into
//! the budget by then):
//!
//! 1. Compute the **remaining** deadline budget.
//! 2. Tighten the request's latency budget to that remainder and ask
//!    [`Router::select`] for a route. The router's calibrated estimates
//!    do the degrading for us: a query that has become late-risk stops
//!    fitting the expensive backends' estimates and routes to a cheaper
//!    backend (or a `memory_limited`-style degraded plan) instead.
//! 3. If even the selected route's calibrated estimate exceeds the
//!    remainder, walk the request's **precision ladder** down one rung
//!    at a time
//!    ([`PrecisionClass::degraded`](crate::quantized::PrecisionClass::degraded))
//!    and re-route: narrower
//!    score arithmetic cheapens the staged backend's diffusion
//!    estimate, so a query that cannot make its deadline at `Exact64`
//!    may still make it at `Fast32` or `Fixed(q)`. The degraded rung
//!    rides in the admitted request's budget, so the executed class is
//!    reported honestly in stats and telemetry.
//! 4. If no rung fits either, **fail fast** with a typed rejection
//!    rather than burning a worker on a query that is already doomed —
//!    under overload, work-that-cannot-succeed is the first thing to
//!    drop.

use std::time::Duration;

use crate::backend::{QueryRequest, Route, Router};
use crate::error::Result;

/// The admission decision for one request at one instant.
#[derive(Debug)]
pub enum Admission {
    /// Enqueue (or execute) the request with its latency budget tightened
    /// to the remaining deadline; `route` is the plan the decision was
    /// based on.
    Admit {
        /// `base` with `budget.max_latency_ms` clamped to the remainder.
        req: QueryRequest,
        /// The route the router would take right now.
        route: Route,
    },
    /// No backend can meet the remaining deadline.
    Reject {
        /// The best (smallest) calibrated latency estimate, µs — absent
        /// when the deadline had already expired outright.
        predicted_us: Option<u64>,
    },
}

/// Decides whether `base` can still meet a deadline `remaining` away.
///
/// # Errors
///
/// Propagates routing errors ([`Router::select`]) — e.g. every backend
/// failed to estimate the request.
pub fn admit(router: &Router<'_>, base: &QueryRequest, remaining: Duration) -> Result<Admission> {
    let remaining_ms = remaining.as_secs_f64() * 1e3;
    if remaining_ms <= 0.0 {
        return Ok(Admission::Reject { predicted_us: None });
    }
    let mut req = *base;
    req.budget.max_latency_ms = Some(match base.budget.max_latency_ms {
        Some(user_budget) => user_budget.min(remaining_ms),
        None => remaining_ms,
    });
    let route = router.select(&req)?;
    if route.estimate.latency_ns <= remaining_ms * 1e6 {
        return Ok(Admission::Admit { req, route });
    }
    // `select` minimizes budget violations and breaks best-effort ties
    // by latency, so no registered backend predicts it can make this
    // deadline at the requested precision rung. Degrade the rung —
    // before anything shrinks ball depth — and re-route: each step
    // down cheapens the staged diffusion estimate.
    let mut best_ns = route.estimate.latency_ns;
    let mut class = req.budget.precision.unwrap_or_default();
    while let Some(next) = class.degraded() {
        class = next;
        req.budget.precision = Some(class);
        let candidate = router.select(&req)?;
        if candidate.estimate.latency_ns <= remaining_ms * 1e6 {
            return Ok(Admission::Admit {
                req,
                route: candidate,
            });
        }
        best_ns = best_ns.min(candidate.estimate.latency_ns);
    }
    Ok(Admission::Reject {
        predicted_us: Some((best_ns / 1e3).ceil() as u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{
        BackendCaps, BackendKind, CostEstimate, PprBackend, QueryOutcome, QueryStats,
    };
    use crate::quantized::PrecisionClass;
    use crate::workspace::QueryWorkspace;

    /// A stub backend whose estimate is a constant latency.
    struct Fixed {
        kind: BackendKind,
        latency_ns: f64,
    }

    impl PprBackend for Fixed {
        fn capabilities(&self) -> BackendCaps {
            BackendCaps {
                kind: self.kind,
                exact: false,
                deterministic: true,
                accelerated: false,
                batch_aware: false,
            }
        }

        fn estimate(&self, _req: &QueryRequest) -> Result<CostEstimate> {
            Ok(CostEstimate {
                latency_ns: self.latency_ns,
                peak_memory_bytes: 1,
                expected_precision: 1.0,
            })
        }

        fn query_with(
            &self,
            _req: &QueryRequest,
            _workspace: &mut QueryWorkspace,
        ) -> Result<QueryOutcome> {
            Ok(QueryOutcome {
                ranking: vec![(0, 1.0)],
                stats: QueryStats {
                    backend: self.kind,
                    stages: Vec::new(),
                    total_diffusions: 0,
                    bfs_edges_scanned: 0,
                    diffusion_edge_updates: 0,
                    random_walk_steps: 0,
                    nodes_touched: 0,
                    peak_memory_bytes: 0,
                    peak_task_memory_bytes: 0,
                    aggregate_entries: 0,
                    table_evictions: 0,
                    memory_limited: false,
                    precision_class: PrecisionClass::Exact64,
                    latency_estimate_ns: Some(self.latency_ns),
                    host_latency_ns: None,
                },
            })
        }
    }

    fn router() -> Router<'static> {
        // Without calibration the raw estimates drive admission, which
        // keeps these tests deterministic.
        Router::new()
            .with_backend(Box::new(Fixed {
                kind: BackendKind::LocalPpr,
                latency_ns: 1e6, // 1 ms
            }))
            .with_backend(Box::new(Fixed {
                kind: BackendKind::ExactPower,
                latency_ns: 5e7, // 50 ms
            }))
    }

    #[test]
    fn expired_deadlines_reject_without_routing() {
        let router = router();
        let base = QueryRequest::new(0);
        match admit(&router, &base, Duration::ZERO).unwrap() {
            Admission::Reject { predicted_us: None } => {}
            other => panic!("expected outright reject, got {other:?}"),
        }
    }

    #[test]
    fn tight_deadlines_route_to_the_cheaper_backend() {
        let router = router();
        let base = QueryRequest::new(0);
        // 10 ms of slack: the 50 ms backend no longer fits, the 1 ms one
        // does.
        match admit(&router, &base, Duration::from_millis(10)).unwrap() {
            Admission::Admit { req, route } => {
                assert_eq!(route.kind, BackendKind::LocalPpr);
                assert!(route.fits_budget);
                assert_eq!(req.budget.max_latency_ms, Some(10.0));
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn unmeetable_deadlines_fail_fast_with_the_estimate() {
        let router = router();
        let base = QueryRequest::new(0);
        // 0.1 ms of slack: even the 1 ms backend cannot make it.
        match admit(&router, &base, Duration::from_micros(100)).unwrap() {
            Admission::Reject {
                predicted_us: Some(us),
            } => assert_eq!(us, 1_000),
            other => panic!("expected predicted reject, got {other:?}"),
        }
    }

    /// A stub whose estimate honours the precision rung's diffusion
    /// discount, like the staged backend does.
    struct Laddered {
        latency_ns: f64,
    }

    impl PprBackend for Laddered {
        fn capabilities(&self) -> BackendCaps {
            BackendCaps {
                kind: BackendKind::Meloppr,
                exact: false,
                deterministic: true,
                accelerated: false,
                batch_aware: false,
            }
        }

        fn estimate(&self, req: &QueryRequest) -> Result<CostEstimate> {
            let class = req.budget.precision.unwrap_or_default();
            Ok(CostEstimate {
                latency_ns: self.latency_ns * class.diffusion_cost_factor(),
                peak_memory_bytes: 1,
                expected_precision: class.precision_factor(),
            })
        }

        fn query_with(&self, req: &QueryRequest, ws: &mut QueryWorkspace) -> Result<QueryOutcome> {
            let fixed = Fixed {
                kind: BackendKind::Meloppr,
                latency_ns: self.latency_ns,
            };
            let mut outcome = fixed.query_with(req, ws)?;
            outcome.stats.precision_class = req.budget.precision.unwrap_or_default();
            Ok(outcome)
        }
    }

    #[test]
    fn tight_deadline_degrades_precision_before_rejecting() {
        let router = Router::new().with_backend(Box::new(Laddered {
            latency_ns: 1e7, /* 10 ms */
        }));
        let base = QueryRequest::new(0);
        // 9 ms of slack: Exact64 predicts 10 ms (over), Fast32 predicts
        // 8 ms (fits) — the ladder admits at the degraded rung instead
        // of fail-fasting.
        match admit(&router, &base, Duration::from_millis(9)).unwrap() {
            Admission::Admit { req, route } => {
                assert_eq!(req.budget.precision, Some(PrecisionClass::Fast32));
                assert!(route.estimate.latency_ns <= 9e6);
            }
            other => panic!("expected degraded admit, got {other:?}"),
        }
        // 5 ms of slack: even the cheapest rung predicts 8 ms — reject,
        // reporting the best (smallest) estimate seen on the ladder.
        match admit(&router, &base, Duration::from_millis(5)).unwrap() {
            Admission::Reject {
                predicted_us: Some(us),
            } => assert_eq!(us, 8_000),
            other => panic!("expected reject, got {other:?}"),
        }
        // Plenty of slack: the requested rung is untouched.
        match admit(&router, &base, Duration::from_millis(50)).unwrap() {
            Admission::Admit { req, .. } => assert_eq!(req.budget.precision, None),
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn user_latency_budgets_only_ever_tighten() {
        let router = router();
        let base = QueryRequest::new(0).with_max_latency_ms(2.0);
        match admit(&router, &base, Duration::from_millis(500)).unwrap() {
            Admission::Admit { req, .. } => {
                assert_eq!(req.budget.max_latency_ms, Some(2.0));
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }
}
