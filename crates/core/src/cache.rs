//! Sub-graph caching for repeated queries ("adaptively loading only the
//! necessary sub-graphs", §IV-A) — including the concurrent sharded cache
//! that shares hot balls across batch workers.
//!
//! A PPR server answers many queries against the same graph, and popular
//! next-stage nodes (hubs) recur across queries. Re-running BFS + induced
//! extraction for them is the dominant host cost (Fig. 7's light-blue
//! bars). Under skewed real traffic the *same* hub balls recur across
//! concurrent queries too, so extracted state is most valuable when it is
//! shared by every worker serving the batch. Two caches live here:
//!
//! * [`SubgraphCache`] — the single-threaded LRU keyed by `(node, depth)`,
//!   for one engine serving queries sequentially (`&mut self`). Eviction
//!   is strict LRU with deterministic key tie-breaking.
//! * [`ConcurrentSubgraphCache`] — the serving structure: a sharded,
//!   lock-striped map of `Arc<Subgraph>` designed for N batch workers
//!   hammering it at once.
//!
//! # Concurrent design
//!
//! **Sharding / lock striping.** Entries are spread over independent
//! shards by a multiplicative hash of the key, so workers touching
//! different balls never contend on the same lock. Each shard guards its
//! map with an `RwLock`: the hit path takes only the *shared* read lock,
//! so concurrent hits proceed in parallel; the exclusive write lock is
//! held only to insert a placeholder or evict — never across an
//! extraction.
//!
//! **Singleflight extraction.** On a miss the first worker installs a
//! pending entry and performs the BFS + induced-CSR extraction *outside
//! any shard lock*; other workers missing on the same key find the
//! placeholder and block on its condvar instead of duplicating the work.
//! When the winner publishes the `Arc<Subgraph>`, every waiter receives
//! the same zero-copy handle (counted as [`CacheStats::shared`]). A hot
//! ball is therefore extracted **once** no matter how many workers race
//! for it — asserted by the concurrent-cache stress tests via the
//! extraction counter.
//!
//! **Approximate recency via per-entry atomics.** Touching an entry
//! stores a global clock stamp into its `AtomicU64` — a CLOCK-style
//! relaxed write that needs no exclusive lock, so the hit path never
//! serializes on recency bookkeeping. Eviction scans the shard for the
//! smallest `(stamp, key)` (key tie-break keeps single-threaded runs
//! reproducible); under concurrency the stamps are approximate, which is
//! exactly the CLOCK trade: cheap hits, near-LRU victims.
//!
//! **Always-on counters.** Hits, shared waits, misses, extractions and
//! evictions are relaxed atomic increments — cheap enough to leave on in
//! production, and the substrate for the batch executor's per-batch cache
//! accounting and the router's hit-rate-discounted BFS cost model.
//!
//! Both caches store [`Arc<Subgraph>`] so readers share entries without
//! copying, and both charge **zero BFS work on hits** — the whole point
//! of caching (the work counter in the `_counted` getters is the
//! adjacency entries scanned, 0 unless this call performed the BFS).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

use meloppr_graph::{bfs_ball, ExtractScratch, FastHashMap, GraphView, NodeId, Subgraph};

use crate::error::Result;

/// Cache key: the ball's seed node and BFS depth.
type CacheKey = (NodeId, u32);

struct Slot {
    sub: Arc<Subgraph>,
    last_used: u64,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("nodes", &self.sub.num_nodes())
            .field("last_used", &self.last_used)
            .finish()
    }
}

/// An LRU cache of extracted BFS-ball sub-graphs (single-threaded).
///
/// For sharing extracted balls *across* concurrent batch workers, use
/// [`ConcurrentSubgraphCache`] instead.
///
/// # Examples
///
/// ```
/// use meloppr_core::cache::SubgraphCache;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let mut cache = SubgraphCache::new(16);
/// let a = cache.get_or_extract(&g, 0, 2)?;
/// let b = cache.get_or_extract(&g, 0, 2)?; // served from cache
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SubgraphCache {
    capacity: usize,
    entries: FastHashMap<CacheKey, Slot>,
    clock: u64,
    hits: usize,
    misses: usize,
}

impl SubgraphCache {
    /// Creates a cache holding at most `capacity` sub-graphs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        SubgraphCache {
            capacity,
            entries: FastHashMap::default(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached ball around `(node, depth)`, extracting and
    /// inserting it on a miss (evicting the least-recently-used entry when
    /// full).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<Arc<Subgraph>> {
        Ok(self.get_or_extract_counted(g, node, depth)?.0)
    }

    /// As [`SubgraphCache::get_or_extract`], additionally reporting the
    /// BFS work performed (0 on hits).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_counted<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<(Arc<Subgraph>, usize)> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.entries.get_mut(&(node, depth)) {
            slot.last_used = clock;
            self.hits += 1;
            return Ok((Arc::clone(&slot.sub), 0));
        }
        self.misses += 1;
        let ball = bfs_ball(g, node, depth)?;
        let sub = Arc::new(Subgraph::extract(g, &ball)?);
        if self.entries.len() >= self.capacity {
            // O(capacity) eviction scan: capacities are modest (hundreds
            // to thousands), and extraction dwarfs the scan. Equal stamps
            // break ties by smallest key so eviction order never depends
            // on hash-map iteration order (reproducible across runs).
            if let Some(&key) = self
                .entries
                .iter()
                .min_by_key(|&(&key, slot)| (slot.last_used, key))
                .map(|(k, _)| k)
            {
                self.entries.remove(&key);
            }
        }
        self.entries.insert(
            (node, depth),
            Slot {
                sub: Arc::clone(&sub),
                last_used: clock,
            },
        );
        Ok((sub, ball.edges_scanned))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes (sum of cached sub-graph footprints).
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|s| s.sub.memory_bytes().total())
            .sum()
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Snapshot of a [`ConcurrentSubgraphCache`]'s always-on counters.
///
/// Obtained from [`ConcurrentSubgraphCache::stats`]; two snapshots bracket
/// a batch via [`CacheStats::delta_since`] (the batch executor does this
/// automatically and reports the delta in its `BatchStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served instantly from a resident entry.
    pub hits: u64,
    /// Lookups that waited on another worker's in-flight extraction and
    /// shared its result (singleflight losers — no BFS work performed).
    pub shared: u64,
    /// Lookups that performed the extraction themselves.
    pub misses: u64,
    /// Ball extractions actually executed (BFS + induced CSR). Equals
    /// `misses` in steady state; the headline number for the "hot balls
    /// extracted once" guarantee.
    pub extractions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.shared + self.misses
    }

    /// Fraction of lookups that performed **no** BFS work (hits plus
    /// singleflight shares); 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.shared) as f64 / lookups as f64
    }

    /// Counter deltas accumulated since an `earlier` snapshot.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            shared: self.shared.saturating_sub(earlier.shared),
            misses: self.misses.saturating_sub(earlier.misses),
            extractions: self.extractions.saturating_sub(earlier.extractions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// State of one cached key: pending while the winning extractor runs,
/// ready once published, failed if extraction errored (waiters then fall
/// back to extracting themselves so the error surfaces deterministically).
enum EntryState {
    Pending,
    Ready,
    Failed,
}

/// One cache slot: the singleflight rendezvous plus the CLOCK recency
/// stamp.
///
/// The published sub-graph lives in a write-once `OnceLock` so the hit
/// path is `shard read lock -> OnceLock::get -> relaxed stamp store` —
/// no exclusive lock anywhere, so concurrent hits on one hot ball never
/// serialize. The `Mutex`/`Condvar` pair is touched only by singleflight
/// losers waiting out an in-flight extraction (state `Pending`).
struct Entry {
    published: OnceLock<Arc<Subgraph>>,
    state: Mutex<EntryState>,
    ready: Condvar,
    last_used: AtomicU64,
}

impl Entry {
    fn pending(stamp: u64) -> Arc<Self> {
        Arc::new(Entry {
            published: OnceLock::new(),
            state: Mutex::new(EntryState::Pending),
            ready: Condvar::new(),
            last_used: AtomicU64::new(stamp),
        })
    }
}

struct Shard {
    map: RwLock<FastHashMap<CacheKey, Arc<Entry>>>,
}

/// What a lookup found after consulting (and possibly updating) a shard.
enum Found {
    /// The entry existed; wait for / read its state.
    Existing(Arc<Entry>),
    /// We installed the pending placeholder; we extract.
    Winner(Arc<Entry>),
}

/// A sharded, lock-striped cache of extracted BFS-ball sub-graphs shared
/// by concurrent batch workers (see the module docs for the design).
///
/// All methods take `&self`; the cache is meant to live in an
/// [`Arc`] shared by every worker serving a graph. Hot balls are
/// extracted **once** (singleflight); hits and shares return the same
/// `Arc<Subgraph>` with zero BFS work.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use meloppr_core::cache::ConcurrentSubgraphCache;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let cache = Arc::new(ConcurrentSubgraphCache::new(64));
/// let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2)?;
/// let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2)?;
/// assert!(Arc::ptr_eq(&a, &b)); // zero-copy reuse
/// assert!(work_a > 0);
/// assert_eq!(work_b, 0); // hits charge no BFS
/// assert_eq!(cache.stats().extractions, 1);
/// # Ok(())
/// # }
/// ```
pub struct ConcurrentSubgraphCache {
    shards: Box<[Shard]>,
    capacity: usize,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    shared: AtomicU64,
    misses: AtomicU64,
    extractions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ConcurrentSubgraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSubgraphCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default shard count: enough stripes that a typical worker pool
/// (≤ 16 threads) rarely collides, without fragmenting small capacities.
const DEFAULT_SHARDS: usize = 16;

impl ConcurrentSubgraphCache {
    /// Creates a cache budgeted for `capacity` sub-graphs, striped over
    /// the default shard count (clamped to `capacity`).
    ///
    /// The budget is enforced **per shard** at `ceil(capacity / shards)`
    /// entries (eviction is a shard-local decision; a global count would
    /// re-serialize the stripes), so total residency may exceed
    /// `capacity` by up to `shards - 1` entries, and a key mix that
    /// hashes one shard disproportionately hot evicts there while other
    /// stripes have room. Size `capacity` as a budget, not an exact
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS.min(capacity.max(1)))
    }

    /// As [`ConcurrentSubgraphCache::new`] with an explicit shard count
    /// (lock stripes). More shards mean less contention but a coarser
    /// per-shard capacity split (see [`ConcurrentSubgraphCache::new`] on
    /// the striped budget semantics).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        let shards: Box<[Shard]> = (0..shards)
            .map(|_| Shard {
                map: RwLock::new(FastHashMap::default()),
            })
            .collect();
        ConcurrentSubgraphCache {
            per_shard_capacity: capacity.div_ceil(shards.len()),
            shards,
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extractions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_for(&self, key: CacheKey) -> &Shard {
        // Fibonacci multiplicative hash of (node, depth); the high bits
        // decide the stripe so nearby node ids spread out.
        let mixed = ((key.0 as u64) << 32 | key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 40) as usize % self.shards.len()]
    }

    /// Returns the cached ball around `(node, depth)`, extracting it
    /// exactly once across all concurrent callers on a miss.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<Arc<Subgraph>> {
        Ok(self.get_or_extract_counted(g, node, depth)?.0)
    }

    /// As [`ConcurrentSubgraphCache::get_or_extract`], additionally
    /// reporting the BFS work performed by **this call** — 0 on hits and
    /// on singleflight shares (the winner alone is charged the scan).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_counted<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<(Arc<Subgraph>, usize)> {
        self.lookup(g, node, depth, |cache, g| {
            let ball = bfs_ball(g, node, depth)?;
            let sub = Subgraph::extract(g, &ball)?;
            cache.extractions.fetch_add(1, Ordering::Relaxed);
            Ok((sub, ball.edges_scanned))
        })
    }

    /// As [`ConcurrentSubgraphCache::get_or_extract_counted`], extracting
    /// through `scratch` on a miss so the BFS visited map, queue and ball
    /// arrays are reused across misses (the query-workspace integration
    /// used by the staged engine's shared-cache mode).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_with<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
    ) -> Result<(Arc<Subgraph>, usize)> {
        self.lookup(g, node, depth, |cache, g| {
            let out = scratch.extract_owned(g, node, depth)?;
            cache.extractions.fetch_add(1, Ordering::Relaxed);
            Ok(out)
        })
    }

    /// The shared lookup core: fast-path read, singleflight install on
    /// miss, condvar wait for in-flight extractions. `extract` runs at
    /// most once per call and **never under a shard lock**.
    fn lookup<G, F>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        extract: F,
    ) -> Result<(Arc<Subgraph>, usize)>
    where
        G: GraphView + ?Sized,
        F: FnOnce(&Self, &G) -> Result<(Subgraph, usize)>,
    {
        let key = (node, depth);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = self.shard_for(key);

        // Fast path: shared read lock only.
        let found = {
            let map = shard.map.read().expect("cache shard poisoned");
            map.get(&key).cloned()
        };
        let found = match found {
            Some(entry) => Found::Existing(entry),
            None => {
                let mut map = shard.map.write().expect("cache shard poisoned");
                match map.get(&key) {
                    // Raced with another installer between the locks.
                    Some(entry) => Found::Existing(Arc::clone(entry)),
                    None => {
                        let entry = Entry::pending(stamp);
                        map.insert(key, Arc::clone(&entry));
                        Found::Winner(entry)
                    }
                }
            }
        };

        match found {
            Found::Existing(entry) => {
                entry.last_used.store(stamp, Ordering::Relaxed);
                // Hit fast path: a published entry is read without any
                // exclusive lock (OnceLock::get is a lock-free load once
                // set), so concurrent hits on one hot ball never
                // serialize.
                if let Some(sub) = entry.published.get() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(sub), 0));
                }
                let mut state = entry.state.lock().expect("cache entry poisoned");
                loop {
                    match &*state {
                        EntryState::Ready => {
                            self.shared.fetch_add(1, Ordering::Relaxed);
                            let sub = entry.published.get().expect("ready entry published");
                            return Ok((Arc::clone(sub), 0));
                        }
                        EntryState::Pending => {
                            state = entry.ready.wait(state).expect("cache entry poisoned");
                        }
                        EntryState::Failed => {
                            // The winner's extraction errored (and it
                            // removed the entry). Reproduce the error —
                            // extraction failures are deterministic
                            // (out-of-bounds seeds), so this surfaces the
                            // same error without retry loops.
                            drop(state);
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            let (sub, work) = extract(self, g)?;
                            // Deterministic failures cannot reach here, but
                            // a success is still a valid answer: serve it
                            // without touching the map (the key was purged).
                            return Ok((Arc::new(sub), work));
                        }
                    }
                }
            }
            Found::Winner(entry) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                match extract(self, g) {
                    Ok((sub, work)) => {
                        let sub = Arc::new(sub);
                        entry
                            .published
                            .set(Arc::clone(&sub))
                            .unwrap_or_else(|_| unreachable!("only the winner publishes"));
                        {
                            let mut state = entry.state.lock().expect("cache entry poisoned");
                            *state = EntryState::Ready;
                        }
                        entry.ready.notify_all();
                        self.evict_over_capacity(shard, key);
                        Ok((sub, work))
                    }
                    Err(err) => {
                        {
                            let mut state = entry.state.lock().expect("cache entry poisoned");
                            *state = EntryState::Failed;
                        }
                        entry.ready.notify_all();
                        let mut map = shard.map.write().expect("cache shard poisoned");
                        if let Some(current) = map.get(&key) {
                            if Arc::ptr_eq(current, &entry) {
                                map.remove(&key);
                            }
                        }
                        Err(err)
                    }
                }
            }
        }
    }

    /// Evicts the least-recently-stamped **ready** entries of `shard`
    /// until it is back within its capacity share. `keep` (the key just
    /// published) and in-flight pending entries are never victims. Equal
    /// stamps break ties by smallest key for reproducible single-threaded
    /// eviction order.
    fn evict_over_capacity(&self, shard: &Shard, keep: CacheKey) {
        let mut map = shard.map.write().expect("cache shard poisoned");
        while map.len() > self.per_shard_capacity {
            let victim = map
                .iter()
                .filter(|&(&key, entry)| key != keep && entry.published.get().is_some())
                .map(|(&key, entry)| (entry.last_used.load(Ordering::Relaxed), key))
                .min();
            match victim {
                Some((_, key)) => {
                    map.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // everything else is pending or `keep`
            }
        }
    }

    /// A consistent-enough snapshot of the always-on counters (relaxed
    /// loads; exact once concurrent lookups have quiesced).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extractions: self.extractions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resident entries across all shards (ready and in-flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes (sum of ready sub-graph footprints).
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .read()
                    .expect("cache shard poisoned")
                    .values()
                    .filter_map(|entry| entry.published.get())
                    .map(|sub| sub.memory_bytes().total())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Drops every resident entry (statistics are kept). In-flight
    /// extractions complete normally; their waiters are still served.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.map.write().expect("cache shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn hit_returns_shared_arc() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(4);
        let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(work_a > 0);
        assert_eq!(work_b, 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_depths_are_distinct_entries() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(4);
        let a = cache.get_or_extract(&g, 0, 1).unwrap();
        let b = cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recent() {
        let g = generators::path(32).unwrap();
        let mut cache = SubgraphCache::new(2);
        cache.get_or_extract(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 1, 1).unwrap();
        // Touch node 0 so node 1 becomes the LRU victim.
        cache.get_or_extract(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 2, 1).unwrap(); // evicts (1, 1)
        assert_eq!(cache.len(), 2);
        let before = cache.misses();
        cache.get_or_extract(&g, 0, 1).unwrap(); // still cached
        assert_eq!(cache.misses(), before);
        cache.get_or_extract(&g, 1, 1).unwrap(); // was evicted
        assert_eq!(cache.misses(), before + 1);
    }

    #[test]
    fn lru_ties_break_by_smallest_key() {
        // Two entries with *equal* recency stamps cannot exist in the
        // sequential cache (the clock ticks per lookup), but the ordering
        // contract still holds: with distinct stamps the older entry goes;
        // the key tie-break is exercised through the comparator directly.
        let a = ((3u32, 1u32), 5u64);
        let b = ((1u32, 1u32), 5u64);
        let c = ((2u32, 1u32), 4u64);
        let victim = [a, b, c]
            .into_iter()
            .min_by_key(|&(key, stamp)| (stamp, key));
        assert_eq!(victim, Some(c)); // oldest stamp wins first…
        let victim = [a, b].into_iter().min_by_key(|&(key, stamp)| (stamp, key));
        assert_eq!(victim, Some(b)); // …then the smallest key
    }

    #[test]
    fn resident_bytes_and_clear() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(8);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1); // stats survive clear
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SubgraphCache::new(0);
    }

    #[test]
    fn errors_propagate() {
        let g = generators::path(3).unwrap();
        let mut cache = SubgraphCache::new(2);
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn concurrent_hits_share_one_extraction() {
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(16);
        let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(work_a > 0);
        assert_eq!(work_b, 0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.extractions), (1, 1, 1));
        assert_eq!(stats.lookups(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_fresh_extraction_bit_for_bit() {
        let g = generators::grid(7, 5).unwrap();
        let cache = ConcurrentSubgraphCache::new(8);
        for (seed, depth) in [(0u32, 2), (17, 3), (34, 1), (5, 0)] {
            let cached = cache.get_or_extract(&g, seed, depth).unwrap();
            let ball = meloppr_graph::bfs_ball(&g, seed, depth).unwrap();
            let fresh = Subgraph::extract(&g, &ball).unwrap();
            assert_eq!(cached.global_ids(), fresh.global_ids());
            assert_eq!(cached.num_edges(), fresh.num_edges());
            for local in 0..fresh.num_nodes() as NodeId {
                assert_eq!(cached.neighbors(local), fresh.neighbors(local));
                assert_eq!(cached.walk_degree(local), fresh.walk_degree(local));
            }
        }
    }

    #[test]
    fn scratch_extraction_matches_plain() {
        let g = generators::grid(6, 6).unwrap();
        let plain = ConcurrentSubgraphCache::new(8);
        let scratched = ConcurrentSubgraphCache::new(8);
        let mut scratch = ExtractScratch::new();
        for (seed, depth) in [(14u32, 2), (0, 1), (35, 3)] {
            let (a, wa) = plain.get_or_extract_counted(&g, seed, depth).unwrap();
            let (b, wb) = scratched
                .get_or_extract_with(&g, seed, depth, &mut scratch)
                .unwrap();
            assert_eq!(wa, wb);
            assert_eq!(a.global_ids(), b.global_ids());
            assert_eq!(a.num_edges(), b.num_edges());
        }
        assert_eq!(plain.stats(), scratched.stats());
    }

    #[test]
    fn eviction_respects_capacity_and_counts() {
        let g = generators::path(64).unwrap();
        // One shard so the capacity bound is exact.
        let cache = ConcurrentSubgraphCache::with_shards(4, 1);
        for seed in 0..8u32 {
            cache.get_or_extract(&g, seed, 1).unwrap();
        }
        assert!(cache.len() <= 4);
        let stats = cache.stats();
        assert_eq!(stats.extractions, 8);
        assert_eq!(stats.evictions, 4);
        // The most recent entry survived.
        cache.get_or_extract(&g, 7, 1).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn errors_propagate_and_leave_no_residue() {
        let g = generators::path(3).unwrap();
        let cache = ConcurrentSubgraphCache::new(4);
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
        assert!(cache.is_empty());
        // The failed key is re-attempted (and fails again) rather than
        // poisoning the cache.
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
        let ok = cache.get_or_extract(&g, 1, 1);
        assert!(ok.is_ok());
    }

    #[test]
    fn clear_keeps_stats_and_stays_usable() {
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(8);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().extractions, 1);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert_eq!(cache.stats().extractions, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ConcurrentSubgraphCache::new(0);
    }

    #[test]
    fn shard_count_clamped_and_reported() {
        let cache = ConcurrentSubgraphCache::new(4);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.capacity(), 4);
        let wide = ConcurrentSubgraphCache::with_shards(1024, 32);
        assert_eq!(wide.shard_count(), 32);
        assert!(format!("{wide:?}").contains("ConcurrentSubgraphCache"));
    }
}

#[cfg(test)]
mod engine_integration_tests {
    use super::*;
    use crate::{MelopprEngine, MelopprParams, PprParams, SelectionStrategy};
    use meloppr_graph::generators::corpus::PaperGraph;

    #[test]
    fn cached_query_matches_uncached_and_saves_bfs() {
        let g = PaperGraph::G2Cora.generate_scaled(0.2, 3).unwrap();
        let params = MelopprParams {
            ppr: PprParams::new(0.85, 6, 30).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.1),
            ..MelopprParams::paper_defaults()
        };
        let engine = MelopprEngine::new(&g, params).unwrap();
        let mut cache = SubgraphCache::new(512);

        let plain = engine.query(7).unwrap();
        let first = engine.query_cached_impl(7, &mut cache).unwrap();
        assert_eq!(first.ranking, plain.ranking);
        assert_eq!(first.stats.bfs_edges_scanned, plain.stats.bfs_edges_scanned);

        // Second identical query: all sub-graphs served from cache.
        let second = engine.query_cached_impl(7, &mut cache).unwrap();
        assert_eq!(second.ranking, plain.ranking);
        assert_eq!(second.stats.bfs_edges_scanned, 0);
        assert!(cache.hits() >= plain.stats.total_diffusions);

        // A nearby query shares hub sub-graphs: strictly less BFS work.
        let third = engine.query_cached_impl(8, &mut cache).unwrap();
        let fresh = engine.query(8).unwrap();
        assert_eq!(third.ranking, fresh.ranking);
        assert!(third.stats.bfs_edges_scanned <= fresh.stats.bfs_edges_scanned);
    }
}
