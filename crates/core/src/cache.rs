//! Sub-graph caching for repeated queries ("adaptively loading only the
//! necessary sub-graphs", §IV-A) — one concurrent core, governed by
//! **byte-denominated budgets**.
//!
//! A PPR server answers many queries against the same graph, and popular
//! next-stage nodes (hubs) recur across queries. Re-running BFS + induced
//! extraction for them is the dominant host cost (Fig. 7's light-blue
//! bars). Under skewed real traffic the *same* hub balls recur across
//! concurrent queries too, so extracted state is most valuable when it is
//! shared by every worker serving the batch. One cache core lives here:
//!
//! * [`ConcurrentSubgraphCache`] — the serving structure: a sharded,
//!   lock-striped map of `Arc<Subgraph>` designed for N batch workers
//!   hammering it at once.
//! * [`SubgraphCache`] — the single-threaded owned facade keyed by the
//!   same `(node, depth)` keys, for one engine serving queries
//!   sequentially (`&mut self`). It is a thin wrapper over a
//!   single-shard concurrent core plus a private [`CacheConsumer`], so
//!   eviction, windows, byte budgets and admission share **one** code
//!   path with the serving cache (strict LRU with deterministic key
//!   tie-breaking falls out of the single-shard configuration).
//!
//! # Byte-denominated capacity
//!
//! MELOPPR's claim is *memory*-efficient PPR, so capacity is governed in
//! bytes, not entry counts: a 50k-node hub ball and a 12-node leaf ball
//! are not the same cost. A [`CacheBudget`] bounds resident entries
//! and/or resident bytes (each ball is charged its measured
//! `Subgraph::memory_bytes().total()` at admission time); both bounds are
//! maintained by **global atomic counters with CAS reservation**, so the
//! cache never exceeds a configured budget — not per shard, not
//! transiently, not under concurrent inserts. (The previous design split
//! the entry budget `ceil(capacity / shards)` per shard, over-admitting
//! by up to `shards - 1` entries; the global counters close that hole.)
//! Admission reserves budget *before* an entry becomes resident, evicting
//! the least-recently-used published entries — across all shards — until
//! the candidate fits; a candidate larger than the whole byte budget is
//! rejected outright (served, never resident).
//!
//! # Concurrent design
//!
//! **Sharding / lock striping.** Entries are spread over independent
//! shards by a multiplicative hash of the key, so workers touching
//! different balls never contend on the same lock. Each shard guards its
//! map with an `RwLock`: the hit path takes only the *shared* read lock,
//! so concurrent hits proceed in parallel; the exclusive write lock is
//! held only to insert a placeholder, publish, or evict — never across an
//! extraction.
//!
//! **Singleflight extraction.** On a miss the first worker installs a
//! pending entry and performs the BFS + induced-CSR extraction *outside
//! any shard lock*; other workers missing on the same key find the
//! placeholder and block on its condvar instead of duplicating the work.
//! When the winner publishes the `Arc<Subgraph>`, every waiter receives
//! the same zero-copy handle (counted as [`CacheStats::shared`]). A hot
//! ball is therefore extracted **once** no matter how many workers race
//! for it — asserted by the concurrent-cache stress tests via the
//! extraction counter.
//!
//! **Approximate recency via per-entry atomics.** Touching an entry
//! stores a global clock stamp into its `AtomicU64` — a CLOCK-style
//! relaxed write that needs no exclusive lock, so the hit path never
//! serializes on recency bookkeeping. Eviction scans the shard for the
//! smallest `(stamp, key)` (key tie-break keeps single-threaded runs
//! reproducible); under concurrency the stamps are approximate, which is
//! exactly the CLOCK trade: cheap hits, near-LRU victims.
//!
//! # Telemetry: consumers, windows, admission
//!
//! **Global counters.** Hits, shared waits, misses, extractions,
//! evictions and rejected admissions are relaxed atomic increments —
//! cheap enough to leave on in production. They describe the *cache as a
//! whole* and are the right numbers for capacity planning.
//!
//! **Per-consumer attribution.** One cache is typically shared by several
//! independent consumers — two `BatchExecutor`s, a router's staged
//! backend plus a warming job, several backends over the same graph.
//! Global counter deltas cannot tell their traffic apart, so every
//! demand-lookup path also takes a [`CacheConsumer`] handle: a bundle of
//! per-consumer atomic hit/shared/miss/extraction counters
//! ([`ConsumerStats`]) plus two *recency-weighted* hit rates — an EWMA
//! over recent lookups ([`CacheConsumer::decayed_hit_rate`]) and an exact
//! fixed-size sliding window ([`CacheConsumer::windowed_hit_rate`]).
//! The batch executor brackets each batch with *its backend's consumer*
//! delta, so two executors hammering one cache report exactly their own
//! lookups, and the staged backend's `estimate()` discounts predicted
//! BFS by the windowed rate — which tracks traffic shifts within one
//! window instead of staying optimistic on the lifetime average.
//!
//! **Warming.** [`ConcurrentSubgraphCache::warm`] pre-extracts a ball
//! without counting a hit or a miss anywhere (only the physical
//! `extractions` counter ticks), so cache warm-up never deflates any
//! consumer's observed hit rate. Warming respects a size-based
//! [`AdmissionPolicy`] budget but bypasses its frequency gate (an
//! explicit warm *is* the admission decision).
//!
//! **Admission control.** A giant one-off ball can evict the hot hub
//! balls that make the cache worthwhile. [`AdmissionPolicy`] decides,
//! after extraction, whether the ball becomes resident: `Always`,
//! `MaxNodes(n)` (never admit balls over `n` nodes), `FrequencyGated(n)`
//! (admit over-budget balls only once their key has been seen at least
//! twice), or the TinyLFU-style `FrequencyVsVictim` (when admission
//! requires an eviction, admit only if the candidate's sketch frequency
//! beats the would-be victim's — following Einziger et al.'s
//! frequency-vs-victim rule, so a cold ball can never displace a hotter
//! resident). Rejected balls are still returned to the caller (and
//! shared with any singleflight waiters) — they just never enter the
//! map, so they can never evict an admitted entry. Rejections are
//! counted in [`CacheStats::rejected_admissions`] and per consumer.
//!
//! # The cold tier: a persisted ball index below RAM
//!
//! A byte-budgeted cache eventually faces graphs whose hot ball set does
//! not fit in RAM at all. Attaching a persisted
//! [`BallIndex`] via
//! [`ConcurrentSubgraphCache::with_cold_tier`] adds a disk tier below the
//! RAM tier: a RAM miss whose `(node, depth)` ball is in the index is
//! served by **one positioned read** (`read_exact_at` into a pooled,
//! caller-owned buffer — no mmap, no `unsafe`), decoded from the compact
//! wire form, re-represented per the configured [`BallStore`] (under the
//! default `Full` store the record is inflated back into a full
//! [`Subgraph`] so disk-served answers stay **bit-identical** to
//! BFS-served ones; under `Compact` the wire form is the resident form)
//! and admitted through the same [`AdmissionPolicy`]/[`CacheBudget`]
//! gates as a fresh extraction. Live BFS remains the fallback whenever the index lacks the
//! node or depth, or the read/decode fails — the cold tier is an
//! accelerator, never a correctness dependency. Cold traffic is counted
//! separately ([`CacheStats::cold_hits`], [`CacheStats::cold_bytes_read`],
//! [`CacheStats::cold_fallbacks`], and per consumer) so the staged
//! backend's `estimate()` can price a cold hit between a RAM hit and a
//! BFS miss. The on-disk file format is documented in
//! [`ballindex`](crate::ballindex).
//!
//! Both cache facades store [`Arc<Subgraph>`] so readers share entries
//! without copying, and both charge **zero BFS work on hits** — the
//! whole point of caching (the work counter in the `_counted` getters is
//! the adjacency entries scanned, 0 unless this call performed the BFS).

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

use meloppr_graph::{bfs_ball, ExtractScratch, FastHashMap, GraphView, NodeId, Subgraph};

use crate::ballindex::BallIndex;
use crate::error::Result;
use crate::quantized::CompactBall;

/// Cache key: the ball's seed node and BFS depth.
type CacheKey = (NodeId, u32);

/// How a cache stores resident balls.
///
/// The default [`BallStore::Full`] keeps the extracted [`Subgraph`]s
/// themselves — zero-copy hits, bit-identical to fresh extraction.
/// [`BallStore::Compact`] is the precision ladder's memory rung: it
/// stores residents as [`CompactBall`]s (`u16` local adjacency, no
/// global→local map) at roughly **half** the bytes, so the same
/// [`CacheBudget::bytes`] holds ~2× more balls (asserted ≥ 1.5× by the
/// fig5 ladder section). Compact residents are served to the staged
/// engine's ball-aware lookups and diffused by the dense quantized
/// kernel; legacy full-ball getters hitting a compact resident fall back
/// to a fresh extraction (only reachable when compaction was explicitly
/// opted into).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BallStore {
    /// Residents are full [`Subgraph`]s (default).
    #[default]
    Full,
    /// Residents are compacted to [`CompactBall`]s when the ball fits
    /// `u16` local ids (≤ 65 536 nodes); oversized balls stay full.
    Compact,
}

/// A resident ball in whichever representation the [`BallStore`] chose.
#[derive(Debug, Clone)]
pub enum CachedBall {
    /// The full extracted sub-graph.
    Full(Arc<Subgraph>),
    /// The reduced-width representation (see [`CompactBall`]).
    Compact(Arc<CompactBall>),
}

impl CachedBall {
    /// Nodes in the ball.
    pub fn num_nodes(&self) -> usize {
        match self {
            CachedBall::Full(sub) => sub.num_nodes(),
            CachedBall::Compact(ball) => ball.global_ids().len(),
        }
    }

    /// Measured heap bytes of this representation — what a byte-budgeted
    /// cache charges the resident.
    pub fn memory_bytes_total(&self) -> usize {
        match self {
            CachedBall::Full(sub) => sub.memory_bytes().total(),
            CachedBall::Compact(ball) => ball.memory_bytes_total(),
        }
    }
}

/// Resident-capacity bounds of a sub-graph cache, denominated in entries
/// and/or **bytes**.
///
/// Every bound set is enforced globally (one atomic counter per bound,
/// reserved before an entry becomes resident), so a budgeted cache never
/// holds more than `entries` balls nor more than `bytes` measured bytes
/// of sub-graph storage — even under concurrent inserts across shards.
/// `None` leaves a dimension unbounded; both `None` is a fully unbounded
/// cache.
///
/// # Examples
///
/// ```
/// use meloppr_core::cache::CacheBudget;
///
/// let b = CacheBudget::bytes(64 << 20).with_entries(4096);
/// assert_eq!(b.bytes, Some(64 << 20));
/// assert_eq!(b.entries, Some(4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBudget {
    /// Maximum resident entries (balls), `None` = unbounded.
    pub entries: Option<usize>,
    /// Maximum resident bytes (sum of each resident ball's
    /// `Subgraph::memory_bytes().total()`), `None` = unbounded.
    pub bytes: Option<usize>,
}

impl CacheBudget {
    /// A budget with no bounds at all.
    pub fn unbounded() -> Self {
        CacheBudget::default()
    }

    /// An entry-count budget (the legacy denomination).
    pub fn entries(entries: usize) -> Self {
        CacheBudget {
            entries: Some(entries),
            bytes: None,
        }
    }

    /// A byte budget (the paper-faithful denomination).
    pub fn bytes(bytes: usize) -> Self {
        CacheBudget {
            entries: None,
            bytes: Some(bytes),
        }
    }

    /// Adds/overrides the entry bound (builder style).
    #[must_use]
    pub fn with_entries(mut self, entries: usize) -> Self {
        self.entries = Some(entries);
        self
    }

    /// Adds/overrides the byte bound (builder style).
    #[must_use]
    pub fn with_bytes(mut self, bytes: usize) -> Self {
        self.bytes = Some(bytes);
        self
    }
}

/// An LRU cache of extracted BFS-ball sub-graphs (single-threaded owned
/// facade).
///
/// This is a thin wrapper over a **single-shard**
/// [`ConcurrentSubgraphCache`] plus a private [`CacheConsumer`]: the
/// eviction scan, byte budget, admission policy and hit-rate window are
/// literally the concurrent cache's — one code path, two facades. With a
/// single shard and single-threaded use the clock stamps are a strict
/// LRU order with deterministic smallest-key tie-breaking, exactly the
/// old owned semantics.
///
/// For sharing extracted balls *across* concurrent batch workers, use
/// [`ConcurrentSubgraphCache`] directly.
///
/// # Examples
///
/// ```
/// use meloppr_core::cache::SubgraphCache;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let mut cache = SubgraphCache::new(16);
/// let a = cache.get_or_extract(&g, 0, 2)?;
/// let b = cache.get_or_extract(&g, 0, 2)?; // served from cache
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SubgraphCache {
    core: ConcurrentSubgraphCache,
    consumer: CacheConsumer,
}

impl SubgraphCache {
    /// Creates a cache holding at most `capacity` sub-graphs, with the
    /// default [`DEFAULT_HIT_WINDOW`]-lookup hit-rate window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_window(capacity, DEFAULT_HIT_WINDOW)
    }

    /// As [`SubgraphCache::new`] with an explicit sliding-window size for
    /// [`SubgraphCache::recent_hit_rate`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `window == 0`.
    pub fn with_window(capacity: usize, window: usize) -> Self {
        Self::with_budget(CacheBudget::entries(capacity), window)
    }

    /// An owned cache governed by an arbitrary [`CacheBudget`] — byte
    /// bounds work exactly as on the concurrent cache (same core).
    ///
    /// # Panics
    ///
    /// Panics if a budget bound or `window` is zero.
    pub fn with_budget(budget: CacheBudget, window: usize) -> Self {
        SubgraphCache {
            core: ConcurrentSubgraphCache::with_budget_and_shards(budget, 1),
            consumer: CacheConsumer::new(window),
        }
    }

    /// Sets the [`AdmissionPolicy`] (builder style), as
    /// [`ConcurrentSubgraphCache::with_admission`].
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.core = self.core.with_admission(policy);
        self
    }

    /// Sets the resident-ball representation (builder style), as
    /// [`ConcurrentSubgraphCache::with_ball_store`].
    #[must_use]
    pub fn with_ball_store(mut self, store: BallStore) -> Self {
        self.core = self.core.with_ball_store(store);
        self
    }

    /// Attaches a persisted ball index as the cold tier (builder style),
    /// as [`ConcurrentSubgraphCache::with_cold_tier`].
    #[must_use]
    pub fn with_cold_tier(mut self, index: Arc<BallIndex>) -> Self {
        self.core = self.core.with_cold_tier(index);
        self
    }

    /// Resizes the hit-rate window, discarding its current contents
    /// (cumulative counters are kept).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn set_window(&mut self, window: usize) {
        self.consumer.resize_window(window);
    }

    /// Returns the cached ball around `(node, depth)`, extracting and
    /// inserting it on a miss (evicting least-recently-used entries until
    /// the budget holds it).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<Arc<Subgraph>> {
        Ok(self.get_or_extract_counted(g, node, depth)?.0)
    }

    /// As [`SubgraphCache::get_or_extract`], additionally reporting the
    /// BFS work performed (0 on hits).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_counted<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<(Arc<Subgraph>, usize)> {
        self.core
            .get_or_extract_counted_as(g, node, depth, &self.consumer)
    }

    /// As [`SubgraphCache::get_or_extract_counted`], extracting through
    /// `scratch` on a miss so BFS bookkeeping buffers are reused.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_with<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
    ) -> Result<(Arc<Subgraph>, usize)> {
        self.core
            .get_or_extract_with_as(g, node, depth, scratch, &self.consumer)
    }

    /// Ball-representation lookup, as
    /// [`ConcurrentSubgraphCache::get_ball_with_as`]: a compact resident
    /// is served as-is instead of being re-extracted.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_ball_with<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
        cold_buf: &mut Vec<u8>,
    ) -> Result<(CachedBall, usize)> {
        self.core
            .get_ball_with_as(g, node, depth, scratch, cold_buf, &self.consumer)
    }

    /// Ball-representation probe, as
    /// [`ConcurrentSubgraphCache::probe_ball_with_as`].
    pub(crate) fn probe_ball_with<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
        cold_buf: &mut Vec<u8>,
    ) -> Result<(CachedBall, usize)> {
        self.core
            .probe_ball_with_as(g, node, depth, scratch, cold_buf, &self.consumer)
    }

    /// Admits an already-extracted ball (see
    /// [`ConcurrentSubgraphCache::admit_extracted`]).
    pub(crate) fn admit_extracted(&mut self, node: NodeId, depth: u32, sub: &Arc<Subgraph>) {
        self.core
            .admit_extracted(node, depth, sub, Some(&self.consumer));
    }

    /// Admits a cold-served compact ball (see
    /// [`ConcurrentSubgraphCache::admit_cached`]).
    pub(crate) fn admit_cached(&mut self, node: NodeId, depth: u32, ball: &CachedBall) {
        self.core
            .admit_cached(node, depth, ball, Some(&self.consumer));
    }

    /// Pre-extracts the ball around `(node, depth)` into the cache
    /// **without counting a lookup**: neither the hit/miss counters nor
    /// the sliding window move, so warming never deflates the observed
    /// hit rate that routing reads. Already-resident keys are left
    /// untouched (their recency is not bumped — warming is not demand).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction.
    pub fn warm<G: GraphView + ?Sized>(&mut self, g: &G, node: NodeId, depth: u32) -> Result<()> {
        self.core.warm(g, node, depth)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.consumer.stats().hits as usize
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.consumer.stats().misses as usize
    }

    /// Hit fraction of the last `window` lookups (exact over the sliding
    /// window configured at construction; 0.0 before any lookup).
    /// Warm-ups ([`SubgraphCache::warm`]) are not lookups and do not
    /// appear here.
    pub fn recent_hit_rate(&self) -> f64 {
        self.consumer.windowed_hit_rate()
    }

    /// This cache's cumulative per-consumer counters (including the
    /// cold-tier breakdown), as [`CacheConsumer::stats`].
    pub fn consumer_stats(&self) -> ConsumerStats {
        self.consumer.stats()
    }

    /// The configured budget.
    pub fn budget(&self) -> CacheBudget {
        self.core.budget()
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// Resident bytes (the exact global counter: sum of each resident
    /// ball's measured footprint).
    pub fn resident_bytes(&self) -> usize {
        self.core.resident_bytes()
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.core.clear();
    }
}

/// Snapshot of a [`ConcurrentSubgraphCache`]'s always-on **global**
/// counters.
///
/// Obtained from [`ConcurrentSubgraphCache::stats`]. These describe the
/// cache as a whole; when several consumers share one cache, use each
/// consumer's [`ConsumerStats`] (via [`CacheConsumer::stats`]) for
/// attribution — a global delta mixes every consumer's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served instantly from a resident entry.
    pub hits: u64,
    /// Lookups that waited on another worker's in-flight extraction and
    /// shared its result (singleflight losers — no BFS work performed).
    pub shared: u64,
    /// Lookups that performed the extraction themselves.
    pub misses: u64,
    /// Ball extractions actually executed (BFS + induced CSR), including
    /// warm-ups. Equals `misses` in steady state without warming; the
    /// headline number for the "hot balls extracted once" guarantee.
    pub extractions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Extracted balls the [`AdmissionPolicy`] refused to make resident
    /// (served to the caller, never inserted).
    pub rejected_admissions: u64,
    /// RAM misses served from the cold tier (one positioned index read,
    /// no BFS). A subset of `misses`: every cold hit is still a RAM miss.
    pub cold_hits: u64,
    /// Bytes read from the cold-tier index by those cold hits.
    pub cold_bytes_read: u64,
    /// RAM misses that consulted a configured cold tier and fell back to
    /// live BFS (index lacked the node/depth, or the read/decode failed).
    pub cold_fallbacks: u64,
}

impl CacheStats {
    /// Total lookups observed (warm-ups are not lookups).
    pub fn lookups(&self) -> u64 {
        self.hits + self.shared + self.misses
    }

    /// Fraction of lookups that performed **no** BFS work (hits plus
    /// singleflight shares); 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.shared) as f64 / lookups as f64
    }

    /// Counter deltas accumulated since an `earlier` snapshot.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            shared: self.shared.saturating_sub(earlier.shared),
            misses: self.misses.saturating_sub(earlier.misses),
            extractions: self.extractions.saturating_sub(earlier.extractions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            rejected_admissions: self
                .rejected_admissions
                .saturating_sub(earlier.rejected_admissions),
            cold_hits: self.cold_hits.saturating_sub(earlier.cold_hits),
            cold_bytes_read: self.cold_bytes_read.saturating_sub(earlier.cold_bytes_read),
            cold_fallbacks: self.cold_fallbacks.saturating_sub(earlier.cold_fallbacks),
        }
    }
}

/// Snapshot of one [`CacheConsumer`]'s counters: the lookups *this*
/// consumer issued against a shared cache, and nothing else.
///
/// Two snapshots bracket a batch via [`ConsumerStats::delta_since`] (the
/// batch executor does this automatically for the backend's consumer and
/// reports the delta in its `BatchStats::cache`). Unlike [`CacheStats`],
/// there is no eviction counter — eviction is a cache-global event that
/// cannot be attributed to one consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConsumerStats {
    /// Lookups served instantly from a resident entry.
    pub hits: u64,
    /// Lookups that shared another worker's in-flight extraction.
    pub shared: u64,
    /// Lookups that performed the extraction themselves.
    pub misses: u64,
    /// Ball extractions this consumer's lookups executed.
    pub extractions: u64,
    /// Extractions whose ball the [`AdmissionPolicy`] refused to admit.
    pub rejected_admissions: u64,
    /// This consumer's RAM misses served from the cold tier (a subset of
    /// `misses` — no BFS ran, one positioned index read did).
    pub cold_hits: u64,
    /// Bytes this consumer's cold hits read from the index.
    pub cold_bytes_read: u64,
    /// This consumer's RAM misses that consulted the cold tier and fell
    /// back to live BFS.
    pub cold_fallbacks: u64,
}

impl ConsumerStats {
    /// Total lookups this consumer issued.
    pub fn lookups(&self) -> u64 {
        self.hits + self.shared + self.misses
    }

    /// Fraction of this consumer's lookups served without BFS work
    /// (cumulative lifetime average; 0.0 before any lookup). For routing
    /// decisions prefer [`CacheConsumer::windowed_hit_rate`], which
    /// tracks traffic shifts.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.shared) as f64 / lookups as f64
    }

    /// Counter deltas accumulated since an `earlier` snapshot.
    pub fn delta_since(&self, earlier: &ConsumerStats) -> ConsumerStats {
        ConsumerStats {
            hits: self.hits.saturating_sub(earlier.hits),
            shared: self.shared.saturating_sub(earlier.shared),
            misses: self.misses.saturating_sub(earlier.misses),
            extractions: self.extractions.saturating_sub(earlier.extractions),
            rejected_admissions: self
                .rejected_admissions
                .saturating_sub(earlier.rejected_admissions),
            cold_hits: self.cold_hits.saturating_sub(earlier.cold_hits),
            cold_bytes_read: self.cold_bytes_read.saturating_sub(earlier.cold_bytes_read),
            cold_fallbacks: self.cold_fallbacks.saturating_sub(earlier.cold_fallbacks),
        }
    }
}

impl From<CacheStats> for ConsumerStats {
    /// Reinterprets a **global** counter snapshot as consumer-shaped
    /// stats (dropping the eviction counter). Used only as the batch
    /// executor's fallback for backends that expose a shared cache but no
    /// consumer handle — such deltas mix every consumer's traffic.
    fn from(stats: CacheStats) -> Self {
        ConsumerStats {
            hits: stats.hits,
            shared: stats.shared,
            misses: stats.misses,
            extractions: stats.extractions,
            rejected_admissions: stats.rejected_admissions,
            cold_hits: stats.cold_hits,
            cold_bytes_read: stats.cold_bytes_read,
            cold_fallbacks: stats.cold_fallbacks,
        }
    }
}

/// A [`CacheConsumer`]'s complete persistable state: cumulative
/// attribution counters, the EWMA hit rate, and the sliding window's
/// recent lookup outcomes (oldest first, `true` = served without BFS).
///
/// Exported with [`CacheConsumer::export_state`] and re-applied with
/// [`CacheConsumer::restore_state`], this is what lets a restarted
/// serving process begin with *warm* hit-rate estimates — the staged
/// backend's `estimate()` discounts BFS by the windowed rate, so a cold
/// window makes the router pessimistic about cached backends for a full
/// window after every restart. The on-disk encoding lives in
/// [`backend::persist`](crate::backend::persist).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConsumerState {
    /// Cumulative attribution counters.
    pub stats: ConsumerStats,
    /// The decayed (EWMA) hit rate, `None` before any lookup.
    pub ewma: Option<f64>,
    /// Window outcomes, oldest first (`true` = hit or shared).
    pub window: Vec<bool>,
}

/// Default sliding-window length (lookups) for windowed hit rates.
pub const DEFAULT_HIT_WINDOW: usize = 256;

/// Ring-buffer slot sentinel: no lookup recorded yet.
const WINDOW_EMPTY: u8 = 2;
/// Ring-buffer slot: lookup served without BFS work (hit or share).
const WINDOW_FREE: u8 = 1;
/// Ring-buffer slot: lookup paid for the extraction (miss).
const WINDOW_MISS: u8 = 0;

/// EWMA sentinel bit pattern: no sample yet (a NaN no update produces).
const EWMA_UNSET: u64 = u64::MAX;

/// One consumer's identity on a shared [`ConcurrentSubgraphCache`]:
/// attribution counters plus recency-weighted hit rates.
///
/// Create one per logical consumer (per backend, per executor, per
/// warming job) and pass it to the `*_as` lookup methods; the cache
/// updates the consumer's counters alongside its own global ones. All
/// state is atomic, so one consumer handle may be shared by the worker
/// threads serving that consumer (e.g. every worker of one batch
/// executor) — *that* traffic is one consumer by definition.
///
/// Two rates are maintained over this consumer's lookups:
///
/// * [`CacheConsumer::windowed_hit_rate`] — exact over the last `window`
///   lookups (a ring buffer). Converges within one window after a
///   traffic shift; the staged backend's `estimate()` uses this.
/// * [`CacheConsumer::decayed_hit_rate`] — an EWMA with time constant
///   `window` (`λ = 1/window`), smoother and cheaper to read under
///   heavy concurrency.
///
/// Under concurrent lookups the window counters are maintained with
/// relaxed atomics: reads are approximate while lookups are in flight
/// and exact once they quiesce (same contract as the cache's global
/// counters).
///
/// # Examples
///
/// ```
/// use meloppr_core::cache::{CacheConsumer, ConcurrentSubgraphCache};
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let cache = ConcurrentSubgraphCache::new(16);
/// let consumer = CacheConsumer::new(64);
/// cache.get_or_extract_counted_as(&g, 0, 2, &consumer)?;
/// cache.get_or_extract_counted_as(&g, 0, 2, &consumer)?;
/// assert_eq!(consumer.stats().hits, 1);
/// assert_eq!(consumer.stats().misses, 1);
/// assert!((consumer.windowed_hit_rate() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub struct CacheConsumer {
    hits: AtomicU64,
    shared: AtomicU64,
    misses: AtomicU64,
    extractions: AtomicU64,
    rejected: AtomicU64,
    cold_hits: AtomicU64,
    cold_bytes: AtomicU64,
    cold_fallbacks: AtomicU64,
    /// EWMA of lookup outcomes (1.0 = free), stored as `f64` bits;
    /// `EWMA_UNSET` before the first sample.
    ewma_bits: AtomicU64,
    /// Ring buffer of recent outcomes (`WINDOW_*` values).
    window: Box<[AtomicU8]>,
    cursor: AtomicUsize,
    /// Slots written at least once (saturates at the window length).
    filled: AtomicUsize,
    /// Free (hit/share) outcomes currently in the window. Signed because
    /// concurrent swap deltas may transiently interleave; clamped at 0
    /// when read.
    window_free: AtomicI64,
}

impl std::fmt::Debug for CacheConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheConsumer")
            .field("stats", &self.stats())
            .field("window", &self.window.len())
            .field("windowed_hit_rate", &self.windowed_hit_rate())
            .finish()
    }
}

impl Default for CacheConsumer {
    /// A consumer with the [`DEFAULT_HIT_WINDOW`]-lookup window.
    fn default() -> Self {
        CacheConsumer::new(DEFAULT_HIT_WINDOW)
    }
}

impl CacheConsumer {
    /// Creates a consumer whose windowed hit rate spans the last
    /// `window` lookups (also the EWMA time constant).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "hit-rate window must be positive");
        CacheConsumer {
            hits: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extractions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cold_hits: AtomicU64::new(0),
            cold_bytes: AtomicU64::new(0),
            cold_fallbacks: AtomicU64::new(0),
            ewma_bits: AtomicU64::new(EWMA_UNSET),
            window: (0..window).map(|_| AtomicU8::new(WINDOW_EMPTY)).collect(),
            cursor: AtomicUsize::new(0),
            filled: AtomicUsize::new(0),
            window_free: AtomicI64::new(0),
        }
    }

    /// The window length in lookups.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Resizes the sliding window, discarding its contents (the
    /// cumulative attribution counters are kept). Requires exclusive
    /// access — lookups must have quiesced.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn resize_window(&mut self, window: usize) {
        assert!(window > 0, "hit-rate window must be positive");
        self.window = (0..window).map(|_| AtomicU8::new(WINDOW_EMPTY)).collect();
        *self.cursor.get_mut() = 0;
        *self.filled.get_mut() = 0;
        *self.window_free.get_mut() = 0;
    }

    /// Snapshot of this consumer's attribution counters (relaxed loads;
    /// exact once its lookups have quiesced).
    pub fn stats(&self) -> ConsumerStats {
        ConsumerStats {
            hits: self.hits.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extractions: self.extractions.load(Ordering::Relaxed),
            rejected_admissions: self.rejected.load(Ordering::Relaxed),
            cold_hits: self.cold_hits.load(Ordering::Relaxed),
            cold_bytes_read: self.cold_bytes.load(Ordering::Relaxed),
            cold_fallbacks: self.cold_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Exact hit fraction of this consumer's last `window` lookups
    /// (0.0 before any lookup). This is the rate the staged backend's
    /// `estimate()` discounts BFS by: after a traffic shift it converges
    /// to the new regime within one window, where the cumulative
    /// [`ConsumerStats::hit_rate`] stays anchored to stale history.
    pub fn windowed_hit_rate(&self) -> f64 {
        let filled = self.filled.load(Ordering::Relaxed).min(self.window.len());
        if filled == 0 {
            return 0.0;
        }
        let free = self.window_free.load(Ordering::Relaxed).max(0) as f64;
        (free / filled as f64).min(1.0)
    }

    /// EWMA of lookup outcomes with `λ = 1/window` (0.0 before any
    /// lookup): smoother than the exact window, never forgets entirely.
    pub fn decayed_hit_rate(&self) -> f64 {
        let bits = self.ewma_bits.load(Ordering::Relaxed);
        if bits == EWMA_UNSET {
            return 0.0;
        }
        f64::from_bits(bits)
    }

    /// Records one lookup outcome (`free` = served without BFS work).
    fn record(&self, free: bool) {
        // Exact sliding window: claim a slot, swap the outcome in, and
        // settle the free-count by the observed delta.
        let slot = &self.window[self.cursor.fetch_add(1, Ordering::Relaxed) % self.window.len()];
        let new = if free { WINDOW_FREE } else { WINDOW_MISS };
        let old = slot.swap(new, Ordering::Relaxed);
        if old == WINDOW_EMPTY {
            self.filled.fetch_add(1, Ordering::Relaxed);
        }
        let delta = (new == WINDOW_FREE) as i64 - (old == WINDOW_FREE) as i64;
        if delta != 0 {
            self.window_free.fetch_add(delta, Ordering::Relaxed);
        }
        // EWMA: CAS loop (first sample seeds the average directly).
        let outcome = free as u8 as f64;
        let lambda = 1.0 / self.window.len() as f64;
        let mut current = self.ewma_bits.load(Ordering::Relaxed);
        loop {
            let next = if current == EWMA_UNSET {
                outcome
            } else {
                let avg = f64::from_bits(current);
                avg + lambda * (outcome - avg)
            };
            match self.ewma_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    fn on_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.record(true);
    }

    fn on_shared(&self) {
        self.shared.fetch_add(1, Ordering::Relaxed);
        self.record(true);
    }

    fn on_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.record(false);
    }

    /// A RAM miss served by the cold tier: still a miss in the lookup
    /// taxonomy (`cold_hits` is a subset of `misses`), but the windowed
    /// rate — which exists to discount predicted **BFS** — counts it as
    /// free, because no BFS ran; `estimate()` prices the disk read
    /// separately from the cold fraction.
    fn on_cold_hit(&self, bytes: usize) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cold_hits.fetch_add(1, Ordering::Relaxed);
        self.cold_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.record(true);
    }

    /// Snapshot of this consumer's complete persistable state — counters,
    /// EWMA and the window's outcomes oldest-first. Relaxed loads: call
    /// after lookups have quiesced (e.g. at server shutdown).
    pub fn export_state(&self) -> ConsumerState {
        let len = self.window.len();
        let cursor = self.cursor.load(Ordering::Relaxed);
        let filled = self.filled.load(Ordering::Relaxed).min(len);
        // When the ring has wrapped, the oldest outcome sits at the
        // cursor's current slot; before the first wrap the slots fill in
        // order from 0.
        let start = if filled == len { cursor % len } else { 0 };
        let window = (0..filled)
            .filter_map(
                |i| match self.window[(start + i) % len].load(Ordering::Relaxed) {
                    WINDOW_FREE => Some(true),
                    WINDOW_MISS => Some(false),
                    _ => None,
                },
            )
            .collect();
        let bits = self.ewma_bits.load(Ordering::Relaxed);
        ConsumerState {
            stats: self.stats(),
            ewma: (bits != EWMA_UNSET).then(|| f64::from_bits(bits)),
            window,
        }
    }

    /// Re-applies a previously exported state: cumulative counters are
    /// overwritten, the window is replayed oldest-first (truncated to the
    /// newest `window_len()` outcomes when the persisted window is
    /// longer), and the EWMA is restored exactly. Call before serving —
    /// concurrent lookups during restore interleave arbitrarily.
    pub fn restore_state(&self, state: &ConsumerState) {
        self.hits.store(state.stats.hits, Ordering::Relaxed);
        self.shared.store(state.stats.shared, Ordering::Relaxed);
        self.misses.store(state.stats.misses, Ordering::Relaxed);
        self.extractions
            .store(state.stats.extractions, Ordering::Relaxed);
        self.rejected
            .store(state.stats.rejected_admissions, Ordering::Relaxed);
        self.cold_hits
            .store(state.stats.cold_hits, Ordering::Relaxed);
        self.cold_bytes
            .store(state.stats.cold_bytes_read, Ordering::Relaxed);
        self.cold_fallbacks
            .store(state.stats.cold_fallbacks, Ordering::Relaxed);
        // Reset the ring, then replay the newest window_len() outcomes.
        for slot in self.window.iter() {
            slot.store(WINDOW_EMPTY, Ordering::Relaxed);
        }
        self.cursor.store(0, Ordering::Relaxed);
        self.filled.store(0, Ordering::Relaxed);
        self.window_free.store(0, Ordering::Relaxed);
        self.ewma_bits.store(EWMA_UNSET, Ordering::Relaxed);
        let skip = state.window.len().saturating_sub(self.window.len());
        for &free in &state.window[skip..] {
            self.record(free);
        }
        // The replay rebuilt an EWMA from window outcomes only; the
        // persisted EWMA carries the full lifetime decay, so it wins.
        match state.ewma {
            Some(ewma) => self.ewma_bits.store(ewma.to_bits(), Ordering::Relaxed),
            None => self.ewma_bits.store(EWMA_UNSET, Ordering::Relaxed),
        }
    }
}

/// Whether an extracted ball may become resident in a
/// [`ConcurrentSubgraphCache`].
///
/// Admission is decided **after** extraction (the ball's size is not
/// known before BFS) and never affects the answer: a rejected ball is
/// returned to the caller — and zero-copy-shared with any singleflight
/// waiters — it just never enters the map, so a giant one-off ball can
/// never evict the hot hub balls the cache exists for. Rejections are
/// counted ([`CacheStats::rejected_admissions`], per consumer too).
///
/// Parse from CLI-style strings via [`std::str::FromStr`]:
/// `"always"`, `"max-nodes:N"`, `"freq:N"`, `"tinylfu"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit every extracted ball (the pre-admission behaviour).
    #[default]
    Always,
    /// Never admit balls with more than this many nodes.
    MaxNodes(usize),
    /// Admit balls within the node budget immediately; admit over-budget
    /// balls only once their key has been seen at least twice (tracked
    /// by a fixed-size counting sketch — hash collisions can only admit
    /// *early*, never reject a deserving ball). The second miss on a hot
    /// big ball admits it; true one-offs never displace anything.
    FrequencyGated(usize),
    /// TinyLFU-style frequency-vs-victim admission (Einziger et al.):
    /// while the [`CacheBudget`] has room, every ball is admitted; once
    /// admission would require an eviction, the candidate is admitted
    /// only if its sketch frequency **strictly beats** the would-be
    /// (least-recently-used) victim's. A one-off ball can therefore
    /// never displace a resident that has been demanded at least as
    /// often, while a ball hotter than the coldest resident always gets
    /// in. Sketch collisions over-count, which can only admit early.
    FrequencyVsVictim,
}

impl AdmissionPolicy {
    /// The size gate: whether a ball of `nodes` nodes passes this
    /// policy's pre-admission check, given whether its key was seen
    /// before this lookup. Budget reservation (and the
    /// [`AdmissionPolicy::FrequencyVsVictim`] victim comparison) happens
    /// afterwards.
    fn size_gate(&self, nodes: usize, seen_before: bool) -> bool {
        match *self {
            AdmissionPolicy::Always | AdmissionPolicy::FrequencyVsVictim => true,
            AdmissionPolicy::MaxNodes(limit) => nodes <= limit,
            AdmissionPolicy::FrequencyGated(limit) => nodes <= limit || seen_before,
        }
    }

    /// Whether this policy ever consults the seen-key sketch.
    fn needs_seen_tracking(&self) -> bool {
        matches!(
            self,
            AdmissionPolicy::FrequencyGated(_) | AdmissionPolicy::FrequencyVsVictim
        )
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AdmissionPolicy::Always => f.write_str("always"),
            AdmissionPolicy::MaxNodes(n) => write!(f, "max-nodes:{n}"),
            AdmissionPolicy::FrequencyGated(n) => write!(f, "freq:{n}"),
            AdmissionPolicy::FrequencyVsVictim => f.write_str("tinylfu"),
        }
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        if s.eq_ignore_ascii_case("always") {
            return Ok(AdmissionPolicy::Always);
        }
        if s.eq_ignore_ascii_case("tinylfu") || s.eq_ignore_ascii_case("freq-vs-victim") {
            return Ok(AdmissionPolicy::FrequencyVsVictim);
        }
        let parse = |value: &str, what: &str| -> std::result::Result<usize, String> {
            let n: usize = value
                .parse()
                .map_err(|e| format!("bad {what} budget {value:?}: {e}"))?;
            if n == 0 {
                return Err(format!("{what} budget must be >= 1"));
            }
            Ok(n)
        };
        if let Some(v) = s.strip_prefix("max-nodes:") {
            return Ok(AdmissionPolicy::MaxNodes(parse(v, "max-nodes")?));
        }
        if let Some(v) = s.strip_prefix("freq:") {
            return Ok(AdmissionPolicy::FrequencyGated(parse(v, "freq")?));
        }
        Err(format!(
            "unknown admission policy {s:?} (always | max-nodes:N | freq:N | tinylfu)"
        ))
    }
}

/// State of one cached key: pending while the winning extractor runs,
/// ready once published, failed if extraction errored (waiters then fall
/// back to extracting themselves so the error surfaces deterministically).
enum EntryState {
    Pending,
    Ready,
    Failed,
}

/// One cache slot: the singleflight rendezvous plus the CLOCK recency
/// stamp.
///
/// The published sub-graph lives in a write-once `OnceLock` so the hit
/// path is `shard read lock -> OnceLock::get -> relaxed stamp store` —
/// no exclusive lock anywhere, so concurrent hits on one hot ball never
/// serialize. The `Mutex`/`Condvar` pair is touched only by singleflight
/// losers waiting out an in-flight extraction (state `Pending`).
struct Entry {
    published: OnceLock<CachedBall>,
    state: Mutex<EntryState>,
    ready: Condvar,
    last_used: AtomicU64,
    /// Bytes this entry charged against the global resident-bytes
    /// counter (0 while pending or when it was never made resident).
    /// Written under the shard write lock before publication, so under a
    /// shard lock an in-map published entry is always exactly charged.
    charged_bytes: AtomicUsize,
}

impl Entry {
    fn pending(stamp: u64) -> Arc<Self> {
        Arc::new(Entry {
            published: OnceLock::new(),
            state: Mutex::new(EntryState::Pending),
            ready: Condvar::new(),
            last_used: AtomicU64::new(stamp),
            charged_bytes: AtomicUsize::new(0),
        })
    }
}

struct Shard {
    map: RwLock<FastHashMap<CacheKey, Arc<Entry>>>,
}

/// Adapts a lookup result to the legacy full-ball contract: a compact
/// hit (only reachable when [`BallStore::Compact`] was opted into) is
/// served by a fresh extraction — the compact resident keeps its slot,
/// and the hit was already counted. Re-extracting (rather than
/// [`CompactBall::to_subgraph`]) keeps the legacy getters' "BFS path by
/// contract" promise and their work accounting intact.
fn inflate_full<G: GraphView + ?Sized>(
    g: &G,
    node: NodeId,
    depth: u32,
    ball: CachedBall,
    work: usize,
) -> Result<(Arc<Subgraph>, usize)> {
    match ball {
        CachedBall::Full(sub) => Ok((sub, work)),
        CachedBall::Compact(_) => {
            let b = bfs_ball(g, node, depth)?;
            let sub = Subgraph::extract(g, &b)?;
            Ok((Arc::new(sub), b.edges_scanned))
        }
    }
}

/// What a lookup's extraction closure produced on a RAM miss: a ball
/// decoded from the cold tier (one positioned read, no BFS), or a live
/// BFS extraction.
enum ExtractedBall {
    /// Decoded from the cold-tier index; `bytes` is the record length
    /// read from disk.
    Cold { ball: CompactBall, bytes: usize },
    /// A live BFS extraction (`work` = adjacency entries scanned).
    /// `fallback` is set when a configured cold tier was consulted first
    /// and could not serve the ball.
    Fresh {
        sub: Subgraph,
        work: usize,
        fallback: bool,
    },
}

/// The cold-capable extraction body shared by the ball-representation
/// lookups: try one positioned index read first, fall back to live BFS
/// when the index lacks the ball or the read/decode fails — the cold
/// tier is an accelerator, never a correctness dependency.
fn read_cold_or_extract<G: GraphView + ?Sized>(
    g: &G,
    cold: Option<&BallIndex>,
    node: NodeId,
    depth: u32,
    scratch: &mut ExtractScratch,
    buf: &mut Vec<u8>,
) -> Result<ExtractedBall> {
    if let Some(index) = cold {
        if let Ok(Some(ball)) = index.read_ball(node, depth, buf) {
            return Ok(ExtractedBall::Cold {
                bytes: buf.len(),
                ball,
            });
        }
        let (sub, work) = scratch.extract_owned(g, node, depth)?;
        return Ok(ExtractedBall::Fresh {
            sub,
            work,
            fallback: true,
        });
    }
    let (sub, work) = scratch.extract_owned(g, node, depth)?;
    Ok(ExtractedBall::Fresh {
        sub,
        work,
        fallback: false,
    })
}

/// What a lookup found after consulting (and possibly updating) a shard.
enum Found {
    /// The entry existed; wait for / read its state.
    Existing(Arc<Entry>),
    /// We installed the pending placeholder; we extract.
    Winner(Arc<Entry>),
}

/// Arms the winner's extraction against unwinds: if `extract` (or an
/// injected failpoint) panics after the pending entry became
/// map-visible, the entry would otherwise stay `Pending` forever and
/// every singleflight waiter would deadlock on its condvar. Dropping
/// while still armed performs the same cleanup an extraction `Err`
/// gets: fail the entry, wake the waiters, purge the key.
struct FailPendingOnUnwind<'a> {
    cache: &'a ConcurrentSubgraphCache,
    shard: &'a Shard,
    key: CacheKey,
    entry: &'a Arc<Entry>,
    armed: bool,
}

impl FailPendingOnUnwind<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for FailPendingOnUnwind<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        {
            let mut state = self.cache.entry_state(self.entry);
            *state = EntryState::Failed;
        }
        self.entry.ready.notify_all();
        let mut map = self.cache.shard_write(self.shard);
        if let Some(current) = map.get(&self.key) {
            if Arc::ptr_eq(current, self.entry) {
                map.remove(&self.key);
            }
        }
    }
}

/// How a lookup participates in accounting and admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LookupMode {
    /// A serving lookup: counted (globally and per consumer), extracted
    /// balls admitted per the [`AdmissionPolicy`] and [`CacheBudget`].
    Demand,
    /// Warm-up: no lookup accounting at all (only physical extractions
    /// tick), admission bypasses the frequency gates, resident entries'
    /// recency is not refreshed.
    Warming,
    /// A budget probe: counted exactly like demand (the work is real),
    /// but an extracted ball is **never** admitted — served to the
    /// caller and to singleflight waiters only. The staged engine's
    /// memory-budget gate probes shrinking ball depths this way so
    /// over-budget balls it will not execute never displace residents;
    /// the depth it settles on is admitted explicitly via
    /// [`ConcurrentSubgraphCache::admit_extracted`].
    Probe,
}

/// A sharded, lock-striped cache of extracted BFS-ball sub-graphs shared
/// by concurrent batch workers (see the module docs for the design).
///
/// All methods take `&self`; the cache is meant to live in an
/// [`Arc`] shared by every worker serving a graph. Hot balls are
/// extracted **once** (singleflight); hits and shares return the same
/// `Arc<Subgraph>` with zero BFS work.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use meloppr_core::cache::ConcurrentSubgraphCache;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let cache = Arc::new(ConcurrentSubgraphCache::new(64));
/// let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2)?;
/// let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2)?;
/// assert!(Arc::ptr_eq(&a, &b)); // zero-copy reuse
/// assert!(work_a > 0);
/// assert_eq!(work_b, 0); // hits charge no BFS
/// assert_eq!(cache.stats().extractions, 1);
/// # Ok(())
/// # }
/// ```
pub struct ConcurrentSubgraphCache {
    shards: Box<[Shard]>,
    budget: CacheBudget,
    admission: AdmissionPolicy,
    store: BallStore,
    /// Optional cold tier: a persisted ball index consulted by the
    /// ball-representation lookups on a RAM miss before falling back to
    /// live BFS.
    cold: Option<Arc<BallIndex>>,
    /// Counting sketch of key sightings for the frequency-aware
    /// admission policies; empty for other policies. Collisions
    /// over-count, which can only admit early.
    seen: Box<[AtomicU32]>,
    clock: AtomicU64,
    /// Global resident-entry count — the *only* entry-budget authority
    /// (per-shard splits over-admit; see the module docs). Reserved via
    /// CAS before an entry is published, released on eviction/clear.
    resident_entries: AtomicUsize,
    /// Global resident bytes: sum of `charged_bytes` over resident
    /// entries, reserved/released in lockstep with `resident_entries`.
    resident_bytes: AtomicUsize,
    hits: AtomicU64,
    shared: AtomicU64,
    misses: AtomicU64,
    extractions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    cold_hits: AtomicU64,
    cold_bytes_read: AtomicU64,
    cold_fallbacks: AtomicU64,
    /// Times a poisoned shard or entry lock was recovered
    /// (clear-and-continue) instead of cascading the panic.
    poison_recoveries: AtomicU64,
}

impl std::fmt::Debug for ConcurrentSubgraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSubgraphCache")
            .field("budget", &self.budget)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default shard count: enough stripes that a typical worker pool
/// (≤ 16 threads) rarely collides, without fragmenting small capacities.
const DEFAULT_SHARDS: usize = 16;

/// Slots in the frequency-gate counting sketch (16 KiB of `AtomicU32`).
const SEEN_SLOTS: usize = 4096;

impl ConcurrentSubgraphCache {
    /// Creates a cache budgeted for `capacity` sub-graphs, striped over
    /// the default shard count (clamped to `capacity`).
    ///
    /// The budget is a **global** bound maintained by an atomic resident
    /// counter: total residency never exceeds `capacity`, regardless of
    /// how keys hash across shards or how many workers insert
    /// concurrently. For byte-denominated budgets use
    /// [`ConcurrentSubgraphCache::with_budget`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS.min(capacity.max(1)))
    }

    /// As [`ConcurrentSubgraphCache::new`] with an explicit shard count
    /// (lock stripes). More shards mean less contention; the budget
    /// stays a single global bound either way.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        Self::with_budget_and_shards(CacheBudget::entries(capacity), shards)
    }

    /// A cache governed by an arbitrary [`CacheBudget`] (entries and/or
    /// bytes), striped over the default shard count.
    ///
    /// # Panics
    ///
    /// Panics if a configured budget bound is zero.
    pub fn with_budget(budget: CacheBudget) -> Self {
        let shards = match budget.entries {
            Some(entries) => DEFAULT_SHARDS.min(entries.max(1)),
            None => DEFAULT_SHARDS,
        };
        Self::with_budget_and_shards(budget, shards)
    }

    /// As [`ConcurrentSubgraphCache::with_budget`] with an explicit
    /// shard count.
    ///
    /// # Panics
    ///
    /// Panics if a configured budget bound or `shards` is zero.
    pub fn with_budget_and_shards(budget: CacheBudget, shards: usize) -> Self {
        assert!(budget.entries != Some(0), "cache capacity must be positive");
        assert!(
            budget.bytes != Some(0),
            "cache byte budget must be positive"
        );
        assert!(shards > 0, "shard count must be positive");
        let shards: Box<[Shard]> = (0..shards)
            .map(|_| Shard {
                map: RwLock::new(FastHashMap::default()),
            })
            .collect();
        ConcurrentSubgraphCache {
            shards,
            budget,
            admission: AdmissionPolicy::Always,
            store: BallStore::Full,
            cold: None,
            seen: Box::new([]),
            clock: AtomicU64::new(0),
            resident_entries: AtomicUsize::new(0),
            resident_bytes: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extractions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cold_hits: AtomicU64::new(0),
            cold_bytes_read: AtomicU64::new(0),
            cold_fallbacks: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Sets the [`AdmissionPolicy`] deciding which extracted balls become
    /// resident (builder style; default [`AdmissionPolicy::Always`]).
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self.seen = if policy.needs_seen_tracking() {
            (0..SEEN_SLOTS).map(|_| AtomicU32::new(0)).collect()
        } else {
            Box::new([])
        };
        self
    }

    /// The configured admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// Sets the [`BallStore`] deciding which representation residents
    /// keep (builder style; default [`BallStore::Full`]).
    #[must_use]
    pub fn with_ball_store(mut self, store: BallStore) -> Self {
        self.store = store;
        self
    }

    /// The configured resident-ball representation.
    pub fn ball_store(&self) -> BallStore {
        self.store
    }

    /// Attaches a persisted [`BallIndex`] as this cache's **cold tier**
    /// (builder style): a RAM miss whose `(node, depth)` ball the index
    /// holds is served by one positioned read, decoded, re-represented
    /// per the configured [`BallStore`] (inflated to a full [`Subgraph`]
    /// under the default `Full` store so disk-served answers stay
    /// bit-identical to BFS-served ones) and admitted through the normal
    /// [`AdmissionPolicy`]/[`CacheBudget`] gates; live BFS remains the
    /// fallback when the index lacks the ball or the read fails. Only the
    /// ball-representation lookups
    /// ([`ConcurrentSubgraphCache::get_ball_with_as`] and the budget
    /// probes) consult the cold tier — the legacy full-[`Subgraph`]
    /// getters are BFS paths by contract.
    #[must_use]
    pub fn with_cold_tier(mut self, index: Arc<BallIndex>) -> Self {
        self.cold = Some(index);
        self
    }

    /// The attached cold-tier ball index, if any.
    pub fn cold_tier(&self) -> Option<&BallIndex> {
        self.cold.as_deref()
    }

    /// The representation an extracted ball would be stored under: the
    /// compact form when configured and the ball fits `u16` local ids,
    /// the full form otherwise.
    fn store_ball(&self, sub: &Arc<Subgraph>) -> CachedBall {
        match self.store {
            BallStore::Full => CachedBall::Full(Arc::clone(sub)),
            BallStore::Compact => match CompactBall::from_subgraph(sub) {
                Some(compact) => CachedBall::Compact(Arc::new(compact)),
                None => CachedBall::Full(Arc::clone(sub)),
            },
        }
    }

    /// The representation a cold-tier ball is served and stored under.
    /// Under [`BallStore::Full`] (the default, bit-identical mode) the
    /// decoded record is inflated back into a full [`Subgraph`] so it
    /// diffuses through exactly the kernel a fresh BFS extraction would
    /// — disk-served and RAM-served answers stay bit-identical. Under
    /// [`BallStore::Compact`] the wire form *is* the resident form, so
    /// no inflation happens. Inflation failure (unreachable for records
    /// that passed [`CompactBall::from_raw_parts`]) degrades to the
    /// compact form rather than failing the lookup.
    fn cold_ball(&self, ball: CompactBall) -> CachedBall {
        match self.store {
            BallStore::Full => match ball.to_subgraph() {
                Ok(sub) => CachedBall::Full(Arc::new(sub)),
                Err(_) => CachedBall::Compact(Arc::new(ball)),
            },
            BallStore::Compact => CachedBall::Compact(Arc::new(ball)),
        }
    }

    /// Read-locks a shard's map, recovering a poisoned lock by clearing
    /// the shard ([`ConcurrentSubgraphCache::recover_shard`]) and
    /// continuing — a cache must survive a co-tenant's panic, it only
    /// costs re-extraction.
    fn shard_read<'s>(
        &self,
        shard: &'s Shard,
    ) -> std::sync::RwLockReadGuard<'s, FastHashMap<CacheKey, Arc<Entry>>> {
        match shard.map.read() {
            Ok(guard) => guard,
            Err(poisoned) => {
                drop(poisoned);
                self.recover_shard(shard);
                shard
                    .map
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        }
    }

    /// Write-locks a shard's map, recovering a poisoned lock like
    /// [`ConcurrentSubgraphCache::shard_read`].
    fn shard_write<'s>(
        &self,
        shard: &'s Shard,
    ) -> std::sync::RwLockWriteGuard<'s, FastHashMap<CacheKey, Arc<Entry>>> {
        match shard.map.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                drop(poisoned);
                self.recover_shard(shard);
                shard
                    .map
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        }
    }

    /// Clear-and-continue recovery for a poisoned shard: a panic while
    /// the shard lock was held may have interrupted a map/accounting
    /// update mid-flight, so rather than trusting the half-written
    /// state, drop every entry in the shard (releasing charged budget,
    /// waking singleflight waiters of pending entries as `Failed` so
    /// nobody deadlocks) and carry on with an empty — but provably
    /// consistent — shard. Counted in
    /// [`ConcurrentSubgraphCache::poison_recoveries`].
    fn recover_shard(&self, shard: &Shard) {
        self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
        let mut map = shard
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (_, entry) in map.drain() {
            let bytes = entry.charged_bytes.swap(0, Ordering::Relaxed);
            if bytes > 0 {
                self.resident_entries.fetch_sub(1, Ordering::Relaxed);
                self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
            }
            let mut state = self.entry_state(&entry);
            if matches!(*state, EntryState::Pending) {
                *state = EntryState::Failed;
                drop(state);
                entry.ready.notify_all();
            }
        }
        shard.map.clear_poison();
    }

    /// Locks an entry's state, recovering from poisoning: the state
    /// enum is plain data, valid at every instant, so a panic that
    /// poisoned it left nothing to repair.
    fn entry_state<'e>(&self, entry: &'e Entry) -> std::sync::MutexGuard<'e, EntryState> {
        entry.state.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            entry.state.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Times a poisoned cache lock was recovered instead of letting the
    /// panic cascade (0 in a healthy process; see
    /// `ConcurrentSubgraphCache::recover_shard`).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Records one sighting of `key` in the frequency sketch, returning
    /// the updated sighting count. Collisions over-count (early
    /// admission only). Saturates at `u32::MAX` when the policy keeps no
    /// sketch.
    fn note_seen(&self, key: CacheKey) -> u32 {
        if self.seen.is_empty() {
            return u32::MAX;
        }
        self.seen_slot(key).fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current sketch frequency of `key` (how often it has been
    /// demanded), `u32::MAX` without a sketch.
    fn sketch_frequency(&self, key: CacheKey) -> u32 {
        if self.seen.is_empty() {
            return u32::MAX;
        }
        self.seen_slot(key).load(Ordering::Relaxed)
    }

    fn seen_slot(&self, key: CacheKey) -> &AtomicU32 {
        let mixed = ((key.0 as u64) << 32 | key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Take the *top* bits: the node id sits in the high half of the
        // pre-multiply key, so low product bits depend only on the depth
        // (the old `>> 13` slot collapsed every same-depth key into one
        // slot, blinding the frequency sketch).
        &self.seen[(mixed >> 52) as usize % self.seen.len()]
    }

    /// The configured [`CacheBudget`].
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// The entry budget (`usize::MAX` when only a byte budget bounds the
    /// cache). Prefer [`ConcurrentSubgraphCache::budget`].
    pub fn capacity(&self) -> usize {
        self.budget.entries.unwrap_or(usize::MAX)
    }

    /// Resident (published) entries, from the global budget counter.
    pub fn resident_entries(&self) -> usize {
        self.resident_entries.load(Ordering::Relaxed)
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_for(&self, key: CacheKey) -> &Shard {
        // Fibonacci multiplicative hash of (node, depth); the high bits
        // decide the stripe so nearby node ids spread out.
        let mixed = ((key.0 as u64) << 32 | key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 40) as usize % self.shards.len()]
    }

    /// Returns the cached ball around `(node, depth)`, extracting it
    /// exactly once across all concurrent callers on a miss. The lookup
    /// is **unattributed** — it moves only the global counters. Serving
    /// paths should identify themselves via
    /// [`ConcurrentSubgraphCache::get_or_extract_counted_as`].
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<Arc<Subgraph>> {
        Ok(self.get_or_extract_counted(g, node, depth)?.0)
    }

    /// As [`ConcurrentSubgraphCache::get_or_extract`], additionally
    /// reporting the BFS work performed by **this call** — 0 on hits and
    /// on singleflight shares (the winner alone is charged the scan).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_counted<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<(Arc<Subgraph>, usize)> {
        let (ball, work) = self.lookup(g, node, depth, None, LookupMode::Demand, |g, _| {
            let ball = bfs_ball(g, node, depth)?;
            let sub = Subgraph::extract(g, &ball)?;
            Ok(ExtractedBall::Fresh {
                sub,
                work: ball.edges_scanned,
                fallback: false,
            })
        })?;
        inflate_full(g, node, depth, ball, work)
    }

    /// As [`ConcurrentSubgraphCache::get_or_extract_counted`], attributing
    /// the lookup to `consumer`: its hit/shared/miss/extraction counters
    /// and its windowed hit rates move alongside the global counters, so
    /// several consumers sharing this cache each observe exactly their
    /// own traffic.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_counted_as<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        consumer: &CacheConsumer,
    ) -> Result<(Arc<Subgraph>, usize)> {
        let (ball, work) = self.lookup(
            g,
            node,
            depth,
            Some(consumer),
            LookupMode::Demand,
            |g, _| {
                let ball = bfs_ball(g, node, depth)?;
                let sub = Subgraph::extract(g, &ball)?;
                Ok(ExtractedBall::Fresh {
                    sub,
                    work: ball.edges_scanned,
                    fallback: false,
                })
            },
        )?;
        inflate_full(g, node, depth, ball, work)
    }

    /// As [`ConcurrentSubgraphCache::get_or_extract_counted`], extracting
    /// through `scratch` on a miss so the BFS visited map, queue and ball
    /// arrays are reused across misses. Unattributed; serving paths use
    /// [`ConcurrentSubgraphCache::get_or_extract_with_as`].
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_with<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
    ) -> Result<(Arc<Subgraph>, usize)> {
        let (ball, work) = self.lookup(g, node, depth, None, LookupMode::Demand, |g, _| {
            let (sub, work) = scratch.extract_owned(g, node, depth)?;
            Ok(ExtractedBall::Fresh {
                sub,
                work,
                fallback: false,
            })
        })?;
        inflate_full(g, node, depth, ball, work)
    }

    /// The serving-path lookup: extraction through the workspace
    /// `scratch`, attribution to `consumer` (the query-workspace
    /// integration used by the staged engine's shared-cache mode).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_with_as<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
        consumer: &CacheConsumer,
    ) -> Result<(Arc<Subgraph>, usize)> {
        let (ball, work) = self.lookup(
            g,
            node,
            depth,
            Some(consumer),
            LookupMode::Demand,
            |g, _| {
                let (sub, work) = scratch.extract_owned(g, node, depth)?;
                Ok(ExtractedBall::Fresh {
                    sub,
                    work,
                    fallback: false,
                })
            },
        )?;
        inflate_full(g, node, depth, ball, work)
    }

    /// The precision ladder's serving-path lookup: as
    /// [`ConcurrentSubgraphCache::get_or_extract_with_as`], but returns
    /// the resident in **whichever representation the [`BallStore`]
    /// keeps** — a compact hit is served as-is instead of being
    /// re-extracted, which is the whole point of compact residents (the
    /// quantized diffusion kernel consumes either form directly).
    ///
    /// This is a cold-tier-aware lookup: with a
    /// [`ConcurrentSubgraphCache::with_cold_tier`] index attached, a RAM
    /// miss tries one positioned read into `cold_buf` (a caller-pooled
    /// buffer — the workspace owns it on the serving path, so steady
    /// state stays allocation-free) before falling back to live BFS.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_ball_with_as<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
        cold_buf: &mut Vec<u8>,
        consumer: &CacheConsumer,
    ) -> Result<(CachedBall, usize)> {
        self.lookup(
            g,
            node,
            depth,
            Some(consumer),
            LookupMode::Demand,
            |g, cold| read_cold_or_extract(g, cold, node, depth, scratch, cold_buf),
        )
    }

    /// Ball-representation form of
    /// [`ConcurrentSubgraphCache::probe_or_extract_with_as`]: counted
    /// like demand, never admits, serves a compact resident as-is on a
    /// hit. Cold-tier-aware like
    /// [`ConcurrentSubgraphCache::get_ball_with_as`] — a probe served
    /// from the index costs a read, not a BFS, and the depth the budget
    /// gate settles on is admitted explicitly afterwards.
    pub(crate) fn probe_ball_with_as<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
        cold_buf: &mut Vec<u8>,
        consumer: &CacheConsumer,
    ) -> Result<(CachedBall, usize)> {
        self.lookup(
            g,
            node,
            depth,
            Some(consumer),
            LookupMode::Probe,
            |g, cold| read_cold_or_extract(g, cold, node, depth, scratch, cold_buf),
        )
    }

    /// As [`ConcurrentSubgraphCache::get_or_extract_with_as`], but an
    /// extracted ball is **never admitted**: it is served to the caller
    /// (and any singleflight waiters), counted like a demand lookup, and
    /// then forgotten. The staged engine's memory-budget gate uses this
    /// to probe shrinking ball depths — a depth it decides *not* to
    /// execute must not displace residents or charge the byte budget;
    /// the depth it settles on is admitted explicitly via
    /// [`ConcurrentSubgraphCache::admit_extracted`]. Resident keys still
    /// hit for free.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    #[cfg(test)]
    pub(crate) fn probe_or_extract_with_as<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
        consumer: &CacheConsumer,
    ) -> Result<(Arc<Subgraph>, usize)> {
        let (ball, work) =
            self.lookup(g, node, depth, Some(consumer), LookupMode::Probe, |g, _| {
                let (sub, work) = scratch.extract_owned(g, node, depth)?;
                Ok(ExtractedBall::Fresh {
                    sub,
                    work,
                    fallback: false,
                })
            })?;
        inflate_full(g, node, depth, ball, work)
    }

    /// Makes an already-extracted ball resident (if the policy and
    /// budget admit it): the admission half of a
    /// [`probe_or_extract_with_as`](ConcurrentSubgraphCache::probe_or_extract_with_as)
    /// that settled on this depth. No hit/miss is counted and no BFS
    /// runs, but this **is** the executed ball's one demand sighting:
    /// the frequency sketch is bumped here (probes never touch it), and
    /// the full [`AdmissionPolicy`] applies — size gates, the
    /// frequency gate's second-sighting rule and the TinyLFU
    /// victim comparison behave exactly as they would for an unbudgeted
    /// demand miss, so a memory budget never weakens admission control.
    /// Policy/budget refusals count as `rejected_admissions` (globally
    /// and for `consumer`). A no-op when the key is already resident or
    /// in flight.
    pub(crate) fn admit_extracted(
        &self,
        node: NodeId,
        depth: u32,
        sub: &Arc<Subgraph>,
        consumer: Option<&CacheConsumer>,
    ) {
        let stored = self.store_ball(sub);
        self.admit_stored(node, depth, stored, sub.num_nodes(), consumer);
    }

    /// As [`ConcurrentSubgraphCache::admit_extracted`] for a ball already
    /// in a resident representation: the admission half of a budgeted
    /// probe that was served **from the cold tier** (a decoded
    /// [`CachedBall::Compact`] has no full [`Subgraph`] to re-compact).
    /// Same sighting/policy/budget semantics.
    pub(crate) fn admit_cached(
        &self,
        node: NodeId,
        depth: u32,
        ball: &CachedBall,
        consumer: Option<&CacheConsumer>,
    ) {
        self.admit_stored(node, depth, ball.clone(), ball.num_nodes(), consumer);
    }

    fn admit_stored(
        &self,
        node: NodeId,
        depth: u32,
        stored: CachedBall,
        nodes: usize,
        consumer: Option<&CacheConsumer>,
    ) {
        let key = (node, depth);
        {
            let shard = self.shard_for(key);
            let map = self.shard_read(shard);
            if map.contains_key(&key) {
                return;
            }
        }
        let (seen_before, candidate_freq) = if !self.admission.needs_seen_tracking() {
            (true, u32::MAX)
        } else {
            let count = self.note_seen(key);
            (count > 1, count)
        };
        let bytes = stored.memory_bytes_total();
        let admitted = self.admission.size_gate(nodes, seen_before)
            && self.reserve_residency(key, bytes, candidate_freq);
        if !admitted {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = consumer {
                c.rejected.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Entry::pending(stamp);
        let shard = self.shard_for(key);
        let mut map = self.shard_write(shard);
        if map.contains_key(&key) {
            // Raced with a concurrent installer: release the reservation.
            self.resident_entries.fetch_sub(1, Ordering::Relaxed);
            self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
            return;
        }
        // Charge and publish before the entry becomes map-visible (all
        // under the shard write lock), preserving the invariant that an
        // in-map published entry is exactly charged. No waiter can exist
        // before insertion, so no notify is needed.
        entry.charged_bytes.store(bytes, Ordering::Relaxed);
        entry
            .published
            .set(stored)
            .unwrap_or_else(|_| unreachable!("entry is freshly created"));
        *self.entry_state(&entry) = EntryState::Ready;
        map.insert(key, entry);
    }

    /// Pre-extracts the ball around `(node, depth)` **without counting a
    /// lookup**: no hit, no miss, no consumer attribution — only the
    /// physical `extractions` counter ticks when a BFS actually runs.
    /// Warm-up therefore never deflates any observed hit rate (the bug
    /// this method exists to fix: routing decisions fed by a rate that
    /// warming had permanently dragged down).
    ///
    /// Warming respects a size budget in the [`AdmissionPolicy`] but
    /// bypasses the frequency gate — an explicit warm *is* the admission
    /// decision. Already-resident and in-flight keys are left alone.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction.
    pub fn warm<G: GraphView + ?Sized>(&self, g: &G, node: NodeId, depth: u32) -> Result<()> {
        self.lookup(g, node, depth, None, LookupMode::Warming, |g, _| {
            let ball = bfs_ball(g, node, depth)?;
            let sub = Subgraph::extract(g, &ball)?;
            Ok(ExtractedBall::Fresh {
                sub,
                work: ball.edges_scanned,
                fallback: false,
            })
        })
        .map(|_| ())
    }

    /// As [`ConcurrentSubgraphCache::warm`], extracting through `scratch`.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction.
    pub fn warm_with<G: GraphView + ?Sized>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        scratch: &mut ExtractScratch,
    ) -> Result<()> {
        self.lookup(g, node, depth, None, LookupMode::Warming, |g, _| {
            let (sub, work) = scratch.extract_owned(g, node, depth)?;
            Ok(ExtractedBall::Fresh {
                sub,
                work,
                fallback: false,
            })
        })
        .map(|_| ())
    }

    /// The shared lookup core: fast-path read, singleflight install on
    /// miss, condvar wait for in-flight extractions, post-extraction
    /// admission. `extract` runs at most once per call and **never under
    /// a shard lock**; it receives the cache's cold tier (if any) so
    /// cold-capable callers can try one index read before BFS — only the
    /// singleflight winner ever touches the disk. [`LookupMode::Warming`]
    /// suppresses all lookup accounting (only physical extraction work is
    /// counted) and bypasses the frequency gate; [`LookupMode::Probe`]
    /// counts like demand but never admits the extracted ball.
    fn lookup<G, F>(
        &self,
        g: &G,
        node: NodeId,
        depth: u32,
        consumer: Option<&CacheConsumer>,
        mode: LookupMode,
        extract: F,
    ) -> Result<(CachedBall, usize)>
    where
        G: GraphView + ?Sized,
        F: FnOnce(&G, Option<&BallIndex>) -> Result<ExtractedBall>,
    {
        let key = (node, depth);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = self.shard_for(key);

        // Fast path: shared read lock only.
        let found = {
            let map = self.shard_read(shard);
            map.get(&key).cloned()
        };
        let found = match found {
            Some(entry) => Found::Existing(entry),
            None => {
                let mut map = self.shard_write(shard);
                match map.get(&key) {
                    // Raced with another installer between the locks.
                    Some(entry) => Found::Existing(Arc::clone(entry)),
                    None => {
                        let entry = Entry::pending(stamp);
                        map.insert(key, Arc::clone(&entry));
                        Found::Winner(entry)
                    }
                }
            }
        };

        match found {
            Found::Existing(entry) => {
                // Warming is not demand: it must not refresh recency, or
                // repeated warm-ups of never-queried probe balls would
                // out-compete genuinely hot entries at eviction time.
                if mode != LookupMode::Warming {
                    entry.last_used.store(stamp, Ordering::Relaxed);
                }
                // Hit fast path: a published entry is read without any
                // exclusive lock (OnceLock::get is a lock-free load once
                // set), so concurrent hits on one hot ball never
                // serialize.
                if let Some(ball) = entry.published.get() {
                    if mode != LookupMode::Warming {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(c) = consumer {
                            c.on_hit();
                        }
                    }
                    return Ok((ball.clone(), 0));
                }
                let mut state = self.entry_state(&entry);
                loop {
                    match &*state {
                        EntryState::Ready => {
                            if mode != LookupMode::Warming {
                                self.shared.fetch_add(1, Ordering::Relaxed);
                                if let Some(c) = consumer {
                                    c.on_shared();
                                }
                            }
                            let ball = entry.published.get().expect("ready entry published");
                            return Ok((ball.clone(), 0));
                        }
                        EntryState::Pending => {
                            state = entry.ready.wait(state).unwrap_or_else(|poisoned| {
                                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                                poisoned.into_inner()
                            });
                        }
                        EntryState::Failed => {
                            // The winner's extraction errored (and it
                            // removed the entry). Reproduce the error —
                            // extraction failures are deterministic
                            // (out-of-bounds seeds), so this surfaces the
                            // same error without retry loops.
                            drop(state);
                            if mode != LookupMode::Warming {
                                self.misses.fetch_add(1, Ordering::Relaxed);
                            }
                            let extracted = crate::failpoint::check("cache.extract")
                                .map_err(crate::error::PprError::from)
                                .and_then(|()| extract(g, self.cold.as_deref()));
                            let extracted = match extracted {
                                Ok(extracted) => extracted,
                                Err(err) => {
                                    if mode != LookupMode::Warming {
                                        if let Some(c) = consumer {
                                            c.on_miss();
                                        }
                                    }
                                    return Err(err);
                                }
                            };
                            // Deterministic failures cannot reach here, but
                            // a success is still a valid answer: serve it
                            // without touching the map (the key was purged).
                            return match extracted {
                                ExtractedBall::Cold { ball, bytes } => {
                                    self.count_cold_hit(consumer, mode, bytes);
                                    Ok((self.cold_ball(ball), 0))
                                }
                                ExtractedBall::Fresh {
                                    sub,
                                    work,
                                    fallback,
                                } => {
                                    if fallback {
                                        self.count_cold_fallback(consumer, mode);
                                    }
                                    if mode != LookupMode::Warming {
                                        if let Some(c) = consumer {
                                            c.on_miss();
                                        }
                                    }
                                    self.count_extraction(consumer, mode);
                                    Ok((CachedBall::Full(Arc::new(sub)), work))
                                }
                            };
                        }
                    }
                }
            }
            Found::Winner(entry) => {
                if mode != LookupMode::Warming {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // The consumer's miss/cold-hit attribution is
                    // deferred until the extraction resolves: a cold hit
                    // records a *free* window outcome (no BFS ran), which
                    // is only known afterwards.
                }
                // The frequency sketch counts demand sightings; a warm-up
                // is treated as already-seen and maximally hot (warming
                // *is* the admission decision).
                let (seen_before, candidate_freq) =
                    if mode != LookupMode::Demand || !self.admission.needs_seen_tracking() {
                        (true, u32::MAX)
                    } else {
                        let count = self.note_seen(key);
                        (count > 1, count)
                    };
                let mut unwind_guard = FailPendingOnUnwind {
                    cache: self,
                    shard,
                    key,
                    entry: &entry,
                    armed: true,
                };
                match crate::failpoint::check("cache.extract")
                    .map_err(crate::error::PprError::from)
                    .and_then(|()| extract(g, self.cold.as_deref()))
                {
                    Ok(extracted) => {
                        unwind_guard.disarm();
                        // Resolve the extraction into the resident
                        // representation (`stored`), what this caller is
                        // served, and the cold/BFS accounting. A fresh
                        // BFS serves the caller the full extraction it
                        // just performed; a cold hit decodes the wire
                        // record and re-represents it per the configured
                        // ball store (`cold_ball`) — no BFS to charge
                        // either way.
                        let (stored, served, nodes, work) = match extracted {
                            ExtractedBall::Cold { ball, bytes } => {
                                self.count_cold_hit(consumer, mode, bytes);
                                let nodes = ball.global_ids().len();
                                let stored = self.cold_ball(ball);
                                (stored.clone(), stored, nodes, 0)
                            }
                            ExtractedBall::Fresh {
                                sub,
                                work,
                                fallback,
                            } => {
                                if fallback {
                                    self.count_cold_fallback(consumer, mode);
                                }
                                if mode != LookupMode::Warming {
                                    if let Some(c) = consumer {
                                        c.on_miss();
                                    }
                                }
                                self.count_extraction(consumer, mode);
                                let sub = Arc::new(sub);
                                let nodes = sub.num_nodes();
                                let stored = self.store_ball(&sub);
                                (stored, CachedBall::Full(sub), nodes, work)
                            }
                        };
                        let bytes = stored.memory_bytes_total();
                        // Admission is two gates: the policy's size gate,
                        // then budget reservation (which plans and evicts
                        // LRU victims until the candidate fits, applying
                        // the TinyLFU frequency-vs-victim comparison when
                        // configured). Probes never admit.
                        let admitted = mode != LookupMode::Probe
                            && self.admission.size_gate(nodes, seen_before)
                            && self.reserve_residency(key, bytes, candidate_freq);
                        if !admitted {
                            // Rejected: remove the entry from the map
                            // BEFORE publishing, so a rejected ball is
                            // never map-visible as a published resident —
                            // a concurrent admitter's eviction scan would
                            // otherwise count it and could evict an
                            // admitted entry in its place. Singleflight
                            // waiters hold the `Arc<Entry>` directly and
                            // are still served zero-copy below.
                            // A probe's non-admission is by design, not
                            // a policy rejection — only real rejections
                            // count.
                            if mode != LookupMode::Probe {
                                self.rejected.fetch_add(1, Ordering::Relaxed);
                                if let (Some(c), LookupMode::Demand) = (consumer, mode) {
                                    c.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            let mut map = self.shard_write(shard);
                            if let Some(current) = map.get(&key) {
                                if Arc::ptr_eq(current, &entry) {
                                    map.remove(&key);
                                }
                            }
                            entry
                                .published
                                .set(served.clone())
                                .unwrap_or_else(|_| unreachable!("only the winner publishes"));
                        } else {
                            // Publish under the shard write lock so the
                            // charge and the publication are atomic with
                            // respect to eviction/clear scans: under any
                            // shard lock, an in-map published entry is
                            // exactly charged. If the cache was cleared
                            // while we extracted (our pending entry is
                            // gone), release the reservation — the ball
                            // is still served, it is just not resident.
                            let map = self.shard_write(shard);
                            let still_resident = map
                                .get(&key)
                                .is_some_and(|current| Arc::ptr_eq(current, &entry));
                            if still_resident {
                                entry.charged_bytes.store(bytes, Ordering::Relaxed);
                            } else {
                                self.resident_entries.fetch_sub(1, Ordering::Relaxed);
                                self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
                            }
                            entry
                                .published
                                .set(stored)
                                .unwrap_or_else(|_| unreachable!("only the winner publishes"));
                        }
                        {
                            let mut state = self.entry_state(&entry);
                            *state = EntryState::Ready;
                        }
                        entry.ready.notify_all();
                        Ok((served, work))
                    }
                    // The still-armed guard's drop performs the
                    // Failed/notify/purge cleanup — the same path an
                    // unwinding panic takes.
                    Err(err) => {
                        if mode != LookupMode::Warming {
                            if let Some(c) = consumer {
                                c.on_miss();
                            }
                        }
                        Err(err)
                    }
                }
            }
        }
    }

    /// Counts one physical ball extraction (globally, and for the
    /// demanding consumer when the lookup is attributed).
    fn count_extraction(&self, consumer: Option<&CacheConsumer>, mode: LookupMode) {
        self.extractions.fetch_add(1, Ordering::Relaxed);
        if mode == LookupMode::Warming {
            return;
        }
        if let Some(c) = consumer {
            c.extractions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one RAM miss served from the cold tier (`bytes` read from
    /// the index, no BFS). The `extractions` counter deliberately does
    /// **not** move — it is the headline "BFS avoided" number the
    /// beyond-RAM benchmarks assert on.
    fn count_cold_hit(&self, consumer: Option<&CacheConsumer>, mode: LookupMode, bytes: usize) {
        self.cold_hits.fetch_add(1, Ordering::Relaxed);
        self.cold_bytes_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
        if mode == LookupMode::Warming {
            return;
        }
        if let Some(c) = consumer {
            c.on_cold_hit(bytes);
        }
    }

    /// Counts one RAM miss that consulted the cold tier and fell back to
    /// live BFS (the extraction itself is counted separately).
    fn count_cold_fallback(&self, consumer: Option<&CacheConsumer>, mode: LookupMode) {
        self.cold_fallbacks.fetch_add(1, Ordering::Relaxed);
        if mode == LookupMode::Warming {
            return;
        }
        if let Some(c) = consumer {
            c.cold_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reserves budget room for a `bytes`-sized candidate, evicting the
    /// globally least-recently-used published entries until it fits.
    /// Returns `false` (no reservation held, **nothing evicted**) when
    /// the candidate cannot or should not become resident:
    ///
    /// * it is larger than the whole byte budget;
    /// * nothing evictable remains and the budget is still full (every
    ///   other entry is pending/in-flight);
    /// * the [`AdmissionPolicy::FrequencyVsVictim`] comparison finds
    ///   *any* of the would-be victims at least as frequently demanded
    ///   as the candidate (`candidate_freq` is the candidate's sketch
    ///   count; `u32::MAX` bypasses the comparison). The whole victim
    ///   set is planned and frequency-checked **before** the first
    ///   eviction, so a rejected candidate never costs a resident its
    ///   slot.
    ///
    /// On `true`, both global counters have been advanced via CAS while
    /// their bound held, so a configured budget is **never** exceeded —
    /// not even transiently under concurrent inserts.
    fn reserve_residency(&self, keep: CacheKey, bytes: usize, candidate_freq: u32) -> bool {
        if self.budget.bytes.is_some_and(|cap| bytes > cap) {
            return false;
        }
        let victim_gate = matches!(self.admission, AdmissionPolicy::FrequencyVsVictim);
        loop {
            if self.try_reserve(bytes) {
                return true;
            }
            // Plan the complete victim set in ONE scan (LRU-first), so
            // admission costs one cache walk rather than one per
            // eviction — and so the frequency gate can veto the whole
            // plan before anything is evicted.
            let Some(victims) = self.plan_victims(keep, bytes) else {
                return false;
            };
            if victims.is_empty() {
                // Counters moved between the failed reservation and the
                // plan (another thread freed room): just retry.
                continue;
            }
            if victim_gate
                && victims
                    .iter()
                    .any(|&victim| self.sketch_frequency(victim) >= candidate_freq)
            {
                return false;
            }
            for victim in victims {
                // If a victim vanished meanwhile (a concurrent evicter
                // got it first), the outer retry re-plans.
                self.try_evict(victim);
            }
        }
    }

    /// One attempt to reserve `bytes` + one entry against the budget
    /// counters. Fails (without side effects) when a bound would be
    /// exceeded; CAS races retry internally.
    fn try_reserve(&self, bytes: usize) -> bool {
        loop {
            let entries = self.resident_entries.load(Ordering::Relaxed);
            let resident = self.resident_bytes.load(Ordering::Relaxed);
            let entries_fit = self.budget.entries.is_none_or(|cap| entries < cap);
            let bytes_fit = self.budget.bytes.is_none_or(|cap| resident + bytes <= cap);
            if !(entries_fit && bytes_fit) {
                return false;
            }
            if self
                .resident_entries
                .compare_exchange(entries, entries + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            match self.resident_bytes.compare_exchange(
                resident,
                resident + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    self.resident_entries.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
    }

    /// The least-recently-stamped published entries (other than `keep`)
    /// whose eviction would let a `bytes`-sized candidate fit, in
    /// eviction order. Equal stamps break ties by smallest key so
    /// single-threaded eviction order is reproducible. Returns `None`
    /// when even evicting every candidate victim cannot make room
    /// (admission should reject); an empty plan means the budget
    /// already fits.
    fn plan_victims(&self, keep: CacheKey, bytes: usize) -> Option<Vec<CacheKey>> {
        let mut residents: Vec<(u64, CacheKey, usize)> = Vec::new();
        for shard in self.shards.iter() {
            let map = self.shard_read(shard);
            for (&key, entry) in map.iter() {
                if key == keep || entry.published.get().is_none() {
                    continue;
                }
                residents.push((
                    entry.last_used.load(Ordering::Relaxed),
                    key,
                    entry.charged_bytes.load(Ordering::Relaxed),
                ));
            }
        }
        residents.sort_unstable();
        let entries = self.resident_entries.load(Ordering::Relaxed);
        let resident = self.resident_bytes.load(Ordering::Relaxed);
        let mut freed_entries = 0usize;
        let mut freed_bytes = 0usize;
        let mut plan = Vec::new();
        for (_, key, charged) in residents {
            let entries_left = entries.saturating_sub(freed_entries);
            let bytes_left = resident.saturating_sub(freed_bytes);
            let entries_fit = self.budget.entries.is_none_or(|cap| entries_left < cap);
            let bytes_fit = self
                .budget
                .bytes
                .is_none_or(|cap| bytes_left + bytes <= cap);
            if entries_fit && bytes_fit {
                return Some(plan);
            }
            plan.push(key);
            freed_entries += 1;
            freed_bytes += charged;
        }
        let entries_left = entries.saturating_sub(freed_entries);
        let bytes_left = resident.saturating_sub(freed_bytes);
        let entries_fit = self.budget.entries.is_none_or(|cap| entries_left < cap);
        let bytes_fit = self
            .budget
            .bytes
            .is_none_or(|cap| bytes_left + bytes <= cap);
        if entries_fit && bytes_fit {
            Some(plan)
        } else {
            None
        }
    }

    /// Evicts `key` if it is still a published resident, releasing its
    /// budget reservation. Returns whether an eviction happened.
    fn try_evict(&self, key: CacheKey) -> bool {
        let shard = self.shard_for(key);
        let mut map = self.shard_write(shard);
        let is_resident = map
            .get(&key)
            .is_some_and(|entry| entry.published.get().is_some());
        if !is_resident {
            return false;
        }
        let entry = map.remove(&key).expect("checked above");
        let bytes = entry.charged_bytes.swap(0, Ordering::Relaxed);
        self.resident_entries.fetch_sub(1, Ordering::Relaxed);
        self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A consistent-enough snapshot of the always-on counters (relaxed
    /// loads; exact once concurrent lookups have quiesced).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extractions: self.extractions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_admissions: self.rejected.load(Ordering::Relaxed),
            cold_hits: self.cold_hits.load(Ordering::Relaxed),
            cold_bytes_read: self.cold_bytes_read.load(Ordering::Relaxed),
            cold_fallbacks: self.cold_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Resident entries across all shards (ready and in-flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.shard_read(s).len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes: the exact global budget counter (O(1) relaxed
    /// load). This is the number admission reserves against; a
    /// configured [`CacheBudget::bytes`] bound is an invariant of this
    /// counter.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Resident bytes recomputed by summing every published entry's
    /// measured `Subgraph::memory_bytes().total()` (O(residents), takes
    /// every shard read lock). Once lookups quiesce this equals
    /// [`ConcurrentSubgraphCache::resident_bytes`] — asserted by the
    /// accounting property tests.
    pub fn resident_bytes_exact(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                self.shard_read(s)
                    .values()
                    .filter_map(|entry| entry.published.get())
                    .map(|ball| ball.memory_bytes_total())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Drops every resident entry (statistics are kept). In-flight
    /// extractions complete normally; their waiters are still served.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut map = self.shard_write(shard);
            for entry in map.values() {
                // Only charged residents release budget; pending entries
                // (whose winner validates membership at publish time)
                // never charged anything.
                let bytes = entry.charged_bytes.swap(0, Ordering::Relaxed);
                if bytes > 0 {
                    self.resident_entries.fetch_sub(1, Ordering::Relaxed);
                    self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
                }
            }
            map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn hit_returns_shared_arc() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(4);
        let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(work_a > 0);
        assert_eq!(work_b, 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_depths_are_distinct_entries() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(4);
        let a = cache.get_or_extract(&g, 0, 1).unwrap();
        let b = cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recent() {
        let g = generators::path(32).unwrap();
        let mut cache = SubgraphCache::new(2);
        cache.get_or_extract(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 1, 1).unwrap();
        // Touch node 0 so node 1 becomes the LRU victim.
        cache.get_or_extract(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 2, 1).unwrap(); // evicts (1, 1)
        assert_eq!(cache.len(), 2);
        let before = cache.misses();
        cache.get_or_extract(&g, 0, 1).unwrap(); // still cached
        assert_eq!(cache.misses(), before);
        cache.get_or_extract(&g, 1, 1).unwrap(); // was evicted
        assert_eq!(cache.misses(), before + 1);
    }

    #[test]
    fn lru_ties_break_by_smallest_key() {
        // Two entries with *equal* recency stamps cannot exist in the
        // sequential cache (the clock ticks per lookup), but the ordering
        // contract still holds: with distinct stamps the older entry goes;
        // the key tie-break is exercised through the comparator directly.
        let a = ((3u32, 1u32), 5u64);
        let b = ((1u32, 1u32), 5u64);
        let c = ((2u32, 1u32), 4u64);
        let victim = [a, b, c]
            .into_iter()
            .min_by_key(|&(key, stamp)| (stamp, key));
        assert_eq!(victim, Some(c)); // oldest stamp wins first…
        let victim = [a, b].into_iter().min_by_key(|&(key, stamp)| (stamp, key));
        assert_eq!(victim, Some(b)); // …then the smallest key
    }

    #[test]
    fn resident_bytes_and_clear() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(8);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1); // stats survive clear
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SubgraphCache::new(0);
    }

    #[test]
    fn errors_propagate() {
        let g = generators::path(3).unwrap();
        let mut cache = SubgraphCache::new(2);
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn concurrent_hits_share_one_extraction() {
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(16);
        let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(work_a > 0);
        assert_eq!(work_b, 0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.extractions), (1, 1, 1));
        assert_eq!(stats.lookups(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_fresh_extraction_bit_for_bit() {
        let g = generators::grid(7, 5).unwrap();
        let cache = ConcurrentSubgraphCache::new(8);
        for (seed, depth) in [(0u32, 2), (17, 3), (34, 1), (5, 0)] {
            let cached = cache.get_or_extract(&g, seed, depth).unwrap();
            let ball = meloppr_graph::bfs_ball(&g, seed, depth).unwrap();
            let fresh = Subgraph::extract(&g, &ball).unwrap();
            assert_eq!(cached.global_ids(), fresh.global_ids());
            assert_eq!(cached.num_edges(), fresh.num_edges());
            for local in 0..fresh.num_nodes() as NodeId {
                assert_eq!(cached.neighbors(local), fresh.neighbors(local));
                assert_eq!(cached.walk_degree(local), fresh.walk_degree(local));
            }
        }
    }

    #[test]
    fn scratch_extraction_matches_plain() {
        let g = generators::grid(6, 6).unwrap();
        let plain = ConcurrentSubgraphCache::new(8);
        let scratched = ConcurrentSubgraphCache::new(8);
        let mut scratch = ExtractScratch::new();
        for (seed, depth) in [(14u32, 2), (0, 1), (35, 3)] {
            let (a, wa) = plain.get_or_extract_counted(&g, seed, depth).unwrap();
            let (b, wb) = scratched
                .get_or_extract_with(&g, seed, depth, &mut scratch)
                .unwrap();
            assert_eq!(wa, wb);
            assert_eq!(a.global_ids(), b.global_ids());
            assert_eq!(a.num_edges(), b.num_edges());
        }
        assert_eq!(plain.stats(), scratched.stats());
    }

    #[test]
    fn eviction_respects_capacity_and_counts() {
        let g = generators::path(64).unwrap();
        // One shard so the capacity bound is exact.
        let cache = ConcurrentSubgraphCache::with_shards(4, 1);
        for seed in 0..8u32 {
            cache.get_or_extract(&g, seed, 1).unwrap();
        }
        assert!(cache.len() <= 4);
        let stats = cache.stats();
        assert_eq!(stats.extractions, 8);
        assert_eq!(stats.evictions, 4);
        // The most recent entry survived.
        cache.get_or_extract(&g, 7, 1).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn errors_propagate_and_leave_no_residue() {
        let g = generators::path(3).unwrap();
        let cache = ConcurrentSubgraphCache::new(4);
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
        assert!(cache.is_empty());
        // The failed key is re-attempted (and fails again) rather than
        // poisoning the cache.
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
        let ok = cache.get_or_extract(&g, 1, 1);
        assert!(ok.is_ok());
    }

    #[test]
    fn clear_keeps_stats_and_stays_usable() {
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(8);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().extractions, 1);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert_eq!(cache.stats().extractions, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ConcurrentSubgraphCache::new(0);
    }

    #[test]
    fn shard_count_clamped_and_reported() {
        let cache = ConcurrentSubgraphCache::new(4);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.capacity(), 4);
        let wide = ConcurrentSubgraphCache::with_shards(1024, 32);
        assert_eq!(wide.shard_count(), 32);
        assert!(format!("{wide:?}").contains("ConcurrentSubgraphCache"));
    }

    #[test]
    fn consumers_attribute_their_own_lookups() {
        let g = generators::path(32).unwrap();
        let cache = ConcurrentSubgraphCache::new(64);
        let a = CacheConsumer::new(16);
        let b = CacheConsumer::new(16);
        // Consumer A: 4 distinct misses + 4 repeat hits.
        for seed in 0..4u32 {
            cache.get_or_extract_counted_as(&g, seed, 1, &a).unwrap();
        }
        for seed in 0..4u32 {
            cache.get_or_extract_counted_as(&g, seed, 1, &a).unwrap();
        }
        // Consumer B: 2 hits on A's entries + 2 fresh misses.
        for seed in 0..2u32 {
            cache.get_or_extract_counted_as(&g, seed, 1, &b).unwrap();
        }
        for seed in 10..12u32 {
            cache.get_or_extract_counted_as(&g, seed, 1, &b).unwrap();
        }
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!((sa.hits, sa.misses, sa.extractions), (4, 4, 4));
        assert_eq!((sb.hits, sb.misses, sb.extractions), (2, 2, 2));
        assert_eq!(sa.lookups() + sb.lookups(), cache.stats().lookups());
        assert!((sa.hit_rate() - 0.5).abs() < 1e-12);
        // The global view sums both consumers.
        assert_eq!(cache.stats().extractions, 6);
    }

    #[test]
    fn windowed_rate_converges_after_traffic_shift() {
        let g = generators::path(512).unwrap();
        let cache = ConcurrentSubgraphCache::new(1024);
        let consumer = CacheConsumer::new(16);
        // Warm phase: one hot key looked up far beyond the window, so the
        // cumulative rate climbs towards 1.
        cache
            .get_or_extract_counted_as(&g, 0, 1, &consumer)
            .unwrap();
        for _ in 0..63 {
            cache
                .get_or_extract_counted_as(&g, 0, 1, &consumer)
                .unwrap();
        }
        let stale_cumulative = consumer.stats().hit_rate();
        assert!(stale_cumulative > 0.9);
        assert!(consumer.windowed_hit_rate() > 0.9);
        // Shift: 16 (= one window) never-seen seeds, all misses. The
        // window must converge to the new all-miss regime within one
        // window while the cumulative rate stays stale.
        for seed in 100..116u32 {
            cache
                .get_or_extract_counted_as(&g, seed, 1, &consumer)
                .unwrap();
        }
        assert_eq!(consumer.windowed_hit_rate(), 0.0);
        assert!(consumer.stats().hit_rate() > 0.7, "cumulative stays stale");
        assert!(consumer.decayed_hit_rate() < stale_cumulative);
        assert!(consumer.windowed_hit_rate() < consumer.stats().hit_rate());
    }

    #[test]
    fn ewma_tracks_window_direction() {
        let consumer = CacheConsumer::new(8);
        assert_eq!(consumer.decayed_hit_rate(), 0.0);
        consumer.record(true);
        assert!((consumer.decayed_hit_rate() - 1.0).abs() < 1e-12);
        for _ in 0..8 {
            consumer.record(false);
        }
        assert!(consumer.decayed_hit_rate() < 0.5);
        assert_eq!(consumer.windowed_hit_rate(), 0.0);
    }

    #[test]
    fn consumer_state_roundtrips_through_export_restore() {
        let consumer = CacheConsumer::new(8);
        // 3 misses then 5 frees, plus raw counter traffic.
        for _ in 0..3 {
            consumer.on_miss();
        }
        for _ in 0..4 {
            consumer.on_hit();
        }
        consumer.on_shared();
        consumer.extractions.store(3, Ordering::Relaxed);
        let state = consumer.export_state();
        assert_eq!(
            state.window,
            vec![false, false, false, true, true, true, true, true]
        );
        assert_eq!(state.stats.hits, 4);
        assert_eq!(state.stats.shared, 1);
        assert_eq!(state.stats.misses, 3);
        assert!(state.ewma.is_some());

        // Restore into a fresh consumer of the same window length: the
        // windowed and decayed rates are identical to the original's.
        let restored = CacheConsumer::new(8);
        restored.restore_state(&state);
        assert_eq!(restored.stats(), consumer.stats());
        assert_eq!(restored.windowed_hit_rate(), consumer.windowed_hit_rate());
        assert_eq!(restored.decayed_hit_rate(), consumer.decayed_hit_rate());
        assert_eq!(restored.export_state(), state);

        // A shorter window keeps the newest outcomes (all frees here).
        let short = CacheConsumer::new(4);
        short.restore_state(&state);
        assert_eq!(short.windowed_hit_rate(), 1.0);
        assert_eq!(short.export_state().window, vec![true, true, true, true]);

        // A wrapped ring exports oldest-first: overwrite the 8-slot ring
        // with 12 outcomes ending in 4 misses.
        for _ in 0..4 {
            consumer.on_miss();
        }
        let wrapped = consumer.export_state();
        assert_eq!(
            wrapped.window,
            vec![true, true, true, true, false, false, false, false]
        );
        // Restoring an empty/default state resets everything.
        consumer.restore_state(&ConsumerState::default());
        assert_eq!(consumer.stats(), ConsumerStats::default());
        assert_eq!(consumer.windowed_hit_rate(), 0.0);
        assert_eq!(consumer.decayed_hit_rate(), 0.0);
    }

    #[test]
    fn warming_counts_no_lookups_and_serves_hits() {
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(16);
        let consumer = CacheConsumer::new(8);
        cache.warm(&g, 0, 2).unwrap();
        cache.warm(&g, 0, 2).unwrap(); // idempotent, no second extraction
        let warmed = cache.stats();
        assert_eq!(warmed.extractions, 1);
        assert_eq!(warmed.lookups(), 0);
        // The first demand lookup is a hit — warming did its job without
        // polluting the hit rate.
        let (_, work) = cache
            .get_or_extract_counted_as(&g, 0, 2, &consumer)
            .unwrap();
        assert_eq!(work, 0);
        assert_eq!(consumer.stats().hits, 1);
        assert_eq!(consumer.stats().misses, 0);
        assert!((consumer.windowed_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warm_does_not_refresh_recency_of_resident_entries() {
        let g = generators::path(32).unwrap();
        let cache = ConcurrentSubgraphCache::with_shards(2, 1);
        cache.get_or_extract(&g, 0, 1).unwrap(); // A (oldest demand)
        cache.get_or_extract(&g, 1, 1).unwrap(); // B
                                                 // Re-warming A is not demand: it must NOT refresh A's recency.
        cache.warm(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 2, 1).unwrap(); // evicts A, not B
        let before = cache.stats().misses;
        cache.get_or_extract(&g, 1, 1).unwrap(); // B survived
        assert_eq!(cache.stats().misses, before);
        cache.get_or_extract(&g, 0, 1).unwrap(); // A was the victim
        assert_eq!(cache.stats().misses, before + 1);
    }

    #[test]
    fn max_nodes_admission_rejects_but_serves() {
        let g = generators::grid(8, 8).unwrap();
        // A depth-0 ball is 1 node; depth-3 balls are much larger.
        let cache =
            ConcurrentSubgraphCache::with_shards(8, 1).with_admission(AdmissionPolicy::MaxNodes(4));
        assert_eq!(cache.admission(), AdmissionPolicy::MaxNodes(4));
        let consumer = CacheConsumer::new(8);
        let small = cache
            .get_or_extract_counted_as(&g, 0, 0, &consumer)
            .unwrap();
        assert_eq!(small.0.num_nodes(), 1);
        let big = cache
            .get_or_extract_counted_as(&g, 27, 3, &consumer)
            .unwrap();
        assert!(big.0.num_nodes() > 4, "grid ball should exceed the budget");
        assert!(big.1 > 0, "rejected balls are still served (and paid for)");
        // Only the small ball is resident; the big one was rejected.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().rejected_admissions, 1);
        assert_eq!(consumer.stats().rejected_admissions, 1);
        // The big ball misses again; the small one still hits (the
        // rejected ball evicted nothing).
        cache
            .get_or_extract_counted_as(&g, 27, 3, &consumer)
            .unwrap();
        cache
            .get_or_extract_counted_as(&g, 0, 0, &consumer)
            .unwrap();
        let stats = consumer.stats();
        assert_eq!(stats.misses, 3); // small, big, big-again
        assert_eq!(stats.hits, 1); // small-again
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn frequency_gate_admits_on_second_sighting() {
        let g = generators::grid(8, 8).unwrap();
        let cache = ConcurrentSubgraphCache::with_shards(8, 1)
            .with_admission(AdmissionPolicy::FrequencyGated(4));
        let consumer = CacheConsumer::new(8);
        // First sighting of a big ball: extracted, served, rejected.
        cache
            .get_or_extract_counted_as(&g, 27, 3, &consumer)
            .unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().rejected_admissions, 1);
        // Second sighting: the key has proven demand, so it is admitted.
        let (_, work) = cache
            .get_or_extract_counted_as(&g, 27, 3, &consumer)
            .unwrap();
        assert!(work > 0);
        assert_eq!(cache.len(), 1);
        // Third lookup is a hit.
        let (_, work) = cache
            .get_or_extract_counted_as(&g, 27, 3, &consumer)
            .unwrap();
        assert_eq!(work, 0);
        assert_eq!(consumer.stats().hits, 1);
        // Small balls are admitted immediately regardless of frequency.
        cache
            .get_or_extract_counted_as(&g, 0, 0, &consumer)
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn admission_policy_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(
            AdmissionPolicy::from_str("always").unwrap(),
            AdmissionPolicy::Always
        );
        assert_eq!(
            AdmissionPolicy::from_str("max-nodes:128").unwrap(),
            AdmissionPolicy::MaxNodes(128)
        );
        assert_eq!(
            AdmissionPolicy::from_str("freq:64").unwrap(),
            AdmissionPolicy::FrequencyGated(64)
        );
        assert_eq!(
            AdmissionPolicy::from_str("tinylfu").unwrap(),
            AdmissionPolicy::FrequencyVsVictim
        );
        assert_eq!(
            AdmissionPolicy::from_str("freq-vs-victim").unwrap(),
            AdmissionPolicy::FrequencyVsVictim
        );
        assert!(AdmissionPolicy::from_str("max-nodes:0").is_err());
        assert!(AdmissionPolicy::from_str("freq:x").is_err());
        assert!(AdmissionPolicy::from_str("lfu").is_err());
        for policy in [
            AdmissionPolicy::Always,
            AdmissionPolicy::MaxNodes(7),
            AdmissionPolicy::FrequencyGated(9),
            AdmissionPolicy::FrequencyVsVictim,
        ] {
            assert_eq!(
                AdmissionPolicy::from_str(&policy.to_string()).unwrap(),
                policy
            );
        }
    }

    #[test]
    fn byte_budget_evicts_until_candidate_fits() {
        let g = generators::path(64).unwrap();
        // A depth-1 path ball (≤ 3 nodes) costs a fixed number of bytes;
        // budget exactly two of them.
        let one = Subgraph::extract(&g, &bfs_ball(&g, 10, 1).unwrap())
            .unwrap()
            .memory_bytes()
            .total();
        let cache = ConcurrentSubgraphCache::with_budget_and_shards(CacheBudget::bytes(2 * one), 1);
        assert_eq!(cache.budget(), CacheBudget::bytes(2 * one));
        cache.get_or_extract(&g, 10, 1).unwrap();
        cache.get_or_extract(&g, 20, 1).unwrap();
        assert_eq!(cache.resident_bytes(), 2 * one);
        assert_eq!(cache.stats().evictions, 0);
        // The third ball fits only after evicting the LRU first.
        cache.get_or_extract(&g, 30, 1).unwrap();
        assert_eq!(cache.resident_bytes(), 2 * one);
        assert_eq!(cache.resident_bytes_exact(), 2 * one);
        assert_eq!(cache.stats().evictions, 1);
        // Key 10 was the victim; 20 and 30 still hit.
        let misses = cache.stats().misses;
        cache.get_or_extract(&g, 20, 1).unwrap();
        cache.get_or_extract(&g, 30, 1).unwrap();
        assert_eq!(cache.stats().misses, misses);
        cache.get_or_extract(&g, 10, 1).unwrap();
        assert_eq!(cache.stats().misses, misses + 1);
    }

    #[test]
    fn ball_larger_than_whole_byte_budget_is_rejected_but_served() {
        let g = generators::grid(8, 8).unwrap();
        // Budget far below any depth-2 grid ball.
        let cache = ConcurrentSubgraphCache::with_budget_and_shards(CacheBudget::bytes(64), 1);
        let (sub, work) = cache.get_or_extract_counted(&g, 27, 2).unwrap();
        assert!(sub.num_nodes() > 1);
        assert!(work > 0, "rejected balls are still served");
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.stats().rejected_admissions, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn entry_and_byte_budgets_compose() {
        let g = generators::path(64).unwrap();
        let one = Subgraph::extract(&g, &bfs_ball(&g, 10, 1).unwrap())
            .unwrap()
            .memory_bytes()
            .total();
        // Bytes would allow 4 balls; entries cap at 2 — the tighter
        // bound governs.
        let cache = ConcurrentSubgraphCache::with_budget_and_shards(
            CacheBudget::bytes(4 * one).with_entries(2),
            1,
        );
        for seed in [10u32, 20, 30, 40] {
            cache.get_or_extract(&g, seed, 1).unwrap();
        }
        assert_eq!(cache.resident_entries(), 2);
        assert_eq!(cache.resident_bytes(), 2 * one);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn tinylfu_admits_only_when_candidate_beats_victim() {
        let g = generators::path(256).unwrap();
        let cache = ConcurrentSubgraphCache::with_budget_and_shards(CacheBudget::entries(2), 1)
            .with_admission(AdmissionPolicy::FrequencyVsVictim);
        // While under budget, everything is admitted.
        cache.get_or_extract(&g, 10, 1).unwrap(); // freq(10) = 1
        cache.get_or_extract(&g, 20, 1).unwrap(); // freq(20) = 1
        cache.get_or_extract(&g, 20, 1).unwrap(); // hit, freq unchanged
        assert_eq!(cache.len(), 2);
        // A cold candidate (freq 1) does not beat the LRU victim
        // (key 10, freq 1): rejected, nothing evicted.
        cache.get_or_extract(&g, 30, 1).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().rejected_admissions, 1);
        assert_eq!(cache.stats().evictions, 0);
        let misses = cache.stats().misses;
        cache.get_or_extract(&g, 10, 1).unwrap(); // still resident
        assert_eq!(cache.stats().misses, misses);
        // The second sighting of key 30 (sketch count 2) beats the LRU
        // victim (key 20 — demanded once; hits are not sketch
        // sightings, so its count stayed 1): admitted, 20 evicted.
        cache.get_or_extract(&g, 30, 1).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        let misses = cache.stats().misses;
        cache.get_or_extract(&g, 30, 1).unwrap();
        assert_eq!(cache.stats().misses, misses, "admitted ball must hit");
    }

    #[test]
    fn tinylfu_rejection_never_evicts_even_when_multiple_victims_were_needed() {
        let g = generators::path(64).unwrap();
        let small = Subgraph::extract(&g, &bfs_ball(&g, 10, 1).unwrap())
            .unwrap()
            .memory_bytes()
            .total();
        let big = Subgraph::extract(&g, &bfs_ball(&g, 50, 2).unwrap())
            .unwrap()
            .memory_bytes()
            .total();
        // The candidate must need BOTH residents evicted to fit.
        assert!(small < big && big <= 2 * small, "setup: S < big <= 2S");
        let cache =
            ConcurrentSubgraphCache::with_budget_and_shards(CacheBudget::bytes(2 * small), 1)
                .with_admission(AdmissionPolicy::FrequencyVsVictim);
        // Sketch frequencies survive clear(): demand the hot key twice
        // (with a clear between, so both demands are misses), the cold
        // key once. Residents afterwards: cold (LRU, freq 1), hot
        // (freq 2); the byte budget is exactly full.
        cache.get_or_extract(&g, 30, 1).unwrap(); // hot, freq 1
        cache.clear();
        cache.get_or_extract(&g, 10, 1).unwrap(); // cold, freq 1
        cache.get_or_extract(&g, 30, 1).unwrap(); // hot again, freq 2
        assert_eq!(cache.resident_bytes(), 2 * small);

        // First sighting of the big candidate (freq 1): the LRU victim
        // (cold, freq 1) already ties it — rejected, nothing evicted.
        cache.get_or_extract(&g, 50, 2).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().rejected_admissions, 1);
        // Second sighting (freq 2): the victim PLAN is [cold, hot]; the
        // cold victim (freq 1) loses to the candidate, but the hot one
        // (freq 2) does not. The whole plan must be vetoed BEFORE any
        // eviction — the old incremental loop evicted the cold resident
        // first and then rejected, costing an admitted entry for
        // nothing.
        cache.get_or_extract(&g, 50, 2).unwrap();
        assert_eq!(cache.stats().evictions, 0, "rejection must evict nothing");
        assert_eq!(cache.resident_bytes(), 2 * small);
        let misses = cache.stats().misses;
        cache.get_or_extract(&g, 10, 1).unwrap(); // cold resident intact
        cache.get_or_extract(&g, 30, 1).unwrap(); // hot resident intact
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn budget_probe_serves_without_admitting_and_admit_extracted_publishes() {
        let g = generators::path(64).unwrap();
        let cache = ConcurrentSubgraphCache::with_shards(8, 1);
        let consumer = CacheConsumer::new(8);
        let mut scratch = ExtractScratch::new();
        // A probe miss extracts and counts, but nothing becomes resident.
        let (sub, work) = cache
            .probe_or_extract_with_as(&g, 10, 2, &mut scratch, &consumer)
            .unwrap();
        assert!(work > 0);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(consumer.stats().misses, 1);
        assert_eq!(consumer.stats().extractions, 1);
        assert_eq!(cache.stats().rejected_admissions, 0, "not a rejection");
        // Explicit admission makes it resident without a lookup or BFS.
        cache.admit_extracted(10, 2, &sub, Some(&consumer));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), sub.memory_bytes().total());
        assert_eq!(cache.stats().extractions, 1);
        // The admitted ball now hits — for probes and demand alike.
        let (again, work) = cache
            .probe_or_extract_with_as(&g, 10, 2, &mut scratch, &consumer)
            .unwrap();
        assert!(Arc::ptr_eq(&sub, &again));
        assert_eq!(work, 0);
        assert_eq!(consumer.stats().hits, 1);
        // Re-admitting is a no-op.
        cache.admit_extracted(10, 2, &sub, Some(&consumer));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn global_entry_budget_is_exact_across_shards() {
        // The per-shard rounding regression: 16 entries over 8 shards
        // used to admit up to ceil(16/8) per shard = 16 + 7 extra under
        // unlucky hashing. The global counter holds the bound exactly.
        let g = generators::path(512).unwrap();
        let cache = ConcurrentSubgraphCache::with_shards(16, 8);
        for seed in 0..128u32 {
            cache.get_or_extract(&g, seed, 1).unwrap();
        }
        assert_eq!(cache.resident_entries(), 16);
        assert!(cache.len() <= 16);
        assert_eq!(cache.stats().evictions, 128 - 16);
        assert_eq!(cache.resident_bytes(), cache.resident_bytes_exact());
    }

    #[test]
    fn owned_cache_window_and_warm() {
        let g = generators::path(32).unwrap();
        let mut cache = SubgraphCache::with_window(8, 4);
        assert_eq!(cache.recent_hit_rate(), 0.0);
        cache.warm(&g, 0, 1).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.len(), 1);
        cache.get_or_extract(&g, 0, 1).unwrap(); // hit on the warmed ball
        assert_eq!(cache.hits(), 1);
        assert!((cache.recent_hit_rate() - 1.0).abs() < 1e-12);
        // Four misses roll the hit out of the 4-lookup window.
        for seed in 10..14u32 {
            cache.get_or_extract(&g, seed, 1).unwrap();
        }
        assert_eq!(cache.recent_hit_rate(), 0.0);
        cache.set_window(2);
        assert_eq!(cache.recent_hit_rate(), 0.0);
        cache.get_or_extract(&g, 13, 1).unwrap();
        assert!((cache.recent_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisoned_shard_recovers_clear_and_continue() {
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(8);
        let (first, work) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(work > 0);
        // Poison the shard holding (0, 2) by panicking while its write
        // lock is held — the worst-case co-tenant failure.
        let shard = cache.shard_for((0, 2));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.map.write().unwrap();
            panic!("injected poison");
        }));
        assert!(unwound.is_err());
        assert!(shard.map.is_poisoned());
        // The next lookup recovers clear-and-continue: the shard's
        // residents were dropped (budget released), the lookup
        // re-extracts, and the recovery is counted.
        let (second, work) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(work > 0, "cleared shard must re-extract");
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(cache.poison_recoveries(), 1);
        assert!(!shard.map.is_poisoned());
        // Accounting stayed exact through the clear.
        assert_eq!(cache.resident_bytes(), cache.resident_bytes_exact());
        // And the cache keeps serving: a re-hit shares the new resident.
        let (third, work) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(Arc::ptr_eq(&second, &third));
        assert_eq!(work, 0);
    }

    #[test]
    fn panicking_extraction_fails_pending_entry_instead_of_deadlocking() {
        // A panic inside the winner's `extract` (e.g. an injected
        // `cache.extract` panic fault) must not strand the pending
        // entry: waiters would block on its condvar forever. The unwind
        // guard fails and purges it, so a later lookup re-extracts.
        let g = generators::karate_club();
        let cache = ConcurrentSubgraphCache::new(8);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache
                .lookup(&g, 7, 2, None, LookupMode::Demand, |_, _| {
                    panic!("extraction blew up")
                })
                .map(|_| ())
        }));
        assert!(unwound.is_err());
        // No deadlock and no stranded entry: the key extracts fresh.
        let (ball, work) = cache.get_or_extract_counted(&g, 7, 2).unwrap();
        assert!(work > 0);
        assert!(ball.num_nodes() > 0);
        assert_eq!(cache.resident_bytes(), cache.resident_bytes_exact());
    }
}

#[cfg(test)]
mod engine_integration_tests {
    use super::*;
    use crate::{MelopprEngine, MelopprParams, PprParams, SelectionStrategy};
    use meloppr_graph::generators::corpus::PaperGraph;

    #[test]
    fn cached_query_matches_uncached_and_saves_bfs() {
        let g = PaperGraph::G2Cora.generate_scaled(0.2, 3).unwrap();
        let params = MelopprParams {
            ppr: PprParams::new(0.85, 6, 30).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.1),
            ..MelopprParams::paper_defaults()
        };
        let engine = MelopprEngine::new(&g, params).unwrap();
        let mut cache = SubgraphCache::new(512);

        let plain = engine.query(7).unwrap();
        let first = engine.query_cached_impl(7, &mut cache).unwrap();
        assert_eq!(first.ranking, plain.ranking);
        assert_eq!(first.stats.bfs_edges_scanned, plain.stats.bfs_edges_scanned);

        // Second identical query: all sub-graphs served from cache.
        let second = engine.query_cached_impl(7, &mut cache).unwrap();
        assert_eq!(second.ranking, plain.ranking);
        assert_eq!(second.stats.bfs_edges_scanned, 0);
        assert!(cache.hits() >= plain.stats.total_diffusions);

        // A nearby query shares hub sub-graphs: strictly less BFS work.
        let third = engine.query_cached_impl(8, &mut cache).unwrap();
        let fresh = engine.query(8).unwrap();
        assert_eq!(third.ranking, fresh.ranking);
        assert!(third.stats.bfs_edges_scanned <= fresh.stats.bfs_edges_scanned);
    }
}
