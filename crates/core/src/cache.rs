//! Sub-graph caching for repeated queries ("adaptively loading only the
//! necessary sub-graphs", §IV-A).
//!
//! A PPR server answers many queries against the same graph, and popular
//! next-stage nodes (hubs) recur across queries. Re-running BFS + induced
//! extraction for them is the dominant host cost (Fig. 7's light-blue
//! bars), so [`SubgraphCache`] memoizes extracted balls keyed by
//! `(node, depth)` with LRU eviction, and
//! the cached [`backend::Meloppr`](crate::backend::Meloppr) mode
//! consumes it — charging zero BFS work on hits.
//!
//! The cache stores [`Arc<Subgraph>`] so concurrent readers can share
//! entries without copying.

use std::sync::Arc;

use meloppr_graph::{bfs_ball, FastHashMap, GraphView, NodeId, Subgraph};

use crate::error::Result;

struct Slot {
    sub: Arc<Subgraph>,
    last_used: u64,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("nodes", &self.sub.num_nodes())
            .field("last_used", &self.last_used)
            .finish()
    }
}

/// An LRU cache of extracted BFS-ball sub-graphs.
///
/// # Examples
///
/// ```
/// use meloppr_core::cache::SubgraphCache;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let mut cache = SubgraphCache::new(16);
/// let a = cache.get_or_extract(&g, 0, 2)?;
/// let b = cache.get_or_extract(&g, 0, 2)?; // served from cache
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SubgraphCache {
    capacity: usize,
    entries: FastHashMap<(NodeId, u32), Slot>,
    clock: u64,
    hits: usize,
    misses: usize,
}

impl SubgraphCache {
    /// Creates a cache holding at most `capacity` sub-graphs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        SubgraphCache {
            capacity,
            entries: FastHashMap::default(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached ball around `(node, depth)`, extracting and
    /// inserting it on a miss (evicting the least-recently-used entry when
    /// full).
    ///
    /// The second tuple element is the BFS work performed: 0 on a hit, the
    /// scanned adjacency entries on a miss.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<Arc<Subgraph>> {
        Ok(self.get_or_extract_counted(g, node, depth)?.0)
    }

    /// As [`SubgraphCache::get_or_extract`], additionally reporting the
    /// BFS work performed (0 on hits).
    ///
    /// # Errors
    ///
    /// Propagates graph errors from extraction on misses.
    pub fn get_or_extract_counted<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        node: NodeId,
        depth: u32,
    ) -> Result<(Arc<Subgraph>, usize)> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.entries.get_mut(&(node, depth)) {
            slot.last_used = clock;
            self.hits += 1;
            return Ok((Arc::clone(&slot.sub), 0));
        }
        self.misses += 1;
        let ball = bfs_ball(g, node, depth)?;
        let sub = Arc::new(Subgraph::extract(g, &ball)?);
        if self.entries.len() >= self.capacity {
            // O(capacity) eviction scan: capacities are modest (hundreds
            // to thousands), and extraction dwarfs the scan.
            if let Some(&key) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&key);
            }
        }
        self.entries.insert(
            (node, depth),
            Slot {
                sub: Arc::clone(&sub),
                last_used: clock,
            },
        );
        Ok((sub, ball.edges_scanned))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes (sum of cached sub-graph footprints).
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|s| s.sub.memory_bytes().total())
            .sum()
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meloppr_graph::generators;

    #[test]
    fn hit_returns_shared_arc() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(4);
        let (a, work_a) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        let (b, work_b) = cache.get_or_extract_counted(&g, 0, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(work_a > 0);
        assert_eq!(work_b, 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_depths_are_distinct_entries() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(4);
        let a = cache.get_or_extract(&g, 0, 1).unwrap();
        let b = cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recent() {
        let g = generators::path(32).unwrap();
        let mut cache = SubgraphCache::new(2);
        cache.get_or_extract(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 1, 1).unwrap();
        // Touch node 0 so node 1 becomes the LRU victim.
        cache.get_or_extract(&g, 0, 1).unwrap();
        cache.get_or_extract(&g, 2, 1).unwrap(); // evicts (1, 1)
        assert_eq!(cache.len(), 2);
        let before = cache.misses();
        cache.get_or_extract(&g, 0, 1).unwrap(); // still cached
        assert_eq!(cache.misses(), before);
        cache.get_or_extract(&g, 1, 1).unwrap(); // was evicted
        assert_eq!(cache.misses(), before + 1);
    }

    #[test]
    fn resident_bytes_and_clear() {
        let g = generators::karate_club();
        let mut cache = SubgraphCache::new(8);
        cache.get_or_extract(&g, 0, 2).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1); // stats survive clear
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SubgraphCache::new(0);
    }

    #[test]
    fn errors_propagate() {
        let g = generators::path(3).unwrap();
        let mut cache = SubgraphCache::new(2);
        assert!(cache.get_or_extract(&g, 99, 1).is_err());
    }
}

#[cfg(test)]
mod engine_integration_tests {
    use super::*;
    use crate::{MelopprEngine, MelopprParams, PprParams, SelectionStrategy};
    use meloppr_graph::generators::corpus::PaperGraph;

    #[test]
    fn cached_query_matches_uncached_and_saves_bfs() {
        let g = PaperGraph::G2Cora.generate_scaled(0.2, 3).unwrap();
        let params = MelopprParams {
            ppr: PprParams::new(0.85, 6, 30).unwrap(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.1),
            ..MelopprParams::paper_defaults()
        };
        let engine = MelopprEngine::new(&g, params).unwrap();
        let mut cache = SubgraphCache::new(512);

        let plain = engine.query(7).unwrap();
        let first = engine.query_cached_impl(7, &mut cache).unwrap();
        assert_eq!(first.ranking, plain.ranking);
        assert_eq!(first.stats.bfs_edges_scanned, plain.stats.bfs_edges_scanned);

        // Second identical query: all sub-graphs served from cache.
        let second = engine.query_cached_impl(7, &mut cache).unwrap();
        assert_eq!(second.ranking, plain.ranking);
        assert_eq!(second.stats.bfs_edges_scanned, 0);
        assert!(cache.hits() >= plain.stats.total_diffusions);

        // A nearby query shares hub sub-graphs: strictly less BFS work.
        let third = engine.query_cached_impl(8, &mut cache).unwrap();
        let fresh = engine.query(8).unwrap();
        assert_eq!(third.ranking, fresh.ranking);
        assert!(third.stats.bfs_edges_scanned <= fresh.stats.bfs_edges_scanned);
    }
}
