//! Shared test helpers (compiled only for `cfg(test)`).

use crate::score_vec::Ranking;

/// Asserts two rankings are equal up to floating-point noise.
///
/// Decomposed evaluation (Eq. 8) rounds differently from direct evaluation
/// (Eq. 1), so nodes with *exactly tied* true scores may legally appear in
/// either order — or, at the k-th boundary, be swapped for one another.
/// This helper therefore checks:
///
/// 1. same length;
/// 2. pairwise position scores agree within `tol` (the score *profile* is
///    identical);
/// 3. any node present in only one ranking is tied (within `tol`) with the
///    other ranking's boundary score — i.e. only boundary ties differ.
pub(crate) fn assert_ranking_equiv(a: &Ranking, b: &Ranking, tol: f64) {
    assert_eq!(a.len(), b.len(), "ranking lengths differ: {a:?} vs {b:?}");
    for (i, (&(_, sa), &(_, sb))) in a.iter().zip(b).enumerate() {
        assert!(
            (sa - sb).abs() <= tol,
            "position {i}: score profile differs ({sa} vs {sb})"
        );
    }
    let a_ids: std::collections::HashSet<_> = a.iter().map(|&(v, _)| v).collect();
    let b_ids: std::collections::HashSet<_> = b.iter().map(|&(v, _)| v).collect();
    let a_boundary = a.last().map_or(0.0, |&(_, s)| s);
    let b_boundary = b.last().map_or(0.0, |&(_, s)| s);
    for &(v, s) in a {
        if !b_ids.contains(&v) {
            assert!(
                (s - b_boundary).abs() <= tol,
                "node {v} (score {s}) only in first ranking and not a boundary tie"
            );
        }
    }
    for &(v, s) in b {
        if !a_ids.contains(&v) {
            assert!(
                (s - a_boundary).abs() <= tol,
                "node {v} (score {s}) only in second ranking and not a boundary tie"
            );
        }
    }
}
