//! The baseline: single-stage local PPR (`LocalPPR-CPU` in the paper).
//!
//! This is the Fig. 2(b) strategy the paper compares against: extract the
//! whole depth-`L` BFS ball `G_L(s)`, load it, and run one length-`L`
//! diffusion on it. It is *exact* (equal to full-graph diffusion — the
//! ball-exactness property), but its memory footprint is proportional to
//! the exponentially-growing `G_L(s)`, which is precisely what MeLoPPR's
//! stage decomposition avoids.

use meloppr_graph::NodeId;

use crate::memory::CpuTaskMemory;
use crate::score_vec::Ranking;

/// Work and memory accounting of one baseline query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalPprStats {
    /// Nodes in the depth-`L` ball `G_L(s)`.
    pub ball_nodes: usize,
    /// Undirected edges induced in the ball.
    pub ball_edges: usize,
    /// Adjacency entries scanned by the extraction BFS.
    pub bfs_edges_scanned: usize,
    /// Adjacency entries processed by the diffusion.
    pub diffusion_edge_updates: usize,
    /// Modelled CPU memory of the query (see
    /// [`cpu_task_memory`](crate::memory::cpu_task_memory)).
    pub memory: CpuTaskMemory,
}

/// Result of one baseline query.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalPprResult {
    /// The top-`k` ranking, in parent-graph node ids.
    pub ranking: Ranking,
    /// All non-zero accumulated scores, in parent-graph node ids
    /// (unsorted).
    pub scores: Vec<(NodeId, f64)>,
    /// Work and memory accounting.
    pub stats: LocalPprStats,
}

/// Runs the single-stage local PPR baseline (the allocating reference
/// path the test suite pins the workspace-backed
/// [`backend::LocalPpr`](crate::backend::LocalPpr) against).
#[cfg(test)]
pub(crate) fn local_ppr_impl<G: meloppr_graph::GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    params: &crate::params::PprParams,
) -> crate::error::Result<LocalPprResult> {
    use crate::diffusion::{diffuse_from_seed, DiffusionConfig};
    use crate::score_vec::top_k_sparse;
    use meloppr_graph::{bfs_ball, Subgraph};

    params.validate()?;
    let ball = bfs_ball(g, seed, params.length as u32)?;
    let sub = Subgraph::extract(g, &ball)?;
    let config = DiffusionConfig::new(params.alpha, params.length)?;
    let out = diffuse_from_seed(&sub, sub.seed_local(), config)?;

    let scores: Vec<(NodeId, f64)> = out
        .accumulated
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s > 0.0)
        .map(|(local, &s)| (sub.to_global(local as NodeId), s))
        .collect();
    let ranking = top_k_sparse(&scores, params.k);

    Ok(LocalPprResult {
        ranking,
        scores,
        stats: LocalPprStats {
            ball_nodes: ball.num_nodes(),
            ball_edges: sub.num_edges(),
            bfs_edges_scanned: ball.edges_scanned,
            diffusion_edge_updates: out.work.edge_updates,
            memory: crate::memory::cpu_task_memory(ball.num_nodes(), sub.num_edges()),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_top_k;
    use crate::params::PprParams;
    use meloppr_graph::generators;

    #[test]
    fn ball_exactness_matches_full_graph() {
        // Local PPR on the depth-L ball must equal exact full-graph
        // diffusion: interior degrees are preserved and frontier nodes
        // never propagate within L steps. (Rankings are compared modulo
        // floating-point reordering of exactly-tied scores.)
        let g = generators::karate_club();
        for seed in [0u32, 5, 16, 33] {
            for length in [1usize, 2, 4, 6] {
                let params = PprParams::new(0.85, length, 10).unwrap();
                let local = local_ppr_impl(&g, seed, &params).unwrap();
                let exact = exact_top_k(&g, seed, &params).unwrap();
                crate::test_util::assert_ranking_equiv(&local.ranking, &exact, 1e-9);
            }
        }
    }

    #[test]
    fn exact_scores_match_not_just_ranking() {
        let g = generators::grid(8, 8).unwrap();
        let params = PprParams::new(0.85, 4, 64).unwrap();
        let local = local_ppr_impl(&g, 27, &params).unwrap();
        let full = crate::ground_truth::exact_ppr(&g, 27, &params).unwrap();
        for &(v, s) in &local.scores {
            assert!((s - full.accumulated[v as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::karate_club();
        let params = PprParams::paper_defaults();
        let r = local_ppr_impl(&g, 0, &params).unwrap();
        assert!(r.stats.ball_nodes > 1);
        assert!(r.stats.ball_edges > 0);
        assert!(r.stats.bfs_edges_scanned > 0);
        assert!(r.stats.diffusion_edge_updates > 0);
        assert!(r.stats.memory.total() > 0);
    }

    #[test]
    fn isolated_seed_returns_itself() {
        let g = meloppr_graph::CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let params = PprParams::new(0.85, 3, 5).unwrap();
        let r = local_ppr_impl(&g, 2, &params).unwrap();
        assert_eq!(r.ranking, vec![(2, 1.0)]);
    }

    #[test]
    fn invalid_seed_rejected() {
        let g = generators::path(4).unwrap();
        let params = PprParams::new(0.85, 2, 2).unwrap();
        assert!(local_ppr_impl(&g, 99, &params).is_err());
    }

    #[test]
    fn ranking_is_truncated_to_k() {
        let g = generators::complete(20).unwrap();
        let params = PprParams::new(0.85, 2, 7).unwrap();
        let r = local_ppr_impl(&g, 0, &params).unwrap();
        assert_eq!(r.ranking.len(), 7);
        assert!(r.scores.len() > 7);
    }
}
