//! Next-stage node selection — the sparsity exploitation of §IV-D.
//!
//! After a stage diffusion, the residual vector `Sʳ` is extremely sparse:
//! most of its mass sits on a handful of nodes (Fig. 6, bottom). MeLoPPR
//! therefore expands only the most promising *next-stage nodes*, chosen in
//! descending residual-score order. The strategies here control how many of
//! the sorted candidates are expanded and thereby trade latency for
//! precision (Fig. 6 top, Fig. 7).

use meloppr_graph::NodeId;

use crate::error::{PprError, Result};

/// How many next-stage nodes to expand, applied to candidates sorted by
/// descending residual score (ties broken by ascending node id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionStrategy {
    /// Expand every node with non-zero residual: exact MeLoPPR (Eq. 8).
    All,
    /// Expand the top `ρ` fraction of the non-zero residual nodes
    /// (`0 ≤ ρ ≤ 1`), rounding up so any `ρ > 0` expands at least one
    /// node. Fig. 6 sweeps this knob from 0 % to 30 %.
    TopFraction(f64),
    /// Expand exactly the top `n` nodes (or all, if fewer exist).
    TopCount(usize),
    /// Expand every node whose residual score is at least `τ` times the
    /// largest residual score (`0 < τ ≤ 1`).
    RelativeThreshold(f64),
}

impl SelectionStrategy {
    /// Validates the strategy's parameter domain.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] for fractions outside `[0, 1]`
    /// or thresholds outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            SelectionStrategy::All | SelectionStrategy::TopCount(_) => Ok(()),
            SelectionStrategy::TopFraction(f) => {
                if (0.0..=1.0).contains(&f) {
                    Ok(())
                } else {
                    Err(PprError::InvalidParams {
                        reason: format!("selection fraction {f} outside [0, 1]"),
                    })
                }
            }
            SelectionStrategy::RelativeThreshold(t) => {
                if t > 0.0 && t <= 1.0 {
                    Ok(())
                } else {
                    Err(PprError::InvalidParams {
                        reason: format!("relative threshold {t} outside (0, 1]"),
                    })
                }
            }
        }
    }

    /// Sorts the candidates by descending score (ascending id on ties) and
    /// truncates them according to the strategy. Zero-score candidates are
    /// dropped first.
    pub fn select(&self, mut candidates: Vec<(NodeId, f64)>) -> Vec<(NodeId, f64)> {
        self.select_in_place(&mut candidates);
        candidates
    }

    /// Upper bound on how many of `candidates` nodes this strategy can
    /// select — the worst case the memory-budget gate plans for before a
    /// task runs ([`select_in_place`](SelectionStrategy::select_in_place)
    /// never keeps more than this).
    pub fn upper_bound(&self, candidates: usize) -> usize {
        match *self {
            SelectionStrategy::All | SelectionStrategy::RelativeThreshold(_) => candidates,
            SelectionStrategy::TopFraction(f) => {
                if f <= 0.0 {
                    0
                } else {
                    ((candidates as f64 * f).ceil() as usize).min(candidates)
                }
            }
            SelectionStrategy::TopCount(n) => n.min(candidates),
        }
    }

    /// As [`SelectionStrategy::select`], but operates on a caller-owned
    /// buffer in place (sort + truncate, no allocation). After the call,
    /// `candidates` holds exactly the selected entries in selection order.
    pub fn select_in_place(&self, candidates: &mut Vec<(NodeId, f64)>) {
        candidates.retain(|&(_, s)| s > 0.0);
        candidates.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let keep = match *self {
            SelectionStrategy::All => candidates.len(),
            SelectionStrategy::TopFraction(f) => {
                if f <= 0.0 {
                    0
                } else {
                    ((candidates.len() as f64 * f).ceil() as usize).min(candidates.len())
                }
            }
            SelectionStrategy::TopCount(n) => n.min(candidates.len()),
            SelectionStrategy::RelativeThreshold(t) => {
                let max = candidates.first().map_or(0.0, |&(_, s)| s);
                let cut = max * t;
                candidates.iter().take_while(|&&(_, s)| s >= cut).count()
            }
        };
        candidates.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<(NodeId, f64)> {
        vec![(0, 0.1), (1, 0.4), (2, 0.0), (3, 0.2), (4, 0.3)]
    }

    #[test]
    fn all_keeps_nonzero_sorted() {
        let sel = SelectionStrategy::All.select(candidates());
        assert_eq!(sel, vec![(1, 0.4), (4, 0.3), (3, 0.2), (0, 0.1)]);
    }

    #[test]
    fn top_fraction_rounds_up() {
        // 4 non-zero candidates, 30 % -> ceil(1.2) = 2.
        let sel = SelectionStrategy::TopFraction(0.3).select(candidates());
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].0, 1);
    }

    #[test]
    fn top_fraction_zero_selects_none() {
        assert!(SelectionStrategy::TopFraction(0.0)
            .select(candidates())
            .is_empty());
    }

    #[test]
    fn top_fraction_tiny_selects_one() {
        let sel = SelectionStrategy::TopFraction(1e-6).select(candidates());
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn top_count_caps_at_available() {
        assert_eq!(SelectionStrategy::TopCount(2).select(candidates()).len(), 2);
        assert_eq!(
            SelectionStrategy::TopCount(99).select(candidates()).len(),
            4
        );
        assert!(SelectionStrategy::TopCount(0)
            .select(candidates())
            .is_empty());
    }

    #[test]
    fn relative_threshold_filters() {
        // max = 0.4; τ = 0.5 -> cut 0.2: keeps 0.4, 0.3, 0.2.
        let sel = SelectionStrategy::RelativeThreshold(0.5).select(candidates());
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn ties_break_by_node_id() {
        let sel = SelectionStrategy::TopCount(2).select(vec![(5, 0.3), (1, 0.3), (9, 0.3)]);
        assert_eq!(sel, vec![(1, 0.3), (5, 0.3)]);
    }

    #[test]
    fn validation() {
        assert!(SelectionStrategy::All.validate().is_ok());
        assert!(SelectionStrategy::TopFraction(0.02).validate().is_ok());
        assert!(SelectionStrategy::TopFraction(-0.1).validate().is_err());
        assert!(SelectionStrategy::TopFraction(1.1).validate().is_err());
        assert!(SelectionStrategy::RelativeThreshold(0.0)
            .validate()
            .is_err());
        assert!(SelectionStrategy::RelativeThreshold(1.0).validate().is_ok());
        assert!(SelectionStrategy::TopCount(0).validate().is_ok());
    }

    #[test]
    fn empty_candidates() {
        assert!(SelectionStrategy::All.select(vec![]).is_empty());
        assert!(SelectionStrategy::TopFraction(0.5)
            .select(vec![])
            .is_empty());
    }
}
