//! # MeLoPPR core — memory-efficient, low-latency Personalized PageRank
//!
//! This crate implements the algorithmic contribution of *"MeLoPPR:
//! Software/Hardware Co-design for Memory-efficient Low-latency
//! Personalized PageRank"* (DAC 2021): a multi-stage decomposition of the
//! graph-diffusion formulation of PPR that replaces one huge depth-`L` BFS
//! ball with a cascade of small per-stage balls, plus the sparsity-driven
//! next-stage selection that trades latency for precision.
//!
//! ## What's here
//!
//! * [`backend`] — **the unified query API**: the [`PprBackend`] trait,
//!   [`QueryRequest`]/[`QueryOutcome`], four of its five solvers
//!   ([`ExactPower`], [`LocalPpr`](backend::LocalPpr),
//!   [`MonteCarlo`](backend::MonteCarlo), staged
//!   [`Meloppr`](backend::Meloppr)), the self-calibrating budget-driven
//!   [`Router`], and the [`BatchExecutor`] worker pool;
//! * [`server`] — the long-lived serving front-end: [`PprServer`]
//!   speaks a length-prefixed TCP protocol and schedules every request
//!   under a deadline (EDF queue, latest-deadline load shedding,
//!   fast-fail admission), exporting latency/shed/route telemetry;
//!   [`backend::persist`] keeps router calibration and cache hit-rate
//!   state warm across restarts;
//! * [`QueryWorkspace`] — the reusable scratch arena behind the
//!   zero-allocation query path (one [`WorkspacePool`] per backend);
//! * [`cache`] — sub-graph caching on one core: the
//!   [`ConcurrentSubgraphCache`], a sharded, lock-striped, singleflight
//!   cache shared by all batch workers so hot balls in skewed traffic
//!   are extracted once and reused zero-copy (attach with
//!   [`backend::Meloppr::with_shared_cache`]), governed by a
//!   byte-and/or-entry [`CacheBudget`] that is never exceeded; plus the
//!   single-threaded [`SubgraphCache`] facade over the same core;
//! * [`ballindex`] — the disk half of the two-tier ball store: an
//!   offline-built, CRC-checksummed per-node ball index
//!   ([`build_index`]) that the cache's cold tier
//!   ([`ConcurrentSubgraphCache::with_cold_tier`]) serves RAM misses
//!   from with one positioned read ([`BallIndex`]), decoding the compact
//!   wire form (inflated to a full sub-graph under the default
//!   [`BallStore::Full`] so disk-served answers stay bit-identical) and
//!   falling back to live BFS only when the index lacks the node or its
//!   depth;
//! * [`diffusion`] — the `GD(l)` kernel producing accumulated (`πa`) and
//!   residual (`πr`) scores (Eq. 1, Fig. 3(b)), with
//!   [`diffuse_into`] computing into caller-owned scratch;
//! * [`quantized`] — **the precision ladder**: [`PrecisionClass`]
//!   (`Exact64` / `Fast32` / `Fixed(q)`), the [`ScoreScalar`] abstraction
//!   over f64/f32/Q-format score words, the dense branch-free
//!   [`diffuse_quantized`] kernel, and [`CompactBall`] — the half-width
//!   cached-ball representation that lets the same
//!   [`CacheBudget`] admit ~2× more residents. Queries pick a rung via
//!   [`QueryBudget::with_precision`]; the server's admission path degrades
//!   the rung (before ball depth) when a deadline or byte budget is tight
//!   and reports the executed class in [`QueryStats`] and telemetry;
//! * [`MelopprEngine`] — the multi-stage engine implementing stage
//!   decomposition (Eq. 6), linear decomposition (Eq. 7) and sparsity
//!   exploitation (Eq. 8, §IV-D);
//! * [`exact_top_k`] — ground truth `T(s, k)` and [`precision`] — the
//!   `Prec(s, k)` metric;
//! * [`monte_carlo`] — the Fig. 2(a) random-walk comparator;
//! * [`GlobalScoreTable`] — the bounded `c·k` aggregation table of §V-B;
//! * [`memory`] — the analytic CPU/FPGA memory models behind Table II;
//! * [`sparsity`] — score-distribution analysis behind Fig. 6;
//! * [`planner`] — budget-driven stage planning ("adaptive" extension).
//!
//! ## Quick start
//!
//! Every solver answers the same [`QueryRequest`] and returns the same
//! [`QueryOutcome`]. Per-query scratch (BFS frontiers, sub-graph
//! buffers, dense score vectors, the aggregation table) lives in a
//! [`QueryWorkspace`] that [`PprBackend::query`] silently reuses from
//! the backend's pool, so steady-state serving never touches the
//! allocator:
//!
//! ```
//! use meloppr_core::backend::{Meloppr, PprBackend, QueryRequest};
//! use meloppr_core::{exact_top_k, precision::precision_at_k};
//! use meloppr_core::{MelopprParams, PprParams, SelectionStrategy};
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let graph = generators::karate_club();
//!
//! // Two-stage MeLoPPR: L = 4 split as 2 + 2, expanding the top half of
//! // the next-stage candidates.
//! let params = MelopprParams::two_stage(
//!     PprParams::new(0.85, 4, 5)?,
//!     2,
//!     2,
//!     SelectionStrategy::TopFraction(0.5),
//! )?;
//! let backend = Meloppr::new(&graph, params)?;
//! let outcome = backend.query(&QueryRequest::new(0))?;
//!
//! // Compare against exact ground truth.
//! let exact = exact_top_k(&graph, 0, &backend.params().ppr)?;
//! let prec = precision_at_k(&outcome.ranking, &exact, 5);
//! assert!(prec >= 0.6);
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving batches
//!
//! [`BatchExecutor`] runs request batches on scoped worker threads, one
//! workspace per worker, returning outcomes in request order plus
//! aggregate [`BatchStats`]; results are bit-identical to a sequential
//! loop:
//!
//! ```
//! use meloppr_core::backend::{BatchExecutor, LocalPpr, QueryRequest};
//! use meloppr_core::PprParams;
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let graph = generators::karate_club();
//! let backend = LocalPpr::new(&graph, PprParams::new(0.85, 4, 5)?)?;
//! let reqs: Vec<QueryRequest> = (0..8).map(QueryRequest::new).collect();
//! let batch = BatchExecutor::new(4)?.run(&backend, &reqs)?;
//! assert_eq!(batch.outcomes.len(), 8);
//! assert!(batch.stats.throughput_qps() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Routing
//!
//! Or let the [`Router`] pick a solver per request from its budget hint
//! — optionally self-calibrating its latency estimates from served
//! queries ([`Router::with_self_calibration`]):
//!
//! ```
//! use meloppr_core::backend::{
//!     ExactPower, LocalPpr, MonteCarlo, QueryRequest, Router,
//! };
//! use meloppr_core::PprParams;
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let graph = generators::karate_club();
//! let params = PprParams::new(0.85, 4, 5)?;
//! let router = Router::new()
//!     .with_backend(Box::new(ExactPower::new(&graph, params)?))
//!     .with_backend(Box::new(LocalPpr::new(&graph, params)?))
//!     .with_backend(Box::new(MonteCarlo::new(&graph, params, 2000, 42)?))
//!     .with_self_calibration(true);
//!
//! // A tight deadline tolerating approximation routes differently than
//! // an exactness requirement.
//! let fast = QueryRequest::new(0).with_max_latency_ms(0.05);
//! let exact = QueryRequest::new(0).with_min_precision(1.0);
//! assert_eq!(router.query(&fast)?.ranking.len(), 5);
//! assert_eq!(router.query(&exact)?.ranking.len(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod ballindex;
pub mod cache;
pub mod diffusion;
mod error;
pub mod failpoint;
mod global_table;
mod ground_truth;
mod local_ppr;
mod meloppr;
pub mod memory;
pub mod monte_carlo;
mod parallel;
mod params;
pub mod planner;
pub mod precision;
pub mod push;
pub mod quantized;
pub mod score_vec;
mod selection;
pub mod server;
pub mod sparsity;
#[cfg(test)]
pub(crate) mod test_util;
mod workspace;

pub use backend::{
    BackendCaps, BackendKind, BatchExecutor, BatchOutcome, BatchStats, CostEstimate, ExactPower,
    PprBackend, QueryBudget, QueryOutcome, QueryRequest, QueryStats, Route, Router,
};
pub use ballindex::{build_index, BallIndex, IndexBuildReport};
pub use cache::{
    AdmissionPolicy, BallStore, CacheBudget, CacheConsumer, CacheStats, CachedBall,
    ConcurrentSubgraphCache, ConsumerStats, SubgraphCache,
};
pub use diffusion::{
    diffuse, diffuse_from_seed, diffuse_into, DiffusionConfig, DiffusionOutput, DiffusionScratch,
    DiffusionWork,
};
pub use error::{BackendError, PprError, Result};
pub use global_table::GlobalScoreTable;
pub use ground_truth::{exact_ppr, exact_top_k};
pub use local_ppr::{LocalPprResult, LocalPprStats};
pub use meloppr::{DiffusionRecord, MelopprEngine, MelopprOutcome, MelopprStats, StageStats};
pub use memory::{format_bytes, parse_byte_size};
pub use params::{MelopprParams, PprParams, ResidualPolicy};
pub use planner::{plan_stages, StagePlan};
pub use precision::{mean_precision, precision_at_k};
pub use push::{forward_push, forward_push_class, PushResult};
pub use quantized::{
    diffuse_quantized, CompactBall, PrecisionClass, QCtx, Qu32, QuantScratch, ScoreScalar,
};
pub use score_vec::Ranking;
pub use selection::SelectionStrategy;
pub use server::{PprServer, ServerConfig, TelemetrySnapshot};
pub use workspace::{QueryWorkspace, WorkspacePool};
