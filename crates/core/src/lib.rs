//! # MeLoPPR core — memory-efficient, low-latency Personalized PageRank
//!
//! This crate implements the algorithmic contribution of *"MeLoPPR:
//! Software/Hardware Co-design for Memory-efficient Low-latency
//! Personalized PageRank"* (DAC 2021): a multi-stage decomposition of the
//! graph-diffusion formulation of PPR that replaces one huge depth-`L` BFS
//! ball with a cascade of small per-stage balls, plus the sparsity-driven
//! next-stage selection that trades latency for precision.
//!
//! ## What's here
//!
//! * [`diffusion`] — the `GD(l)` kernel producing accumulated (`πa`) and
//!   residual (`πr`) scores (Eq. 1, Fig. 3(b));
//! * [`MelopprEngine`] — the multi-stage engine implementing stage
//!   decomposition (Eq. 6), linear decomposition (Eq. 7) and sparsity
//!   exploitation (Eq. 8, §IV-D);
//! * [`local_ppr`] — the single-stage `LocalPPR-CPU` baseline the paper
//!   compares against;
//! * [`exact_top_k`] — ground truth `T(s, k)` and [`precision`] — the
//!   `Prec(s, k)` metric;
//! * [`monte_carlo`] — the Fig. 2(a) random-walk comparator;
//! * [`GlobalScoreTable`] — the bounded `c·k` aggregation table of §V-B;
//! * [`memory`] — the analytic CPU/FPGA memory models behind Table II;
//! * [`sparsity`] — score-distribution analysis behind Fig. 6;
//! * [`planner`] — budget-driven stage planning ("adaptive" extension);
//! * [`parallel`] — parallel next-stage execution (the paper's stated
//!   future work).
//!
//! ## Quick start
//!
//! ```
//! use meloppr_core::{MelopprEngine, MelopprParams, PprParams, SelectionStrategy};
//! use meloppr_core::{exact_top_k, precision::precision_at_k};
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let graph = generators::karate_club();
//!
//! // Two-stage MeLoPPR: L = 4 split as 2 + 2, expanding the top half of
//! // the next-stage candidates.
//! let params = MelopprParams::two_stage(
//!     PprParams::new(0.85, 4, 5)?,
//!     2,
//!     2,
//!     SelectionStrategy::TopFraction(0.5),
//! )?;
//! let engine = MelopprEngine::new(&graph, params)?;
//! let outcome = engine.query(0)?;
//!
//! // Compare against exact ground truth.
//! let exact = exact_top_k(&graph, 0, &engine.params().ppr)?;
//! let prec = precision_at_k(&outcome.ranking, &exact, 5);
//! assert!(prec >= 0.6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod diffusion;
mod error;
mod global_table;
mod ground_truth;
mod local_ppr;
mod meloppr;
pub mod memory;
pub mod monte_carlo;
mod params;
pub mod parallel;
pub mod planner;
pub mod precision;
pub mod push;
pub mod score_vec;
mod selection;
pub mod sparsity;
#[cfg(test)]
pub(crate) mod test_util;

pub use cache::SubgraphCache;
pub use diffusion::{diffuse, diffuse_from_seed, DiffusionConfig, DiffusionOutput, DiffusionWork};
pub use error::{PprError, Result};
pub use global_table::GlobalScoreTable;
pub use ground_truth::{exact_ppr, exact_top_k};
pub use local_ppr::{local_ppr, LocalPprResult, LocalPprStats};
pub use meloppr::{
    DiffusionRecord, MelopprEngine, MelopprOutcome, MelopprStats, StageStats,
};
pub use parallel::parallel_query;
pub use params::{MelopprParams, PprParams, ResidualPolicy};
pub use planner::{plan_stages, StagePlan};
pub use precision::{mean_precision, precision_at_k};
pub use push::{forward_push, PushResult};
pub use score_vec::Ranking;
pub use selection::SelectionStrategy;
