//! # MeLoPPR core — memory-efficient, low-latency Personalized PageRank
//!
//! This crate implements the algorithmic contribution of *"MeLoPPR:
//! Software/Hardware Co-design for Memory-efficient Low-latency
//! Personalized PageRank"* (DAC 2021): a multi-stage decomposition of the
//! graph-diffusion formulation of PPR that replaces one huge depth-`L` BFS
//! ball with a cascade of small per-stage balls, plus the sparsity-driven
//! next-stage selection that trades latency for precision.
//!
//! ## What's here
//!
//! * [`backend`] — **the unified query API**: the [`PprBackend`] trait,
//!   [`QueryRequest`]/[`QueryOutcome`], four of its five solvers
//!   ([`ExactPower`], [`LocalPpr`](backend::LocalPpr),
//!   [`MonteCarlo`](backend::MonteCarlo), staged
//!   [`Meloppr`](backend::Meloppr)) and the budget-driven [`Router`];
//! * [`diffusion`] — the `GD(l)` kernel producing accumulated (`πa`) and
//!   residual (`πr`) scores (Eq. 1, Fig. 3(b));
//! * [`MelopprEngine`] — the multi-stage engine implementing stage
//!   decomposition (Eq. 6), linear decomposition (Eq. 7) and sparsity
//!   exploitation (Eq. 8, §IV-D);
//! * [`exact_top_k`] — ground truth `T(s, k)` and [`precision`] — the
//!   `Prec(s, k)` metric;
//! * [`monte_carlo`] — the Fig. 2(a) random-walk comparator;
//! * [`GlobalScoreTable`] — the bounded `c·k` aggregation table of §V-B;
//! * [`memory`] — the analytic CPU/FPGA memory models behind Table II;
//! * [`sparsity`] — score-distribution analysis behind Fig. 6;
//! * [`planner`] — budget-driven stage planning ("adaptive" extension).
//!
//! The pre-redesign free functions (`local_ppr`, `monte_carlo_ppr`,
//! `parallel_query`, `MelopprEngine::query_cached`) remain as thin
//! deprecated shims for one release; new code should go through
//! [`backend`].
//!
//! ## Quick start
//!
//! Every solver answers the same [`QueryRequest`] and returns the same
//! [`QueryOutcome`]:
//!
//! ```
//! use meloppr_core::backend::{Meloppr, PprBackend, QueryRequest};
//! use meloppr_core::{exact_top_k, precision::precision_at_k};
//! use meloppr_core::{MelopprParams, PprParams, SelectionStrategy};
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let graph = generators::karate_club();
//!
//! // Two-stage MeLoPPR: L = 4 split as 2 + 2, expanding the top half of
//! // the next-stage candidates.
//! let params = MelopprParams::two_stage(
//!     PprParams::new(0.85, 4, 5)?,
//!     2,
//!     2,
//!     SelectionStrategy::TopFraction(0.5),
//! )?;
//! let backend = Meloppr::new(&graph, params)?;
//! let outcome = backend.query(&QueryRequest::new(0))?;
//!
//! // Compare against exact ground truth.
//! let exact = exact_top_k(&graph, 0, &backend.params().ppr)?;
//! let prec = precision_at_k(&outcome.ranking, &exact, 5);
//! assert!(prec >= 0.6);
//! # Ok(())
//! # }
//! ```
//!
//! Or let the [`Router`] pick a solver per request from its budget hint:
//!
//! ```
//! use meloppr_core::backend::{
//!     ExactPower, LocalPpr, MonteCarlo, QueryRequest, Router,
//! };
//! use meloppr_core::PprParams;
//! use meloppr_graph::generators;
//!
//! # fn main() -> Result<(), meloppr_core::PprError> {
//! let graph = generators::karate_club();
//! let params = PprParams::new(0.85, 4, 5)?;
//! let router = Router::new()
//!     .with_backend(Box::new(ExactPower::new(&graph, params)?))
//!     .with_backend(Box::new(LocalPpr::new(&graph, params)?))
//!     .with_backend(Box::new(MonteCarlo::new(&graph, params, 2000, 42)?));
//!
//! // A tight deadline tolerating approximation routes differently than
//! // an exactness requirement.
//! let fast = QueryRequest::new(0).with_max_latency_ms(0.05);
//! let exact = QueryRequest::new(0).with_min_precision(1.0);
//! assert_eq!(router.query(&fast)?.ranking.len(), 5);
//! assert_eq!(router.query(&exact)?.ranking.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod cache;
pub mod diffusion;
mod error;
mod global_table;
mod ground_truth;
mod local_ppr;
mod meloppr;
pub mod memory;
pub mod monte_carlo;
pub mod parallel;
mod params;
pub mod planner;
pub mod precision;
pub mod push;
pub mod score_vec;
mod selection;
pub mod sparsity;
#[cfg(test)]
pub(crate) mod test_util;

pub use backend::{
    BackendCaps, BackendKind, CostEstimate, ExactPower, PprBackend, QueryBudget, QueryOutcome,
    QueryRequest, QueryStats, Route, Router,
};
pub use cache::SubgraphCache;
pub use diffusion::{diffuse, diffuse_from_seed, DiffusionConfig, DiffusionOutput, DiffusionWork};
pub use error::{BackendError, PprError, Result};
pub use global_table::GlobalScoreTable;
pub use ground_truth::{exact_ppr, exact_top_k};
#[allow(deprecated)]
pub use local_ppr::local_ppr;
pub use local_ppr::{LocalPprResult, LocalPprStats};
pub use meloppr::{DiffusionRecord, MelopprEngine, MelopprOutcome, MelopprStats, StageStats};
#[allow(deprecated)]
pub use parallel::parallel_query;
pub use params::{MelopprParams, PprParams, ResidualPolicy};
pub use planner::{plan_stages, StagePlan};
pub use precision::{mean_precision, precision_at_k};
pub use push::{forward_push, PushResult};
pub use score_vec::Ranking;
pub use selection::SelectionStrategy;
