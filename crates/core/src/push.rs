//! Forward-push local PPR — the index-free software baseline family.
//!
//! The paper's related work (§III) contrasts MeLoPPR with approximate
//! single-source PPR algorithms like FORA, whose local phase is the
//! classic *forward push* of Andersen–Chung–Lang: maintain an estimate
//! `p` and a residual `r` (initially all mass at the seed), and while any
//! node holds residual above `ε·deg(u)`, convert the `(1-α)` share to
//! estimate and push the `α` share to the neighbors. It terminates in
//! `O(1/((1-α)·ε))` pushes independent of graph size and computes the
//! *untruncated* (geometric-length) PPR up to an additive `ε·deg(v)`
//! error per node.
//!
//! Two caveats when comparing with MeLoPPR:
//!
//! * push approximates the `L → ∞` PPR, while the paper's formulation
//!   truncates at `L` — for `α = 0.85, L = 6`, the two rankings differ
//!   noticeably (α⁶ ≈ 38 % of walks outlive the truncation);
//! * push's working set is the *touched* node set, which, like MeLoPPR's,
//!   stays local — but it offers no staged memory bound and no
//!   hardware-friendly dataflow, which is the gap the paper fills.

use std::collections::VecDeque;

use meloppr_graph::{FastHashMap, GraphView, NodeId};

use crate::error::{PprError, Result};
use crate::quantized::{PrecisionClass, QCtx, Qu32, ScoreScalar};
use crate::score_vec::{top_k_sparse, Ranking};

/// Result of a forward-push computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PushResult {
    /// Top-`k` ranking by estimated PPR score.
    pub ranking: Ranking,
    /// All non-zero PPR estimates `p(v)` (unsorted).
    pub estimates: Vec<(NodeId, f64)>,
    /// Residual mass left unpushed (`Σ r(v)` at termination — bounds the
    /// total estimation error).
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub pushes: usize,
    /// Adjacency entries touched (the off-chip access count in the
    /// Fig. 2 taxonomy).
    pub edges_touched: usize,
    /// Distinct nodes holding state at any point (the working-set size).
    pub touched_nodes: usize,
}

/// Runs forward push from `seed` with decay `alpha` and per-degree
/// tolerance `epsilon`.
///
/// Terminates when every node's residual is below `ε·max(deg, 1)`. The
/// returned estimates satisfy `|p(v) - ppr(v)| ≤ ε·deg(v)` for the
/// untruncated α-decay PPR.
///
/// # Errors
///
/// Returns [`PprError::InvalidParams`] if `alpha ∉ (0, 1)`, `epsilon <= 0`
/// or `k == 0`, and a graph error for an out-of-bounds seed.
///
/// # Examples
///
/// ```
/// use meloppr_core::push::forward_push;
/// use meloppr_graph::generators;
///
/// # fn main() -> Result<(), meloppr_core::PprError> {
/// let g = generators::karate_club();
/// let result = forward_push(&g, 0, 0.85, 1e-6, 5)?;
/// assert_eq!(result.ranking.len(), 5);
/// assert!(result.residual_mass < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn forward_push<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    alpha: f64,
    epsilon: f64,
    k: usize,
) -> Result<PushResult> {
    // The f64 instantiation of the generic kernel is bit-identical to
    // the historical scalar implementation (every ScoreScalar op maps to
    // the same floating-point expression).
    forward_push_class(g, seed, alpha, epsilon, k, PrecisionClass::Exact64)
}

/// As [`forward_push`], computing at the requested
/// [`PrecisionClass`] width. Estimates and the ranking are decoded back
/// to `f64`; `Exact64` is bit-identical to [`forward_push`].
///
/// # Errors
///
/// As [`forward_push`], plus [`PprError::InvalidParams`] for an invalid
/// class (fixed-point `q` out of `1..=30`).
pub fn forward_push_class<G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    alpha: f64,
    epsilon: f64,
    k: usize,
    class: PrecisionClass,
) -> Result<PushResult> {
    class.validate()?;
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(PprError::InvalidParams {
            reason: format!("alpha must be in (0, 1), got {alpha}"),
        });
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(PprError::InvalidParams {
            reason: format!("epsilon must be positive, got {epsilon}"),
        });
    }
    if k == 0 {
        return Err(PprError::InvalidParams {
            reason: "top-k size must be >= 1".into(),
        });
    }
    if seed as usize >= g.num_nodes() {
        return Err(PprError::Graph(
            meloppr_graph::GraphError::NodeOutOfBounds {
                node: seed,
                num_nodes: g.num_nodes(),
            },
        ));
    }

    match class {
        PrecisionClass::Exact64 => push_impl::<f64, G>(g, seed, alpha, epsilon, k, ()),
        PrecisionClass::Fast32 => push_impl::<f32, G>(g, seed, alpha, epsilon, k, ()),
        PrecisionClass::Fixed(q) => push_impl::<Qu32, G>(g, seed, alpha, epsilon, k, QCtx::new(q)),
    }
}

/// The push kernel, generic over the score width. All masses stay in
/// `S` until termination; the termination threshold is compared in `f64`
/// (one decode per queue pop — never per edge).
fn push_impl<S: ScoreScalar, G: GraphView + ?Sized>(
    g: &G,
    seed: NodeId,
    alpha: f64,
    epsilon: f64,
    k: usize,
    ctx: S::Ctx,
) -> Result<PushResult> {
    let mut estimate: FastHashMap<NodeId, S> = FastHashMap::default();
    let mut residual: FastHashMap<NodeId, S> = FastHashMap::default();
    residual.insert(seed, S::encode(ctx, 1.0));
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(seed);
    let mut in_queue: FastHashMap<NodeId, bool> = FastHashMap::default();
    in_queue.insert(seed, true);

    let c_keep = S::coeff(ctx, 1.0 - alpha); // (1-α)·r becomes estimate
    let c_push = S::coeff(ctx, alpha); // α·r is pushed onward
    let threshold = |deg: u32| epsilon * deg.max(1) as f64;
    let mut pushes = 0usize;
    let mut edges_touched = 0usize;

    while let Some(u) = queue.pop_front() {
        in_queue.insert(u, false);
        let r = residual.get(&u).copied().unwrap_or_default();
        let deg = g.walk_degree(u);
        if r.decode(ctx) < threshold(deg) {
            continue;
        }
        pushes += 1;
        residual.insert(u, S::default());
        let e = estimate.entry(u).or_default();
        *e = e.add(r.mul_coeff(c_keep));
        if deg == 0 {
            // Isolated node: the walk stays here forever; all remaining
            // mass becomes estimate.
            let e = estimate.entry(u).or_default();
            *e = e.add(r.mul_coeff(c_push));
            continue;
        }
        // Floor variants: pushed fixed-point mass must strictly decrease
        // for termination (see ScoreScalar::mul_coeff_floor).
        let share = r.mul_coeff_floor(c_push).div_degree_floor(deg);
        let nbrs = g.neighbors(u);
        edges_touched += nbrs.len();
        for &v in nbrs {
            let rv = residual.entry(v).or_default();
            *rv = rv.add(share);
            if rv.decode(ctx) >= threshold(g.walk_degree(v))
                && !in_queue.get(&v).copied().unwrap_or(false)
            {
                in_queue.insert(v, true);
                queue.push_back(v);
            }
        }
    }

    let residual_mass: f64 = residual.values().map(|r| r.decode(ctx)).sum();
    let touched_nodes = residual.len().max(estimate.len());
    let mut estimates: Vec<(NodeId, f64)> = estimate
        .into_iter()
        .map(|(v, p)| (v, p.decode(ctx)))
        .filter(|&(_, p)| p > 0.0)
        .collect();
    estimates.sort_unstable_by_key(|&(v, _)| v);
    let ranking = top_k_sparse(&estimates, k);
    Ok(PushResult {
        ranking,
        estimates,
        residual_mass,
        pushes,
        edges_touched,
        touched_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::{diffuse_from_seed, DiffusionConfig};
    use crate::precision::precision_at_k;
    use crate::score_vec::top_k_dense;
    use meloppr_graph::generators;

    #[test]
    fn estimates_converge_to_long_diffusion() {
        // Push computes the untruncated PPR; a length-200 diffusion is an
        // excellent proxy (alpha^200 ~ 0).
        let g = generators::karate_club();
        let push = forward_push(&g, 0, 0.85, 1e-9, 10).unwrap();
        let long = diffuse_from_seed(&g, 0, DiffusionConfig::new(0.85, 200).unwrap()).unwrap();
        for &(v, p) in &push.estimates {
            let truth = long.accumulated[v as usize];
            assert!(
                (p - truth).abs() < 1e-5,
                "node {v}: push {p} vs diffusion {truth}"
            );
        }
    }

    #[test]
    fn rankings_match_long_diffusion() {
        let g = generators::corpus::PaperGraph::G2Cora
            .generate_scaled(0.15, 4)
            .unwrap();
        let push = forward_push(&g, 10, 0.85, 1e-8, 20).unwrap();
        let long = diffuse_from_seed(&g, 10, DiffusionConfig::new(0.85, 120).unwrap()).unwrap();
        let exact = top_k_dense(&long.accumulated, 20);
        let prec = precision_at_k(&push.ranking, &exact, 20);
        assert!(prec >= 0.9, "push ranking precision {prec}");
    }

    #[test]
    fn mass_accounting_is_conservative() {
        let g = generators::grid(6, 6).unwrap();
        let push = forward_push(&g, 0, 0.85, 1e-4, 10).unwrap();
        let estimated: f64 = push.estimates.iter().map(|&(_, p)| p).sum();
        // estimate + residual = 1 exactly (each push conserves mass).
        assert!((estimated + push.residual_mass - 1.0).abs() < 1e-12);
        assert!(push.residual_mass >= 0.0);
    }

    #[test]
    fn looser_epsilon_means_less_work() {
        let g = generators::corpus::PaperGraph::G1Citeseer
            .generate_scaled(0.2, 2)
            .unwrap();
        let tight = forward_push(&g, 5, 0.85, 1e-8, 10).unwrap();
        let loose = forward_push(&g, 5, 0.85, 1e-3, 10).unwrap();
        assert!(loose.pushes < tight.pushes);
        assert!(loose.edges_touched <= tight.edges_touched);
        assert!(loose.residual_mass >= tight.residual_mass);
    }

    #[test]
    fn isolated_seed_keeps_unit_mass() {
        let g = meloppr_graph::CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let push = forward_push(&g, 2, 0.85, 1e-6, 3).unwrap();
        assert_eq!(push.ranking, vec![(2, 1.0)]);
        assert_eq!(push.edges_touched, 0);
    }

    #[test]
    fn invalid_params_rejected() {
        let g = generators::path(3).unwrap();
        assert!(forward_push(&g, 0, 1.0, 1e-6, 5).is_err());
        assert!(forward_push(&g, 0, 0.85, 0.0, 5).is_err());
        assert!(forward_push(&g, 0, 0.85, 1e-6, 0).is_err());
        assert!(forward_push(&g, 9, 0.85, 1e-6, 5).is_err());
    }

    #[test]
    fn quantized_push_tracks_exact_ranking() {
        let g = generators::karate_club();
        let exact = forward_push(&g, 0, 0.85, 1e-6, 10).unwrap();
        for class in [PrecisionClass::Fast32, PrecisionClass::Fixed(16)] {
            let approx = forward_push_class(&g, 0, 0.85, 1e-6, 10, class).unwrap();
            let prec = precision_at_k(&approx.ranking, &exact.ranking, 10);
            assert!(prec >= 0.8, "{class}: precision {prec}");
            // Mass never exceeds the unit budget at any width.
            let total: f64 = approx.estimates.iter().map(|&(_, p)| p).sum();
            assert!(total <= 1.0 + 1e-6, "{class}: mass {total}");
        }
    }

    #[test]
    fn exact_class_is_bit_identical_to_forward_push() {
        let g = generators::grid(8, 8).unwrap();
        let a = forward_push(&g, 10, 0.85, 1e-7, 15).unwrap();
        let b = forward_push_class(&g, 10, 0.85, 1e-7, 15, PrecisionClass::Exact64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn working_set_is_local() {
        // On a long path, push from one end must not touch the far end.
        let g = generators::path(1000).unwrap();
        let push = forward_push(&g, 0, 0.5, 1e-6, 10).unwrap();
        assert!(push.touched_nodes < 100, "touched {}", push.touched_nodes);
    }
}
