//! Analytic memory-accounting models (Table II).
//!
//! The paper measures CPU memory with Python's `tracemalloc` and computes
//! FPGA BRAM with an explicit byte formula (§VI-B). Since absolute Python
//! allocator numbers are not reproducible from Rust, this module applies a
//! single *consistent* analytic model to every implementation, so the
//! **ratios** Table II reports (LocalPPR vs MeLoPPR, CPU vs FPGA) are
//! meaningful:
//!
//! * **CPU model** — every resident word costs [`CPU_WORD_BYTES`]: the CSR
//!   sub-graph (`2·|V| + 2·|E|` words: per-node index pair plus both
//!   adjacency directions), three score vectors (`3·|V|`: power,
//!   next-power, accumulated), and BFS bookkeeping (`2·|V|`: queue +
//!   visited map).
//! * **FPGA model** — the paper's formula, verbatim:
//!   `BRAM_bytes = 4·(2·|V| + 2·|E| + 2·|V| + |V|)` (sub-graph table +
//!   accumulated score table + residual score table, §VI-B), plus the
//!   bounded `c·k` global table.

use meloppr_graph::SubgraphBytes;

/// Bytes per word in the CPU model. The baseline the paper measures is
/// NetworkX/Python, where scores and references are 8-byte objects.
pub const CPU_WORD_BYTES: usize = 8;

/// Byte breakdown of a single diffusion task on the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTaskMemory {
    /// Sub-graph storage (CSR arrays + id maps).
    pub graph_bytes: usize,
    /// Score vectors (power, next-power, accumulated).
    pub score_bytes: usize,
    /// BFS bookkeeping (queue + visited map).
    pub bfs_bytes: usize,
}

impl CpuTaskMemory {
    /// Total bytes of the task.
    pub fn total(&self) -> usize {
        self.graph_bytes + self.score_bytes + self.bfs_bytes
    }
}

/// CPU memory of one diffusion over a ball with `nodes` nodes and `edges`
/// undirected edges (model described in the module docs).
pub fn cpu_task_memory(nodes: usize, edges: usize) -> CpuTaskMemory {
    cpu_task_memory_width(nodes, edges, CPU_WORD_BYTES)
}

/// [`cpu_task_memory`] with an explicit score-word width — the analytic
/// twin of [`cpu_task_memory_measured_width`], used by the staged
/// planner/estimator so a precision-ladder width downgrade is priced
/// *before* ball depth is shrunk. At width [`CPU_WORD_BYTES`] this is
/// exactly [`cpu_task_memory`].
pub fn cpu_task_memory_width(
    nodes: usize,
    edges: usize,
    score_width_bytes: usize,
) -> CpuTaskMemory {
    CpuTaskMemory {
        graph_bytes: (2 * nodes + 2 * edges) * CPU_WORD_BYTES,
        score_bytes: 3 * nodes * score_width_bytes,
        bfs_bytes: 2 * nodes * CPU_WORD_BYTES,
    }
}

/// CPU memory of one diffusion using the *measured* sub-graph
/// representation bytes instead of the word model for the graph part.
pub fn cpu_task_memory_measured(sub: SubgraphBytes, nodes: usize) -> CpuTaskMemory {
    cpu_task_memory_measured_width(sub, nodes, CPU_WORD_BYTES)
}

/// [`cpu_task_memory_measured`] with an explicit score-word width.
///
/// The precision ladder stores scores at 8 bytes (`Exact64`) or 4 bytes
/// (`Fast32` / `Fixed(q)`); the three dense diffusion vectors dominate a
/// task's non-graph footprint, so the staged engine's memory planner uses
/// this variant to model a width downgrade *before* shrinking ball depth.
/// BFS bookkeeping stays at full [`CPU_WORD_BYTES`] — frontiers and
/// visited maps hold node ids, not scores.
pub fn cpu_task_memory_measured_width(
    sub: SubgraphBytes,
    nodes: usize,
    score_width_bytes: usize,
) -> CpuTaskMemory {
    CpuTaskMemory {
        graph_bytes: sub.total(),
        score_bytes: 3 * nodes * score_width_bytes,
        bfs_bytes: 2 * nodes * CPU_WORD_BYTES,
    }
}

/// Peak CPU memory of a whole MeLoPPR query: the largest single task plus
/// the persistent aggregation state.
///
/// `aggregate_entries` is the number of distinct `(node, score)` pairs the
/// aggregator holds (bounded by `c·k` when the table factor is set);
/// `pending_nodes` is the maximum size of the next-stage work queue.
pub fn meloppr_cpu_peak(
    peak_task: CpuTaskMemory,
    aggregate_entries: usize,
    pending_nodes: usize,
) -> usize {
    peak_task.total() + aggregate_entries * 2 * CPU_WORD_BYTES + pending_nodes * 2 * CPU_WORD_BYTES
}

/// The paper's FPGA BRAM formula (§VI-B):
/// `4·(2·|V| + 2·|E| + 2·|V| + |V|)` bytes for the sub-graph, accumulated
/// and residual score tables of one PE.
pub fn fpga_bram_bytes(nodes: usize, edges: usize) -> usize {
    4 * (2 * nodes + 2 * edges + 2 * nodes + nodes)
}

/// FPGA bytes for the bounded global score table (`c·k` entries of
/// 32-bit id + 32-bit score).
pub fn fpga_global_table_bytes(c: usize, k: usize) -> usize {
    c * k * 8
}

/// Peak FPGA memory of a MeLoPPR query: the largest sub-graph resident in
/// a PE plus the global table.
pub fn meloppr_fpga_peak(peak_nodes: usize, peak_edges: usize, c: usize, k: usize) -> usize {
    fpga_bram_bytes(peak_nodes, peak_edges) + fpga_global_table_bytes(c, k)
}

/// Parses a human byte size: a number with an optional binary
/// (`KiB`/`MiB`/`GiB`, or bare `K`/`M`/`G`) or decimal (`KB`/`MB`/`GB`)
/// suffix. Case-insensitive, fractional values allowed (`"1.5MiB"`),
/// surrounding whitespace ignored. Used by the CLI's `--cache-bytes` /
/// `--budget-memory` flags.
///
/// # Errors
///
/// Returns a description of the problem for empty input, an unknown
/// suffix, a malformed number, zero, or a value overflowing `usize`.
///
/// # Examples
///
/// ```
/// use meloppr_core::memory::parse_byte_size;
///
/// assert_eq!(parse_byte_size("64MiB").unwrap(), 64 << 20);
/// assert_eq!(parse_byte_size("2 kb").unwrap(), 2000);
/// assert_eq!(parse_byte_size("512").unwrap(), 512);
/// ```
pub fn parse_byte_size(s: &str) -> std::result::Result<usize, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty byte size".into());
    }
    let split = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(s.len());
    let (number, suffix) = s.split_at(split);
    let number: f64 = number
        .parse()
        .map_err(|_| format!("bad byte size {s:?}: no leading number"))?;
    let multiplier: f64 = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1.0,
        "k" | "kib" => 1024.0,
        "m" | "mib" => 1024.0 * 1024.0,
        "g" | "gib" => 1024.0 * 1024.0 * 1024.0,
        "kb" => 1e3,
        "mb" => 1e6,
        "gb" => 1e9,
        other => {
            return Err(format!(
                "unknown byte suffix {other:?} in {s:?} (use B, KiB/MiB/GiB or KB/MB/GB)"
            ))
        }
    };
    let value = number * multiplier;
    if !value.is_finite() || value < 0.0 || value > usize::MAX as f64 {
        return Err(format!("byte size {s:?} out of range"));
    }
    let bytes = value.round() as usize;
    if bytes == 0 {
        return Err(format!("byte size {s:?} must be positive"));
    }
    Ok(bytes)
}

/// Formats a byte count with a binary suffix (`"1.5 MiB"`), for budget
/// and residency telemetry lines.
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_formula() {
        let m = cpu_task_memory(100, 300);
        assert_eq!(m.graph_bytes, (200 + 600) * 8);
        assert_eq!(m.score_bytes, 300 * 8);
        assert_eq!(m.bfs_bytes, 200 * 8);
        assert_eq!(m.total(), (800 + 300 + 200) * 8);
    }

    #[test]
    fn fpga_formula_matches_paper() {
        // The paper: BRAM = 4*(2V + 2E + 2V + V) = 4*(5V + 2E).
        assert_eq!(fpga_bram_bytes(10, 20), 4 * (5 * 10 + 2 * 20));
        // Scales linearly in both arguments.
        assert_eq!(fpga_bram_bytes(20, 20) - fpga_bram_bytes(10, 20), 4 * 50);
    }

    #[test]
    fn global_table_bytes() {
        assert_eq!(fpga_global_table_bytes(10, 200), 16_000);
    }

    #[test]
    fn meloppr_peaks_compose() {
        let task = cpu_task_memory(50, 100);
        let total = meloppr_cpu_peak(task, 2000, 10);
        assert_eq!(total, task.total() + 2000 * 16 + 10 * 16);

        let fpga = meloppr_fpga_peak(50, 100, 10, 200);
        assert_eq!(fpga, fpga_bram_bytes(50, 100) + 16_000);
    }

    #[test]
    fn measured_variant_uses_subgraph_bytes() {
        let sub = SubgraphBytes {
            csr: 1000,
            id_maps: 500,
            degrees: 100,
        };
        let m = cpu_task_memory_measured(sub, 25);
        assert_eq!(m.graph_bytes, 1600);
        assert_eq!(m.score_bytes, 3 * 25 * 8);
    }

    #[test]
    fn width_variant_halves_score_bytes_only() {
        let sub = SubgraphBytes {
            csr: 1000,
            id_maps: 500,
            degrees: 100,
        };
        let wide = cpu_task_memory_measured(sub, 25);
        let narrow = cpu_task_memory_measured_width(sub, 25, 4);
        assert_eq!(narrow.graph_bytes, wide.graph_bytes);
        assert_eq!(narrow.bfs_bytes, wide.bfs_bytes);
        assert_eq!(narrow.score_bytes, wide.score_bytes / 2);
    }

    #[test]
    fn parse_byte_size_suffixes() {
        assert_eq!(parse_byte_size("512").unwrap(), 512);
        assert_eq!(parse_byte_size("512B").unwrap(), 512);
        assert_eq!(parse_byte_size("4KiB").unwrap(), 4096);
        assert_eq!(parse_byte_size("4k").unwrap(), 4096);
        assert_eq!(parse_byte_size("64MiB").unwrap(), 64 << 20);
        assert_eq!(parse_byte_size("64 MiB").unwrap(), 64 << 20);
        assert_eq!(parse_byte_size("2GiB").unwrap(), 2 << 30);
        assert_eq!(parse_byte_size("1kb").unwrap(), 1000);
        assert_eq!(parse_byte_size("3MB").unwrap(), 3_000_000);
        assert_eq!(parse_byte_size("1GB").unwrap(), 1_000_000_000);
        assert_eq!(parse_byte_size("  8m  ").unwrap(), 8 << 20);
    }

    #[test]
    fn parse_byte_size_fractional_and_case() {
        assert_eq!(parse_byte_size("1.5KiB").unwrap(), 1536);
        assert_eq!(parse_byte_size("0.5MiB").unwrap(), 512 << 10);
        assert_eq!(parse_byte_size("64mib").unwrap(), 64 << 20);
        assert_eq!(parse_byte_size("64MIB").unwrap(), 64 << 20);
    }

    #[test]
    fn parse_byte_size_rejects_garbage() {
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("   ").is_err());
        assert!(parse_byte_size("MiB").is_err());
        assert!(parse_byte_size("12XB").is_err());
        assert!(parse_byte_size("1.2.3K").is_err());
        assert!(parse_byte_size("0").is_err());
        assert!(parse_byte_size("0.0001").is_err()); // rounds to zero
        assert!(parse_byte_size("1e300GiB").is_err());
        assert!(parse_byte_size("-5K").is_err());
    }

    #[test]
    fn format_bytes_picks_binary_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(64 << 20), "64.0 MiB");
        assert_eq!(format_bytes(3 << 30), "3.0 GiB");
        assert_eq!(format_bytes(1536), "1.5 KiB");
    }

    #[test]
    fn fpga_much_smaller_than_cpu_for_same_ball() {
        // The FPGA's packed 4-byte words beat the CPU's 8-byte model by
        // roughly the word-width ratio; the real Table II gap also includes
        // Python overhead, which our CPU model intentionally understates.
        let (nodes, edges) = (1000, 3000);
        assert!(fpga_bram_bytes(nodes, edges) < cpu_task_memory(nodes, edges).total());
    }
}
