//! Query parameters for single-stage PPR and multi-stage MeLoPPR.

use crate::error::{PprError, Result};
use crate::selection::SelectionStrategy;

/// Parameters of a personalized-PageRank query (§II of the paper).
///
/// Fields are public passive data; [`PprParams::validate`] enforces the
/// domain constraints and is called by every query entry point.
///
/// # Examples
///
/// ```
/// use meloppr_core::PprParams;
///
/// // The paper's evaluation setting: k = 200, L = 6.
/// let params = PprParams::paper_defaults();
/// assert_eq!(params.length, 6);
/// assert_eq!(params.k, 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprParams {
    /// Decay factor α of the α-decay random walk; the walk continues with
    /// probability α at every step. Must lie in `(0, 1)`.
    pub alpha: f64,
    /// Maximum diffusion length `L` (number of propagation iterations).
    pub length: usize,
    /// How many top-ranked nodes a query returns.
    pub k: usize,
}

impl PprParams {
    /// Creates parameters, validating them eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] when any field is out of domain.
    pub fn new(alpha: f64, length: usize, k: usize) -> Result<Self> {
        let params = PprParams { alpha, length, k };
        params.validate()?;
        Ok(params)
    }

    /// The configuration used throughout the paper's evaluation (§VI):
    /// `k = 200`, `L = 6`, and the conventional PageRank decay `α = 0.85`
    /// (the paper does not state α explicitly).
    pub fn paper_defaults() -> Self {
        PprParams {
            alpha: 0.85,
            length: 6,
            k: 200,
        }
    }

    /// Checks the domain constraints.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if `alpha ∉ (0, 1)`,
    /// `length == 0`, or `k == 0`.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(PprError::InvalidParams {
                reason: format!("alpha must be in (0, 1), got {}", self.alpha),
            });
        }
        if self.length == 0 {
            return Err(PprError::InvalidParams {
                reason: "diffusion length L must be >= 1".into(),
            });
        }
        if self.k == 0 {
            return Err(PprError::InvalidParams {
                reason: "top-k size must be >= 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for PprParams {
    /// Same as [`PprParams::paper_defaults`].
    fn default() -> Self {
        PprParams::paper_defaults()
    }
}

/// What happens to the residual mass of next-stage nodes that were **not**
/// selected for expansion (§IV-D).
///
/// Exact MeLoPPR (Eq. 8) subtracts `α^{l1}·Sʳ_{l1}` and adds the stage-two
/// diffusions back. When sparsity exploitation skips a node `v`, two
/// approximations are possible.
/// The paper states the decomposition (Eq. 8) exactly but leaves the
/// treatment of *unselected* residual mass unspecified; the
/// `ablation_residual` experiment compares the three natural choices, and
/// [`ResidualPolicy::ScaledKeep`] dominates across the whole selection
/// sweep, so it is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidualPolicy {
    /// Leave `α^{l1}·Sʳ_{l1}[v]` in place for unexpanded `v` — the
    /// zeroth-order approximation of the skipped diffusion
    /// (`GD(0)(x) = x`), as if the walk terminated at `v`. Strong at tiny
    /// selection ratios, but overweights unexpanded nodes at medium
    /// ratios.
    KeepUnexpanded,
    /// Drop the residual mass of unexpanded nodes entirely (subtract the
    /// full `α^{l1}·Sʳ_{l1}` as in exact Eq. 8, add back only expanded
    /// contributions). Weak at tiny ratios, competitive at high ones.
    DropUnexpanded,
    /// Keep only the *expected self-retention* of the skipped diffusion:
    /// the exact continuation `GD(l')(e_v)` leaves roughly `(1 - α)` of
    /// its mass at `v` (the immediate-termination term), so unexpanded
    /// nodes keep `(1 - α)·α^{l1}·Sʳ_{l1}[v]`. Empirically dominates both
    /// extremes at every ratio (see `ablation_residual`); the default.
    #[default]
    ScaledKeep,
}

/// Parameters of a multi-stage MeLoPPR query (§IV).
///
/// # Examples
///
/// ```
/// use meloppr_core::{MelopprParams, SelectionStrategy};
///
/// // The paper's two-stage split L = 6 = 3 + 3 selecting 2 % of
/// // next-stage nodes.
/// let params = MelopprParams::paper_defaults();
/// assert_eq!(params.stages, vec![3, 3]);
/// assert_eq!(params.selection, SelectionStrategy::TopFraction(0.02));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MelopprParams {
    /// The underlying PPR query (α, total length `L`, `k`).
    pub ppr: PprParams,
    /// Stage lengths `l1, l2, …`; must be non-empty, all ≥ 1, and sum to
    /// `ppr.length` (§IV-B "can be easily extended to more terms").
    pub stages: Vec<usize>,
    /// How next-stage nodes are chosen from the residual vector (§IV-D).
    pub selection: SelectionStrategy,
    /// Treatment of unexpanded residual mass.
    pub residual_policy: ResidualPolicy,
    /// When `Some(c)`, aggregate scores in a bounded table of `c·k`
    /// entries as the FPGA does (§V-B); `None` keeps exact dense
    /// aggregation (the CPU implementation).
    pub table_factor: Option<usize>,
}

impl MelopprParams {
    /// Creates a two-stage configuration (`L = l1 + l2`), the paper's
    /// primary setting.
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] if the stage lengths don't sum
    /// to `ppr.length` or any other constraint fails.
    pub fn two_stage(
        ppr: PprParams,
        l1: usize,
        l2: usize,
        selection: SelectionStrategy,
    ) -> Result<Self> {
        let params = MelopprParams {
            ppr,
            stages: vec![l1, l2],
            selection,
            residual_policy: ResidualPolicy::default(),
            table_factor: None,
        };
        params.validate()?;
        Ok(params)
    }

    /// The paper's evaluation configuration: `L = 6 = 3 + 3`, `k = 200`,
    /// 2 % next-stage selection, exact aggregation.
    pub fn paper_defaults() -> Self {
        MelopprParams {
            ppr: PprParams::paper_defaults(),
            stages: vec![3, 3],
            selection: SelectionStrategy::TopFraction(0.02),
            residual_policy: ResidualPolicy::default(),
            table_factor: None,
        }
    }

    /// Replaces the selection strategy (builder style).
    #[must_use]
    pub fn with_selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }

    /// Replaces the residual policy (builder style).
    #[must_use]
    pub fn with_residual_policy(mut self, policy: ResidualPolicy) -> Self {
        self.residual_policy = policy;
        self
    }

    /// Enables bounded `c·k` score aggregation (builder style).
    #[must_use]
    pub fn with_table_factor(mut self, c: usize) -> Self {
        self.table_factor = Some(c);
        self
    }

    /// Checks all domain constraints, including those of the nested
    /// [`PprParams`] and [`SelectionStrategy`].
    ///
    /// # Errors
    ///
    /// Returns [`PprError::InvalidParams`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        self.ppr.validate()?;
        self.selection.validate()?;
        if self.stages.is_empty() {
            return Err(PprError::InvalidParams {
                reason: "stage list must not be empty".into(),
            });
        }
        if self.stages.contains(&0) {
            return Err(PprError::InvalidParams {
                reason: "every stage length must be >= 1".into(),
            });
        }
        let total: usize = self.stages.iter().sum();
        if total != self.ppr.length {
            return Err(PprError::InvalidParams {
                reason: format!(
                    "stage lengths sum to {total} but diffusion length is {}",
                    self.ppr.length
                ),
            });
        }
        if self.table_factor == Some(0) {
            return Err(PprError::InvalidParams {
                reason: "table factor c must be >= 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for MelopprParams {
    /// Same as [`MelopprParams::paper_defaults`].
    fn default() -> Self {
        MelopprParams::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppr_params_validation() {
        assert!(PprParams::new(0.85, 6, 200).is_ok());
        assert!(PprParams::new(0.0, 6, 200).is_err());
        assert!(PprParams::new(1.0, 6, 200).is_err());
        assert!(PprParams::new(0.5, 0, 200).is_err());
        assert!(PprParams::new(0.5, 6, 0).is_err());
    }

    #[test]
    fn paper_defaults_match_evaluation_section() {
        let p = PprParams::paper_defaults();
        assert_eq!((p.length, p.k), (6, 200));
        assert!(p.validate().is_ok());

        let m = MelopprParams::paper_defaults();
        assert_eq!(m.stages, vec![3, 3]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn stage_sum_must_match_length() {
        let ppr = PprParams::new(0.85, 6, 10).unwrap();
        assert!(MelopprParams::two_stage(ppr, 3, 3, SelectionStrategy::All).is_ok());
        assert!(MelopprParams::two_stage(ppr, 2, 3, SelectionStrategy::All).is_err());
        assert!(MelopprParams::two_stage(ppr, 0, 6, SelectionStrategy::All).is_err());
    }

    #[test]
    fn multi_stage_validation() {
        let ppr = PprParams::new(0.85, 6, 10).unwrap();
        let mut m = MelopprParams::paper_defaults();
        m.ppr = ppr;
        m.stages = vec![2, 2, 2];
        assert!(m.validate().is_ok());
        m.stages = vec![];
        assert!(m.validate().is_err());
    }

    #[test]
    fn builder_style_setters() {
        let m = MelopprParams::paper_defaults()
            .with_selection(SelectionStrategy::TopCount(5))
            .with_residual_policy(ResidualPolicy::DropUnexpanded)
            .with_table_factor(10);
        assert_eq!(m.selection, SelectionStrategy::TopCount(5));
        assert_eq!(m.residual_policy, ResidualPolicy::DropUnexpanded);
        assert_eq!(m.table_factor, Some(10));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn zero_table_factor_rejected() {
        let m = MelopprParams::paper_defaults().with_table_factor(0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn default_impls_agree_with_paper_defaults() {
        assert_eq!(PprParams::default(), PprParams::paper_defaults());
        assert_eq!(MelopprParams::default(), MelopprParams::paper_defaults());
    }
}
